"""Setup shim for legacy editable installs (offline, no wheel package).

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` in environments without the
``wheel`` package.
"""

from setuptools import setup

setup()

"""Analysis helpers: time averages, text tables, bound-gap analysis."""

from repro.analysis.aggregate import (
    mean_confidence_interval,
    running_time_average,
    time_average,
)
from repro.analysis.tables import format_table
from repro.analysis.convergence import (
    empirical_gaps,
    gap_series,
    is_shrinking,
    relative_gap_series,
)
from repro.analysis.replication import (
    ReplicatedStatistic,
    replicate,
    replicate_summary,
)
from repro.analysis.report import build_report

__all__ = [
    "mean_confidence_interval",
    "running_time_average",
    "time_average",
    "format_table",
    "empirical_gaps",
    "gap_series",
    "is_shrinking",
    "relative_gap_series",
    "ReplicatedStatistic",
    "replicate",
    "replicate_summary",
    "build_report",
]

"""Analysis: result post-processing and the repo's static analyzers.

Two families share this package: numerical result analysis (time
averages, tables, bound-gap convergence, replication) and the static
analyzers behind ``python -m repro.analysis`` — the units dataflow
pass (:mod:`repro.analysis.dataflow`), the array axis/shape dataflow
pass (:mod:`repro.analysis.arrayflow`), the whole-program call graph
(:mod:`repro.analysis.callgraph`) and fixed-point interprocedural
engine (:mod:`repro.analysis.interproc`), the determinism rules
(:mod:`repro.analysis.determinism`), the hot-path and process-pool
call-graph rules (:mod:`repro.analysis.hotpath`,
:mod:`repro.analysis.poolsafety`) and the equation coverage audit
(:mod:`repro.analysis.equations`).  The unified rule catalogue lives
in :mod:`repro.analysis.registry`.
"""

from repro.analysis.aggregate import (
    mean_confidence_interval,
    running_time_average,
    time_average,
)
from repro.analysis.tables import format_table
from repro.analysis.convergence import (
    empirical_gaps,
    gap_series,
    is_shrinking,
    relative_gap_series,
)
from repro.analysis.replication import (
    ReplicatedStatistic,
    replicate,
    replicate_summary,
)
from repro.analysis.report import build_report
from repro.analysis.dataflow import ANALYSIS_RULES, UnitDataflowRule
from repro.analysis.arrayflow import ARRAY_RULES, ArrayDataflowRule
from repro.analysis.determinism import (
    DETERMINISM_RULES,
    GlobalRngRule,
    SetIterationRule,
    WallclockRule,
)
from repro.analysis.callgraph import Program
from repro.analysis.hotpath import HOTPATH_RULES, check_hot_path
from repro.analysis.poolsafety import POOL_RULES, check_pool_safety
from repro.analysis.registry import ALL_RULE_IDS, RULE_REGISTRY
from repro.analysis.equations import (
    EquationEntry,
    audit_equations,
    load_manifest,
)
from repro.analysis.unitlattice import Elem, join, meet, unit_elem

__all__ = [
    "ANALYSIS_RULES",
    "UnitDataflowRule",
    "ARRAY_RULES",
    "ArrayDataflowRule",
    "DETERMINISM_RULES",
    "GlobalRngRule",
    "SetIterationRule",
    "WallclockRule",
    "Program",
    "HOTPATH_RULES",
    "check_hot_path",
    "POOL_RULES",
    "check_pool_safety",
    "ALL_RULE_IDS",
    "RULE_REGISTRY",
    "EquationEntry",
    "audit_equations",
    "load_manifest",
    "Elem",
    "join",
    "meet",
    "unit_elem",
    "mean_confidence_interval",
    "running_time_average",
    "time_average",
    "format_table",
    "empirical_gaps",
    "gap_series",
    "is_shrinking",
    "relative_gap_series",
    "ReplicatedStatistic",
    "replicate",
    "replicate_summary",
    "build_report",
]

"""Intraprocedural array axis/shape dataflow analysis (rules R020-R023).

The companion pass to :mod:`repro.analysis.dataflow`: where that pass
tracks physical units through scalar arithmetic, this one tracks the
*named axes* of numpy arrays (see :mod:`repro.axes`) through the
vectorized hot path and flags:

* **R020** — broadcasting two arrays whose declared axes are
  incompatible (``(L, M)`` combined with ``(M, L)`` — the silent
  transpose), including argument passing, returns and annotated
  assignments;
* **R021** — reducing (``sum``/``max``/``any``/...) over an axis that
  is out of range for the operand's declared rank;
* **R022** — a bare ``np.ndarray`` parameter in a hot-path module,
  where every array signature must name its axes;
* **R023** — frozen-index violations: subscripting an array with an
  index array whose *values* belong to a different axis (``g[link_tx]``
  reads the link-axis ``G`` backlog with node ids).

Axis facts enter only through annotations — ``repro.axes`` aliases on
parameters, returns, class attributes and ``x: LinkBandMat = ...``
assignments — plus the class table for the struct-of-arrays core
(``ArrayState`` and its mapping adapters are reflected at import time,
so their attribute reads resolve in every module).  ``None`` indexing
inserts the broadcast axis ``"1"``, ``.T`` reverses axes, reductions
consume them.  Everything unproven is ``UNKNOWN`` and reported on
never: like the units pass, the analyzer is conservative and one
mismatch degrades its result to ``UNKNOWN`` so one bug yields one
finding.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.shapelattice import (
    BROADCAST_AXIS,
    SCALAR,
    UNKNOWN,
    Elem,
    array_elem,
    broadcast,
    broadcast_axes,
    instance_elem,
    join,
    reduce_axes,
    transpose,
)
from repro.axes import ALIAS_AXES, ALIAS_INDEX, ANY_AXIS, Axes, IndexInto
from repro.lint.rules import FileContext, Finding, Rule, _numpy_aliases

#: A callable signature: positional parameter names with their axis
#: elements (None = unconstrained) and the return element.
Signature = Tuple[Tuple[Tuple[str, Optional[Elem]], ...], Optional[Elem]]


def _alias_elem(name: str) -> Optional[Elem]:
    axes = ALIAS_AXES.get(name)
    if axes is None:
        return None
    index = ALIAS_INDEX.get(name)
    return array_elem(axes.names, index.axis if index else None)


#: Modules whose array parameters must name their axes (rule R022):
#: the struct-of-arrays core and everything that loops over it per
#: slot.  Matched against the posix display path suffix.
HOT_PATH_SUFFIXES: Tuple[str, ...] = (
    "core/arraystate.py",
    "control/router.py",
    "control/scheduler.py",
    "solvers/sequential_fix.py",
)
HOT_PATH_DIRS: Tuple[str, ...] = ("repro/queueing/",)


def is_hot_path(display_path: str) -> bool:
    path = display_path.replace("\\", "/")
    if any(path.endswith(suffix) for suffix in HOT_PATH_SUFFIXES):
        return True
    return any(part in path for part in HOT_PATH_DIRS)


@dataclass
class ClassSpec:
    """Axis facts about one annotated class.

    ``attrs`` maps attribute/property names to their elements;
    ``fields`` preserves declaration order for positional constructor
    calls; ``methods`` holds annotated method signatures (``self``
    stripped).
    """

    attrs: Dict[str, Elem] = field(default_factory=dict)
    fields: List[str] = field(default_factory=list)
    methods: Dict[str, Signature] = field(default_factory=dict)


def _elem_from_hint(hint: object) -> Optional[Elem]:
    """Extract an axis element from a runtime ``Annotated`` hint."""
    metadata = getattr(hint, "__metadata__", None)
    if not metadata:
        return None
    axes: Optional[Axes] = None
    index: Optional[IndexInto] = None
    for item in metadata:
        if isinstance(item, Axes):
            axes = item
        elif isinstance(item, IndexInto):
            index = item
    if axes is None:
        return None
    return array_elem(axes.names, index.axis if index else None)


def _reflect_class(cls: type) -> ClassSpec:
    """Build a :class:`ClassSpec` from a runtime class's annotations."""
    spec = ClassSpec()
    try:
        hints = typing.get_type_hints(cls, include_extras=True)
    except Exception:  # unresolvable forward refs: partial table
        hints = {}
    for name, hint in hints.items():
        spec.fields.append(name)
        elem = _elem_from_hint(hint)
        if elem is not None:
            spec.attrs[name] = elem
    for name in dir(cls):
        member = getattr(cls, name, None)
        func = None
        is_property = isinstance(member, property)
        if is_property:
            func = member.fget
        elif callable(member) and not name.startswith("__"):
            func = member
        if func is None:
            continue
        try:
            func_hints = typing.get_type_hints(func, include_extras=True)
        except Exception:
            continue
        ret = _elem_from_hint(func_hints.get("return"))
        if is_property:
            if ret is not None:
                spec.attrs[name] = ret
        else:
            code = getattr(func, "__code__", None)
            if code is None:
                continue
            params = [a for a in code.co_varnames[: code.co_argcount] if a != "self"]
            sig = tuple(
                (p, _elem_from_hint(func_hints.get(p))) for p in params
            )
            if ret is not None or any(e is not None for _, e in sig):
                spec.methods[name] = (sig, ret)
    return spec


def _builtin_class_table() -> Dict[str, ClassSpec]:
    """Reflect the struct-of-arrays core so every module resolves it."""
    from repro.core import arraystate

    table: Dict[str, ClassSpec] = {}
    for name in (
        "ArrayState",
        "NodeArrayMapping",
        "LinkArrayMapping",
        "QueueArrayMapping",
    ):
        cls = getattr(arraystate, name, None)
        if isinstance(cls, type):
            table[name] = _reflect_class(cls)
    return table


_BUILTIN_CLASSES: Optional[Dict[str, ClassSpec]] = None


def builtin_classes() -> Dict[str, ClassSpec]:
    global _BUILTIN_CLASSES
    if _BUILTIN_CLASSES is None:
        _BUILTIN_CLASSES = _builtin_class_table()  # noqa: R050 - idempotent memoization; every process recomputes the same table
    return _BUILTIN_CLASSES


#: numpy reductions accepting ``axis=`` (function and method forms).
_REDUCTIONS = frozenset(
    {
        "sum", "prod", "min", "max", "amin", "amax", "mean", "median",
        "std", "var", "any", "all", "argmax", "argmin", "nansum",
        "nanmin", "nanmax", "nanmean", "count_nonzero",
    }
)
#: numpy binary ufuncs: broadcast their first two arguments.
_BINARY_UFUNCS = frozenset(
    {
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "minimum", "maximum", "fmin", "fmax", "power",
        "hypot", "logical_and", "logical_or", "logical_xor", "greater",
        "greater_equal", "less", "less_equal", "equal", "not_equal",
        "arctan2", "mod", "remainder",
    }
)
#: numpy unary functions preserving shape (index tag dropped).
_SHAPE_PRESERVING = frozenset(
    {
        "abs", "absolute", "sqrt", "exp", "log", "log2", "log10",
        "negative", "floor", "ceil", "rint", "sign", "square",
        "isfinite", "isnan", "isinf", "logical_not", "nan_to_num",
        "clip",
    }
)
#: numpy functions preserving shape *and* values (index tag kept).
_VALUE_PRESERVING = frozenset({"asarray", "ascontiguousarray", "copy"})
#: ``*_like`` constructors: shape of the prototype, fresh values.
_LIKE_CONSTRUCTORS = frozenset(
    {"zeros_like", "ones_like", "empty_like", "full_like"}
)
#: Array methods preserving shape.
_PRESERVING_METHODS = frozenset({"copy", "astype", "clip", "round"})
#: Python builtins that provably return scalars.
_SCALAR_BUILTINS = frozenset({"len", "int", "float", "bool", "round"})


class AxesEnv(Dict[str, Elem]):
    """Variable name -> lattice element, with a branch-join helper."""

    def copy(self) -> "AxesEnv":
        return AxesEnv(self)

    @staticmethod
    def joined(a: "AxesEnv", b: "AxesEnv") -> "AxesEnv":
        merged = AxesEnv()
        for name in set(a) | set(b):
            merged[name] = join(a.get(name, UNKNOWN), b.get(name, UNKNOWN))
        return merged


class _AxesModuleIndex:
    """Per-module context: alias imports, class table, signatures."""

    def __init__(self, tree: ast.AST) -> None:
        self.alias_names: Dict[str, Elem] = {}
        self.module_aliases: List[str] = []
        numpy_modules, _ = _numpy_aliases(tree)
        self.numpy_names = {
            alias
            for alias, target in numpy_modules.items()
            if target == "numpy"
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro.axes":
                    for alias in node.names:
                        elem = _alias_elem(alias.name)
                        if elem is not None:
                            self.alias_names[alias.asname or alias.name] = elem
                elif node.module == "repro" and any(
                    a.name == "axes" for a in node.names
                ):
                    for alias in node.names:
                        if alias.name == "axes":
                            self.module_aliases.append(alias.asname or "axes")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.axes":
                        self.module_aliases.append(alias.asname or "repro.axes")

        self.classes: Dict[str, ClassSpec] = {}
        assert isinstance(tree, ast.Module)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = self._class_spec(node)

        # Module-level numeric constants are provable scalars.
        self.scalar_names: Dict[str, Elem] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant
            ):
                if isinstance(node.value.value, bool) or not isinstance(
                    node.value.value, (int, float)
                ):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.scalar_names[target.id] = SCALAR

        self.signatures: Dict[str, Optional[Signature]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = self._signature_of(node)
                if (
                    node.name in self.signatures
                    and self.signatures[node.name] != sig
                ):
                    self.signatures[node.name] = None
                else:
                    self.signatures[node.name] = sig

    # -- annotation resolution ----------------------------------------

    def annotation_elem(self, node: Optional[ast.expr]) -> Optional[Elem]:
        """The axis element named by an annotation expression, if any."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self._named_elem(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in self.module_aliases or node.value.id == "axes":
                return _alias_elem(node.attr)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Stringified annotation: resolve a bare alias/class name.
            return self._named_elem(node.value.strip())
        return None

    def _named_elem(self, name: str) -> Optional[Elem]:
        elem = self.alias_names.get(name)
        if elem is not None:
            return elem
        if name in self.classes or name in builtin_classes():
            return instance_elem(name)
        # Alias used without an in-file import (conftest fixtures,
        # doctest snippets): fall back to the global vocabulary.
        return _alias_elem(name)

    def is_bare_ndarray(self, node: Optional[ast.expr]) -> bool:
        """True for an annotation that is exactly ``np.ndarray``."""
        if node is None:
            return False
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return (
                node.value.id in self.numpy_names and node.attr == "ndarray"
            )
        if isinstance(node, ast.Name):
            return node.id == "ndarray"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.strip()
            return text in ("np.ndarray", "numpy.ndarray", "ndarray")
        return False

    def class_spec(self, name: Optional[str]) -> Optional[ClassSpec]:
        if name is None:
            return None
        spec = self.classes.get(name)
        if spec is not None:
            return spec
        return builtin_classes().get(name)

    # -- collection ----------------------------------------------------

    def _class_spec(self, node: ast.ClassDef) -> ClassSpec:
        spec = ClassSpec()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                spec.fields.append(stmt.target.id)
                elem = self.annotation_elem(stmt.annotation)
                if elem is not None:
                    spec.attrs[stmt.target.id] = elem
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_property = any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    for dec in stmt.decorator_list
                )
                if is_property:
                    ret = self.annotation_elem(stmt.returns)
                    if ret is not None:
                        spec.attrs[stmt.name] = ret
                else:
                    spec.methods[stmt.name] = self._signature_of(stmt)
        return spec

    def _signature_of(self, node: ast.AST) -> Signature:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        params = tuple(
            (a.arg, self.annotation_elem(a.annotation))
            for a in positional + list(args.kwonlyargs)
        )
        return params, self.annotation_elem(node.returns)


class _ArrayFunctionAnalysis:
    """One forward axis-dataflow pass over a single function body."""

    def __init__(
        self,
        ctx: FileContext,
        index: _AxesModuleIndex,
        func: ast.AST,
        emit: Callable[[Finding], None],
        self_class: Optional[str] = None,
    ) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._ctx = ctx
        self._index = index
        self._func = func
        self._emit = emit
        self._self_class = self_class
        self._return_elem = index.annotation_elem(func.returns)

    def run(self) -> None:
        env = AxesEnv()
        env.update(self._index.scalar_names)
        args = self._func.args
        positional = list(args.posonlyargs) + list(args.args)
        if (
            self._self_class is not None
            and positional
            and positional[0].arg == "self"
        ):
            env["self"] = instance_elem(self._self_class)
        for arg in positional + list(args.kwonlyargs):
            elem = self._index.annotation_elem(arg.annotation)
            if elem is not None:
                env[arg.arg] = elem
        self._walk_body(self._func.body, env)

    # -- statements ----------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt], env: AxesEnv) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: AxesEnv) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = self._index.annotation_elem(stmt.annotation)
            inferred = (
                self._eval(stmt.value, env)
                if stmt.value is not None
                else UNKNOWN
            )
            if (
                declared is not None
                and declared.is_array
                and not declared.is_any_shape
                and inferred.is_array
                and not inferred.is_any_shape
                and broadcast_axes(declared.axes, inferred.axes) is None
            ):
                self._report_pair(stmt, inferred, declared, "assigned to")
            elem = declared if declared is not None else inferred
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = elem
            elif isinstance(stmt.target, ast.Subscript):
                self._eval(stmt.target, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                left = env.get(stmt.target.id, UNKNOWN)
                env[stmt.target.id] = self._combine(stmt, left, value)
            else:
                # ``self.battery_level += ...`` / ``q[ids] += ...``:
                # check the broadcast without rebinding.
                left = self._eval(stmt.target, env)
                self._combine(stmt, left, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                declared = self._return_elem
                if (
                    declared is not None
                    and declared.is_array
                    and not declared.is_any_shape
                    and value.is_array
                    and not value.is_any_shape
                    and broadcast_axes(declared.axes, value.axes) is None
                ):
                    self._report_pair(stmt, value, declared, "returned as")
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = env.copy(), env.copy()
            self._walk_body(stmt.body, then_env)
            self._walk_body(stmt.orelse, else_env)
            merged = AxesEnv.joined(then_env, else_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            loop_env = env.copy()
            if isinstance(stmt.target, ast.Name):
                loop_env[stmt.target.id] = UNKNOWN
            self._walk_body(stmt.body, loop_env)
            self._walk_body(stmt.orelse, loop_env)
            merged = AxesEnv.joined(env, loop_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            loop_env = env.copy()
            self._walk_body(stmt.body, loop_env)
            self._walk_body(stmt.orelse, loop_env)
            merged = AxesEnv.joined(env, loop_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
            self._walk_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = env.copy()
            self._walk_body(stmt.body, body_env)
            merged = body_env
            for handler in stmt.handlers:
                handler_env = env.copy()
                self._walk_body(handler.body, handler_env)
                merged = AxesEnv.joined(merged, handler_env)
            self._walk_body(stmt.orelse, merged)
            self._walk_body(stmt.finalbody, merged)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _bind(
        self,
        target: ast.expr,
        value_node: ast.expr,
        value: Elem,
        env: AxesEnv,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            sources: List[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                sources = list(value_node.elts)
            else:
                sources = [None] * len(target.elts)
            for sub_target, sub_source in zip(target.elts, sources):
                sub_value = (
                    self._eval(sub_source, env)
                    if sub_source is not None
                    else UNKNOWN
                )
                self._bind(sub_target, sub_source or value_node, sub_value, env)
        elif isinstance(target, ast.Subscript):
            # ``access[node, band] = ...``: run the index checks.
            self._eval(target, env)

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, env: AxesEnv) -> Elem:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return UNKNOWN
            return SCALAR
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub, ast.Invert)):
                result, _ = broadcast(operand, SCALAR)
                return result
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if isinstance(node.op, ast.MatMult):
                return UNKNOWN
            return self._combine(node, left, right)
        if isinstance(node, ast.Compare):
            if not all(
                isinstance(
                    op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)
                )
                for op in node.ops
            ):
                self._eval(node.left, env)
                for comparator in node.comparators:
                    self._eval(comparator, env)
                return UNKNOWN
            result = self._eval(node.left, env)
            for comparator in node.comparators:
                result = self._combine(node, result, self._eval(comparator, env))
            return result
        if isinstance(node, ast.BoolOp):
            parts = [self._eval(v, env) for v in node.values]
            result = parts[0]
            for part in parts[1:]:
                result = join(result, part)
            return result
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join(self._eval(node.body, env), self._eval(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return UNKNOWN
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env: AxesEnv) -> Elem:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self._index.numpy_names
        ):
            if node.attr in ("inf", "nan", "pi", "e", "euler_gamma"):
                return SCALAR
            return UNKNOWN
        base = self._eval(node.value, env)
        if base.is_array:
            if node.attr == "T":
                return transpose(base)
            if node.attr in ("size", "ndim", "itemsize", "nbytes"):
                return SCALAR
            return UNKNOWN
        if base.is_instance:
            spec = self._index.class_spec(base.class_name)
            if spec is not None:
                return spec.attrs.get(node.attr, UNKNOWN)
        return UNKNOWN

    def _eval_subscript(self, node: ast.Subscript, env: AxesEnv) -> Elem:
        base = self._eval(node.value, env)
        items = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        if not base.is_array or base.is_any_shape:
            # Still evaluate index expressions for their own findings.
            for item in items:
                if not isinstance(item, ast.Slice):
                    self._eval(item, env)
            return UNKNOWN

        axes = list(base.axes)
        out: List[str] = []
        position = 0
        exact = True
        for item in items:
            if isinstance(item, ast.Constant) and item.value is None:
                out.append(BROADCAST_AXIS)
                continue
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                return UNKNOWN
            if position >= len(axes):
                # Over-indexing; sizes unknown for "?" so stay quiet.
                return UNKNOWN
            current = axes[position]
            if isinstance(item, ast.Slice):
                self._eval_slice_parts(item, env)
                out.append(current)
                position += 1
                continue
            if isinstance(item, ast.Constant) and isinstance(item.value, int):
                position += 1  # integer index consumes the axis
                continue
            elem = self._eval(item, env)
            if elem.is_array and elem.index_into is not None:
                if (
                    current != elem.index_into
                    and current != BROADCAST_AXIS
                    and elem.index_into != ANY_AXIS
                    and current != ANY_AXIS
                ):
                    self._report(
                        node,
                        "R023",
                        f"array over axes {base.format_axes()} indexed by "
                        f"{elem.index_into}-valued ids {str(elem)} on axis "
                        f"{position} ({current!r}): index through the frozen "
                        f"{current}-order instead",
                    )
                    return UNKNOWN
                if len(items) == 1 and not elem.is_any_shape:
                    # Pure gather: q[link_tx] -> (L, S).
                    return array_elem(tuple(elem.axes) + tuple(axes[1:]))
                exact = False
                position += 1
                continue
            if elem.is_scalar:
                position += 1  # int variable index consumes the axis
                continue
            # Boolean masks / unknown fancy indices: give up on the
            # result shape but keep walking for nested findings.
            exact = False
            position += 1
        if not exact:
            return UNKNOWN
        out.extend(axes[position:])
        if not out:
            return SCALAR
        return array_elem(tuple(out))

    def _eval_slice_parts(self, node: ast.Slice, env: AxesEnv) -> None:
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self._eval(part, env)

    def _eval_call(self, node: ast.Call, env: AxesEnv) -> Elem:
        func = node.func
        args = [self._eval(a, env) for a in node.args]
        kwargs: Dict[str, Elem] = {}
        for kw in node.keywords:
            if kw.arg:
                kwargs[kw.arg] = self._eval(kw.value, env)
            else:
                self._eval(kw.value, env)

        # numpy module functions: np.max(x, axis=1), np.where(...), ...
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._index.numpy_names
        ):
            return self._eval_numpy_call(node, func.attr, args, env)

        # Array-method calls: x.sum(axis=0), x.copy(), x.astype(...).
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, env)
            if base.is_array:
                if func.attr in _REDUCTIONS:
                    return self._reduce_call(node, base, node.args, node.keywords, method=True)
                if func.attr in _PRESERVING_METHODS:
                    result, _ = broadcast(base, SCALAR)
                    return result
                if func.attr == "transpose" and not node.args:
                    return transpose(base)
                if func.attr == "reshape" or func.attr == "ravel":
                    return UNKNOWN
                if func.attr == "item":
                    return SCALAR
                return UNKNOWN
            if base.is_instance:
                spec = self._index.class_spec(base.class_name)
                if spec is not None and func.attr in spec.methods:
                    return self._apply_signature(
                        node, func.attr, spec.methods[func.attr], args, kwargs
                    )
                return UNKNOWN

        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _SCALAR_BUILTINS and len(args) <= 2:
            return SCALAR
        if name == "abs" and len(args) == 1:
            return args[0]

        if isinstance(func, ast.Name):
            # Constructor call of a known annotated class.
            spec = self._index.class_spec(func.id)
            if spec is not None:
                init = spec.methods.get("__init__")
                if init is not None:
                    self._apply_signature(node, func.id, init, args, kwargs)
                else:
                    self._check_constructor(node, func.id, spec, args, kwargs)
                return instance_elem(func.id)
            signature = self._index.signatures.get(func.id)
            if signature is not None:
                return self._apply_signature(
                    node, func.id, signature, args, kwargs
                )
        return UNKNOWN

    def _eval_numpy_call(
        self,
        node: ast.Call,
        name: str,
        args: List[Elem],
        env: AxesEnv,
    ) -> Elem:
        if name in _REDUCTIONS:
            return self._reduce_call(node, args[0] if args else UNKNOWN, node.args[1:], node.keywords, method=False)
        if name in _BINARY_UFUNCS and len(args) >= 2:
            return self._combine(node, args[0], args[1])
        if name == "where" and len(args) == 3:
            result = self._combine(node, args[0], args[1])
            return self._combine(node, result, args[2])
        if name in _SHAPE_PRESERVING and args:
            result, _ = broadcast(args[0], SCALAR)
            return result
        if name in _VALUE_PRESERVING and args:
            return args[0]
        if name in _LIKE_CONSTRUCTORS and args:
            result, _ = broadcast(args[0], SCALAR)
            return result
        if name == "transpose" and args:
            if len(node.args) == 1 and not node.keywords:
                return transpose(args[0])
            return UNKNOWN
        return UNKNOWN

    def _reduce_call(
        self,
        node: ast.Call,
        operand: Elem,
        extra_args: Sequence[ast.expr],
        keywords: Sequence[ast.keyword],
        method: bool,
    ) -> Elem:
        axis: Optional[object] = None
        keepdims = False
        axis_node: Optional[ast.expr] = None
        if extra_args:
            axis_node = extra_args[0]
        for kw in keywords:
            if kw.arg == "axis":
                axis_node = kw.value
            elif kw.arg == "keepdims" and isinstance(kw.value, ast.Constant):
                keepdims = bool(kw.value.value)
        if axis_node is None:
            result, _ = reduce_axes(operand, None, keepdims)
            return result
        if isinstance(axis_node, ast.Constant) and isinstance(
            axis_node.value, int
        ):
            axis = axis_node.value
        elif isinstance(axis_node, ast.UnaryOp) and isinstance(
            axis_node.op, ast.USub
        ):
            inner = axis_node.operand
            if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
                axis = -inner.value
        if axis is None:
            return UNKNOWN
        result, error = reduce_axes(operand, int(axis), keepdims)
        if error is not None:
            self._report(node, "R021", error)
        return result

    def _apply_signature(
        self,
        node: ast.Call,
        name: str,
        signature: Signature,
        args: List[Elem],
        kwargs: Dict[str, Elem],
    ) -> Elem:
        params, return_elem = signature
        for position, elem in enumerate(args):
            if position < len(params):
                self._check_argument(
                    node.args[position], params[position], elem, name
                )
        by_name = dict(params)
        for kw in node.keywords:
            if kw.arg and kw.arg in by_name and kw.arg in kwargs:
                self._check_argument(
                    kw.value, (kw.arg, by_name[kw.arg]), kwargs[kw.arg], name
                )
        return return_elem if return_elem is not None else UNKNOWN

    def _check_constructor(
        self,
        node: ast.Call,
        name: str,
        spec: ClassSpec,
        args: List[Elem],
        kwargs: Dict[str, Elem],
    ) -> None:
        for position, elem in enumerate(args):
            if position < len(spec.fields):
                field_name = spec.fields[position]
                declared = spec.attrs.get(field_name)
                if declared is not None:
                    self._check_argument(
                        node.args[position],
                        (field_name, declared),
                        elem,
                        name,
                    )
        for kw in node.keywords:
            if kw.arg and kw.arg in spec.attrs and kw.arg in kwargs:
                self._check_argument(
                    kw.value, (kw.arg, spec.attrs[kw.arg]), kwargs[kw.arg], name
                )

    def _check_argument(
        self,
        arg_node: ast.expr,
        param: Tuple[str, Optional[Elem]],
        elem: Elem,
        func_name: Optional[str],
    ) -> None:
        param_name, expected = param
        if expected is None or not expected.is_array or expected.is_any_shape:
            return
        if not elem.is_array or elem.is_any_shape:
            return
        if broadcast_axes(expected.axes, elem.axes) is not None:
            return
        self._report(
            arg_node,
            "R020",
            f"argument '{param_name}' of {func_name or '<call>'}() expects "
            f"axes {expected.format_axes()} but receives "
            f"{elem.format_axes()}",
        )

    def _combine(self, node: ast.AST, left: Elem, right: Elem) -> Elem:
        result, mismatch = broadcast(left, right)
        if mismatch is not None:
            a, b = mismatch
            self._report(
                node,
                "R020",
                f"incompatible broadcast: {a.format_axes()} with "
                f"{b.format_axes()} (no axis alignment exists; a transposed "
                f"operand broadcasts silently when runtime sizes coincide)",
            )
        return result

    def _report_pair(
        self, node: ast.AST, got: Elem, expected: Elem, verb: str
    ) -> None:
        self._report(
            node,
            "R020",
            f"{got.format_axes()} {verb} {expected.format_axes()}",
        )

    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        finding = self._ctx.finding(node, rule_id, message)
        if finding is not None:
            self._emit(finding)


def _walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Yield every function with its enclosing class name (if direct)."""

    def visit(nodes: Sequence[ast.stmt], cls: Optional[str]) -> Iterator[
        Tuple[ast.AST, Optional[str]]
    ]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, cls
                yield from visit(node.body, None)
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, node.name)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                yield from visit(node.body, cls)

    yield from visit(tree.body, None)


class ArrayDataflowRule(Rule):
    """R020-R023, implemented as one axis-dataflow pass per function.

    The four rule ids share this checker because they share the
    inference; ``--select`` filters the emitted findings by id.
    """

    rule_id = "R020"
    title = "array axis/shape dataflow analysis (R020-R023)"
    explain = """\
See `python -m repro.analysis --explain R020|R021|R022|R023`.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        index = _AxesModuleIndex(ctx.tree)
        assert isinstance(ctx.tree, ast.Module)
        hot = is_hot_path(ctx.display_path) and not ctx.is_test
        for func, cls in _walk_functions(ctx.tree):
            assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            if hot:
                self._check_bare_params(ctx, index, func, findings.append)
            _ArrayFunctionAnalysis(
                ctx, index, func, findings.append, self_class=cls
            ).run()
        yield from findings

    @staticmethod
    def _check_bare_params(
        ctx: FileContext,
        index: _AxesModuleIndex,
        func: ast.AST,
        emit: Callable[[Finding], None],
    ) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if index.is_bare_ndarray(arg.annotation):
                finding = ctx.finding(
                    arg,
                    "R022",
                    f"hot-path parameter '{arg.arg}' of {func.name}() is a "
                    "bare np.ndarray: annotate its axes with a repro.axes "
                    "alias (NodeVec, LinkBandMat, AnyArray, ...)",
                )
                if finding is not None:
                    emit(finding)


# -- catalogue ---------------------------------------------------------

from repro.analysis.dataflow import AnalysisRuleInfo  # noqa: E402

ARRAY_RULES: Dict[str, AnalysisRuleInfo] = {
    "R020": AnalysisRuleInfo(
        "R020",
        "no broadcasting of incompatible named axes",
        """\
numpy broadcasting compares sizes, not meanings: a transposed (M, L)
array combines silently with a (L, M) kernel whenever the runtime
lengths happen to coincide (4 bands, 4 links), and every downstream
number is wrong without a single exception.

The analyzer infers axis names from repro.axes annotations (parameters,
returns, class attributes, `x: LinkBandMat = ...` assignments) and
flags every arithmetic op, comparison, np.where/ufunc call, argument
pass, return and annotated assignment whose two sides have known,
incompatible axes under numpy's right-alignment rule.  The inserted
axis "1" (None/np.newaxis) broadcasts with anything.

Fix: transpose/realign the operand explicitly, or correct the
annotation.  Intentional duck-shape tricks carry `# noqa: R020` with a
justification.
""",
    ),
    "R021": AnalysisRuleInfo(
        "R021",
        "no reduction over an out-of-range axis",
        """\
`arr.sum(axis=1)` on an array that is declared (L,) does not fail at
analysis time in numpy until it runs — and in branchy control code the
bad reduction may only execute on rare slot configurations.  Reducing
over the wrong *existing* axis is even worse: `member.any(axis=0)`
instead of axis=1 yields a plausibly-shaped but semantically wrong
mask.

The analyzer resolves constant `axis=` arguments (function and method
forms, negative indices, keepdims) against the operand's declared rank
and flags reductions that are provably out of range.

Fix: reduce over a declared axis; if the array is genuinely
shape-agnostic, annotate it AnyArray.
""",
    ),
    "R022": AnalysisRuleInfo(
        "R022",
        "no bare np.ndarray parameters in hot-path modules",
        """\
The struct-of-arrays hot path (core/arraystate.py, control/router.py,
control/scheduler.py, queueing/*, solvers/sequential_fix.py) is where
a shape mistake costs the most and where the axis analyzer needs
signatures to anchor its inference.  A parameter annotated bare
`np.ndarray` documents nothing and checks nothing.

Fix: annotate with the repro.axes alias naming the layout —
NodeVec (N,), LinkVec (L,), QueuePackets (N, S), LinkBandMat (L, M),
LinkToNode for index arrays, or AnyArray when the function is
genuinely shape-generic (e.g. seq_sum).
""",
    ),
    "R023": AnalysisRuleInfo(
        "R023",
        "no frozen-index violations (node ids vs. link positions)",
        """\
The array core freezes three orders: nodes (N), links (L) and sessions
(S).  Index arrays cross them — link_tx/link_rx are (L,) arrays of
*node ids*, so `q[link_tx]` is a valid gather producing (L, S), but
`g[link_tx]` reads the link-axis G backlog at node-id positions:
in-range, silent, wrong.

The analyzer tracks the IndexInto metadata of repro.axes index aliases
(LinkToNode, SessionToNode, ...) and flags any subscript where the
index array's value domain differs from the indexed array's axis.

Fix: index link-axis arrays by link position and node-axis arrays by
node id; when converting between the two, go through the frozen
ArrayState.links order explicitly.
""",
    ),
}

"""The unit lattice and dimension algebra of the dataflow analyzer.

Every expression is abstracted to one of four kinds of element:

* ``UNKNOWN`` (top) — no unit information; arithmetic with it yields
  ``UNKNOWN`` and is never flagged (the analyzer only reports when it
  *knows* both operands).
* ``SCALAR`` — a dimensionless numeric literal or pure ratio; adapts
  to any unit under addition and preserves the other operand under
  multiplication.
* ``unit_elem(u)`` — a value carrying the concrete :class:`Unit` ``u``.
* ``CONFLICT`` (bottom) — contradictory evidence; produced by ``meet``
  on incompatible elements, never propagated by arithmetic (after a
  mismatch is reported the result degrades to ``UNKNOWN`` so one bug
  yields one finding, not a cascade).

``join`` merges control-flow branches (toward ``UNKNOWN``); ``meet``
intersects constraints (toward ``CONFLICT``).  The product/quotient
tables encode the only cross-dimension algebra the library uses:
power x time = energy and rate x time = volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.units import UNIT_BY_SYMBOL, Unit


@dataclass(frozen=True)
class Elem:
    """One lattice element; ``unit`` is set only for ``kind='unit'``."""

    kind: str
    unit: Optional[Unit] = None

    def __repr__(self) -> str:
        if self.kind == "unit":
            assert self.unit is not None
            return f"<{self.unit.symbol}>"
        return f"<{self.kind}>"


UNKNOWN = Elem("unknown")
SCALAR = Elem("scalar")
CONFLICT = Elem("conflict")


def unit_elem(unit: Unit) -> Elem:
    """The lattice element carrying ``unit``."""
    return Elem("unit", unit)


def from_symbol(symbol: str) -> Elem:
    """Element for a canonical unit symbol (``"J"``, ``"W"``, ...)."""
    return unit_elem(UNIT_BY_SYMBOL[symbol])


def is_linear(elem: Elem) -> bool:
    """True for dimensionless elements (``SCALAR`` or the ``lin`` unit)."""
    if elem is SCALAR or elem.kind == "scalar":
        return True
    return elem.kind == "unit" and elem.unit is not None and elem.unit.dimension == "dimensionless"


def join(a: Elem, b: Elem) -> Elem:
    """Least upper bound: the merge of two control-flow branches."""
    if a == b:
        return a
    if a.kind == "conflict":
        return b
    if b.kind == "conflict":
        return a
    # Distinct units, or scalar vs. unit, or anything vs. unknown: the
    # only common ancestor is "no information".
    return UNKNOWN


def meet(a: Elem, b: Elem) -> Elem:
    """Greatest lower bound: both constraints asserted at once."""
    if a == b:
        return a
    if a.kind == "unknown":
        return b
    if b.kind == "unknown":
        return a
    return CONFLICT


#: ``symbol_a * symbol_b -> symbol`` (checked in both orders).
_PRODUCTS: Dict[Tuple[str, str], str] = {
    ("W", "s"): "J",
    ("bit/s", "s"): "bit",
    ("packet/slot", "s"): "packet",  # only via an explicit slot count
    ("$/kWh", "kWh"): "$",
    ("$/J", "J"): "$",
}

#: ``numerator / denominator -> symbol``.
_QUOTIENTS: Dict[Tuple[str, str], str] = {
    ("J", "s"): "W",
    ("J", "W"): "s",
    ("bit", "s"): "bit/s",
    ("bit", "bit/s"): "s",
    ("$", "kWh"): "$/kWh",
    ("$", "J"): "$/J",
}


def classify_mismatch(a: Unit, b: Unit) -> str:
    """The rule id a mismatched ``a`` vs. ``b`` pair falls under.

    * R011 — either side is on the logarithmic dB scale;
    * R012 — both are rates, one per-slot and one per-second;
    * R010 — every other incompatible pair (including same-dimension
      scale mixes like J vs. kWh, which also need a converter).
    """
    if a.dimension == "level" or b.dimension == "level":
        return "R011"
    if a.per is not None and b.per is not None and a.per != b.per:
        return "R012"
    return "R010"


def add_result(a: Elem, b: Elem) -> Tuple[Elem, Optional[Tuple[Unit, Unit]]]:
    """Abstract ``a + b`` / ``a - b`` (and comparisons).

    Returns the result element and, when both operands carry known but
    different units, the mismatched pair for the caller to report.
    """
    if a.kind == "unit" and b.kind == "unit":
        assert a.unit is not None and b.unit is not None
        if a.unit.symbol == b.unit.symbol:
            return a, None
        return UNKNOWN, (a.unit, b.unit)
    if a.kind == "unit" and is_linear(b):
        return a, None
    if b.kind == "unit" and is_linear(a):
        return b, None
    if a.kind == "scalar" and b.kind == "scalar":
        return SCALAR, None
    return UNKNOWN, None


def mul_result(a: Elem, b: Elem) -> Tuple[Elem, Optional[Tuple[Unit, Unit]]]:
    """Abstract ``a * b``; dB x dB (or dB x unit) is the R011 pair."""
    if a.kind == "unit" and b.kind == "unit":
        assert a.unit is not None and b.unit is not None
        if a.unit.dimension == "level" or b.unit.dimension == "level":
            # Multiplying a dB value by anything but a plain scalar is
            # the log/linear confusion R011 exists for.
            return UNKNOWN, (a.unit, b.unit)
        if a.unit.dimension == "dimensionless":
            return b, None
        if b.unit.dimension == "dimensionless":
            return a, None
        product = _PRODUCTS.get((a.unit.symbol, b.unit.symbol)) or _PRODUCTS.get(
            (b.unit.symbol, a.unit.symbol)
        )
        if product is not None:
            return from_symbol(product), None
        return UNKNOWN, None
    if a.kind == "unit" and b.kind == "scalar":
        return a, None
    if b.kind == "unit" and a.kind == "scalar":
        return b, None
    if a.kind == "scalar" and b.kind == "scalar":
        return SCALAR, None
    return UNKNOWN, None


def div_result(a: Elem, b: Elem) -> Tuple[Elem, Optional[Tuple[Unit, Unit]]]:
    """Abstract ``a / b``; same-dimension quotients become scalars."""
    if a.kind == "unit" and b.kind == "unit":
        assert a.unit is not None and b.unit is not None
        if a.unit.dimension == "level" or b.unit.dimension == "level":
            return UNKNOWN, (a.unit, b.unit)
        if b.unit.dimension == "dimensionless":
            return a, None
        quotient = _QUOTIENTS.get((a.unit.symbol, b.unit.symbol))
        if quotient is not None:
            return from_symbol(quotient), None
        if a.unit.dimension == b.unit.dimension:
            # J / kWh, bit/s / kbit/s, ...: a pure (scale) ratio.
            return SCALAR, None
        return UNKNOWN, None
    if a.kind == "unit" and b.kind == "scalar":
        return a, None
    if a.kind == "scalar" and b.kind == "scalar":
        return SCALAR, None
    return UNKNOWN, None

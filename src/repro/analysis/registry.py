"""The unified rule registry: every rule id, title and rationale.

One lookup table across all four checker families:

* ``R001``-``R006`` — the AST lint rules (``repro.lint``);
* ``R010``-``R012`` — the units/dimension dataflow analysis;
* ``R020``-``R025`` — the array axis/shape dataflow analysis
  (R024/R025 come from the interprocedural pass);
* ``R030``-``R032`` — the determinism rules;
* ``R040``-``R042`` — the hot-path complexity/allocation rules;
* ``R050``-``R052`` — the process-pool safety rules;
* ``EQ001``-``EQ003`` — the paper-equation coverage audit.

The registry backs ``python -m repro.analysis --explain`` and the
registry test (every id must carry non-empty explain text plus one
positive and one negative fixture), so a new rule cannot land
undocumented.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.arrayflow import ARRAY_RULES
from repro.analysis.dataflow import ANALYSIS_RULES, AnalysisRuleInfo
from repro.analysis.determinism import DETERMINISM_RULES
from repro.analysis.equations import EQUATION_RULES
from repro.analysis.hotpath import HOTPATH_RULES
from repro.analysis.interproc import INTERPROC_RULES
from repro.analysis.poolsafety import POOL_RULES
from repro.lint.rules import ALL_RULES


def _build() -> Dict[str, AnalysisRuleInfo]:
    registry: Dict[str, AnalysisRuleInfo] = {}
    for rule in ALL_RULES:
        registry[rule.rule_id] = AnalysisRuleInfo(
            rule.rule_id, rule.title, rule.explain
        )
    for family in (
        ANALYSIS_RULES,
        ARRAY_RULES,
        INTERPROC_RULES,
        DETERMINISM_RULES,
        HOTPATH_RULES,
        POOL_RULES,
    ):
        registry.update(family)
    for eq_id, (title, explain) in EQUATION_RULES.items():
        registry[eq_id] = AnalysisRuleInfo(eq_id, title, explain)
    return registry


#: Rule id -> catalogue entry, across every checker family.
RULE_REGISTRY: Dict[str, AnalysisRuleInfo] = _build()

#: Every rule id, in catalogue order (R-rules numerically, EQ last).
ALL_RULE_IDS: Tuple[str, ...] = tuple(
    sorted(RULE_REGISTRY, key=lambda rid: (rid.startswith("EQ"), rid))
)

#: The ids emitted by ``python -m repro.analysis`` (no --equations):
#: both dataflow families (with their interprocedural extensions),
#: the determinism rules, and the call-graph rule families.
ANALYZER_RULE_IDS: Tuple[str, ...] = tuple(
    sorted(
        set(ANALYSIS_RULES)
        | set(ARRAY_RULES)
        | set(INTERPROC_RULES)
        | set(DETERMINISM_RULES)
        | set(HOTPATH_RULES)
        | set(POOL_RULES)
    )
)

"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's figures plot;
``format_table`` keeps that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, float, int]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{cell:.{precision}e}"
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: column names.
        rows: row cells; each row must match ``headers`` in length.
        precision: significant digits for float cells.
        title: optional heading line.

    Returns:
        The table as a single string (no trailing newline).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered.append([_render(cell, precision) for cell in row])

    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)

"""Hot-path complexity/allocation rules over the call graph (R040-R042).

The slot loop is the product the benchmarks measure: everything
reachable from ``SlotSimulator.step`` runs once per slot, per
replication, per sweep point.  These rules turn the performance
assumptions behind ROADMAP items 1-2 (batched S1/S4 control kernels,
sub-quadratic topology for large U) into checked properties:

* **R040** — a per-slot Python loop over a named-axis-sized iterable
  (``range(num_nodes)``, ``for node in model.nodes``) in a function
  reachable from ``engine.step``.  One such loop caps the whole
  simulator at Python speed regardless of how vectorized the kernels
  around it are;
* **R041** — dense quadratic construction: an ``(N, N)``/``(L, L)``
  allocation, the all-pairs ``x[:, None] - x[None, :]`` broadcast
  idiom, or a ``sum(...)`` accumulation that walks a 2-D matrix row
  with an axis-sized generator.  Checked everywhere in the library
  (topology is built off the hot path but caps scale just the same);
* **R042** — an array allocation inside a loop in a hot-reachable
  function: per-iteration ``np.zeros(...)`` churn that belongs in a
  preallocated buffer.

Functions whose docstring marks them ``"cold path"`` are exempt from
R040/R042 (same convention as R006); test/benchmark code is always
exempt.  Findings that are accepted costs carry ``# noqa: R04x`` with
a justification naming the ROADMAP item that will remove them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import HOT_ROOTS, FunctionInfo, Program
from repro.analysis.dataflow import AnalysisRuleInfo
from repro.lint.rules import Finding

#: Identifier/attribute names that measure a named axis (N/L/U/S).
AXIS_COUNT_TOKENS = frozenset(
    {
        "num_nodes",
        "num_links",
        "num_users",
        "num_sessions",
        "num_queues",
        "num_candidate_links",
    }
)
#: Final attribute/name components naming an axis-sized collection.
AXIS_COLLECTION_NAMES = frozenset(
    {"nodes", "links", "candidate_links", "sessions", "users", "queues"}
)
#: Iterable wrappers unwrapped before matching the axis pattern.
_ITER_WRAPPERS = frozenset(
    {"enumerate", "sorted", "list", "tuple", "reversed", "zip", "set"}
)
#: numpy constructors that allocate a fresh array.
ALLOC_FUNCS = frozenset(
    {
        "zeros", "ones", "empty", "full", "eye", "identity", "arange",
        "linspace", "fromiter", "tile", "repeat", "vstack", "hstack",
        "stack", "concatenate", "array", "zeros_like", "ones_like",
        "empty_like", "full_like", "outer",
    }
)


def _final_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _mentions_axis_count(node: ast.expr) -> Optional[str]:
    """An axis-count token mentioned anywhere inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in AXIS_COUNT_TOKENS:
            return sub.id
        if isinstance(sub, ast.Attribute) and sub.attr in AXIS_COUNT_TOKENS:
            return sub.attr
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
            and sub.args
        ):
            final = _final_name(sub.args[0])
            if final in AXIS_COLLECTION_NAMES:
                return f"len(...{final})"
    return None


def axis_iterable(node: ast.expr) -> Optional[str]:
    """A human-readable description when ``node`` iterates a named
    axis, else None."""
    if isinstance(node, ast.Call):
        func_name = _final_name(node.func)
        if isinstance(node.func, ast.Name) and func_name == "range":
            for arg in node.args:
                token = _mentions_axis_count(arg)
                if token is not None:
                    return f"range({token})"
            return None
        if isinstance(node.func, ast.Name) and func_name in _ITER_WRAPPERS:
            for arg in node.args:
                inner = axis_iterable(arg)
                if inner is not None:
                    return inner
            return None
        return None
    dotted = _dotted(node)
    if dotted is not None and dotted.rsplit(".", 1)[-1] in AXIS_COLLECTION_NAMES:
        return dotted
    return None


def _is_cold(func: ast.AST) -> bool:
    docstring = ast.get_docstring(func) or ""  # type: ignore[arg-type]
    return "cold path" in docstring.lower()


def _numpy_alloc_name(
    call: ast.Call, numpy_names: Set[str]
) -> Optional[str]:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in numpy_names
        and func.attr in ALLOC_FUNCS
    ):
        return func.attr
    return None


def _loop_iters(node: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    for sub in ast.walk(node):
        if isinstance(
            sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in sub.generators:
                yield generator.iter


def check_hot_path(program: Program, roots: Sequence[str] = HOT_ROOTS) -> List[Finding]:
    """Run R040/R041/R042 over the program."""
    findings: List[Finding] = []
    hot = program.hot_functions(roots)
    hot_infos = [
        program.functions[qual]
        for qual in sorted(hot)
        if qual in program.functions
    ]
    for info in hot_infos:
        ctx = info.module.ctx
        if not ctx.is_library or _is_cold(info.node):
            continue
        findings.extend(_check_r040(info))
        findings.extend(_check_r042(info))
    for module in program.modules.values():
        if not module.ctx.is_library:
            continue
        findings.extend(_check_r041(module))
    return findings


def _check_r040(info: FunctionInfo) -> Iterator[Finding]:
    ctx = info.module.ctx
    for node in ast.walk(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not info.node and _is_cold(node):
                return  # nested cold helpers keep their loops
    seen: Set[int] = set()
    for stmt in ast.walk(info.node):
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iters: List[ast.expr] = [stmt.iter]
        elif isinstance(
            stmt, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters = [generator.iter for generator in stmt.generators]
        else:
            continue
        for iterable in iters:
            if id(iterable) in seen:
                continue
            seen.add(id(iterable))
            description = axis_iterable(iterable)
            if description is None:
                continue
            finding = ctx.finding(
                iterable,
                "R040",
                f"per-slot Python loop over axis-sized '{description}' in "
                f"{info.qualname}(), reachable from engine.step: vectorize "
                "over the ArrayState arrays (ROADMAP item 1 batches the "
                "S1/S4 kernels)",
            )
            if finding is not None:
                yield finding


def _check_r041(module) -> Iterator[Finding]:
    ctx = module.ctx
    numpy_names = module.axes_index.numpy_names
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            alloc = _numpy_alloc_name(node, numpy_names)
            if alloc is not None and node.args:
                shape = node.args[0]
                entries = (
                    list(shape.elts)
                    if isinstance(shape, (ast.Tuple, ast.List))
                    else []
                )
                tokens = [
                    token
                    for token in (_mentions_axis_count(e) for e in entries)
                    if token is not None
                ]
                if len(tokens) >= 2:
                    finding = ctx.finding(
                        node,
                        "R041",
                        f"dense quadratic allocation np.{alloc}(({', '.join(tokens)}, "
                        "...)): an axis-by-axis matrix caps scale at "
                        "U~hundreds; use the sparse/candidate-link "
                        "representation (ROADMAP item 2)",
                    )
                    if finding is not None:
                        yield finding
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and isinstance(node.args[0], ast.GeneratorExp)
            ):
                yield from _check_dense_accumulation(ctx, node.args[0])
        elif isinstance(node, ast.BinOp):
            yield from _check_allpairs_broadcast(ctx, node)


def _check_allpairs_broadcast(ctx, node: ast.BinOp) -> Iterator[Finding]:
    """``x[:, None, :] - x[None, :, :]``: the O(U^2) pairwise idiom."""
    left, right = node.left, node.right
    if not (isinstance(left, ast.Subscript) and isinstance(right, ast.Subscript)):
        return
    left_base = _dotted(left.value)
    right_base = _dotted(right.value)
    if left_base is None or left_base != right_base:
        return

    def has_none_index(sub: ast.Subscript) -> bool:
        items = (
            list(sub.slice.elts)
            if isinstance(sub.slice, ast.Tuple)
            else [sub.slice]
        )
        return any(
            isinstance(item, ast.Constant) and item.value is None
            for item in items
        )

    if has_none_index(left) and has_none_index(right):
        finding = ctx.finding(
            node,
            "R041",
            f"all-pairs broadcast '{left_base}[...None...] op "
            f"{right_base}[...None...]' materializes a dense quadratic "
            "matrix; switch to the neighbourhood-limited construction "
            "(ROADMAP item 2)",
        )
        if finding is not None:
            yield finding


def _check_dense_accumulation(ctx, genexp: ast.GeneratorExp) -> Iterator[Finding]:
    """``sum(m[k, j] ... for k in range(num_nodes))``: a dense matrix
    walk that, called per link/band, goes quadratic."""
    for generator in genexp.generators:
        description = axis_iterable(generator.iter)
        if description is None or not isinstance(generator.target, ast.Name):
            continue
        loop_var = generator.target.id
        for sub in ast.walk(genexp.elt):
            if not isinstance(sub, ast.Subscript):
                continue
            if not isinstance(sub.slice, ast.Tuple):
                continue
            uses_var = any(
                isinstance(item, ast.Name) and item.id == loop_var
                for item in sub.slice.elts
            )
            if uses_var:
                matrix = _dotted(sub.value) or "<matrix>"
                finding = ctx.finding(
                    genexp,
                    "R041",
                    f"dense accumulation over '{matrix}' with an axis-sized "
                    f"generator ({description}): per-call O(axis) walks of a "
                    "dense matrix compose to quadratic work; vectorize the "
                    "sum or restrict to the candidate neighbourhood "
                    "(ROADMAP item 2)",
                )
                if finding is not None:
                    yield finding
                return


def _check_r042(info: FunctionInfo) -> Iterator[Finding]:
    ctx = info.module.ctx
    numpy_names = info.module.axes_index.numpy_names
    reported: Set[int] = set()
    for loop in ast.walk(info.node):
        if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
            continue
        for sub in ast.walk(loop):
            if sub is loop or not isinstance(sub, ast.Call):
                continue
            alloc = _numpy_alloc_name(sub, numpy_names)
            if alloc is None or id(sub) in reported:
                continue
            reported.add(id(sub))
            finding = ctx.finding(
                sub,
                "R042",
                f"np.{alloc}(...) allocated inside a loop in "
                f"{info.qualname}(), reachable from engine.step: hoist to "
                "a preallocated buffer filled in place (allocation churn "
                "dominates small-array slot loops)",
            )
            if finding is not None:
                yield finding


# -- catalogue ---------------------------------------------------------

HOTPATH_RULES: Dict[str, AnalysisRuleInfo] = {
    "R040": AnalysisRuleInfo(
        "R040",
        "no per-slot Python loops over named axes in engine.step's cone",
        """\
Everything reachable from SlotSimulator.step runs once per slot, per
replication, per sweep point; one Python-level loop over an axis-sized
iterable (range(num_nodes), for node in model.nodes, an axis-sized
comprehension) pins the whole simulator at interpreter speed no matter
how vectorized the kernels around it are — the exact plateau the
slot-loop benchmark shows today.

The analyzer builds the package call graph, takes the reachable cone
of engine.step, and flags axis-sized loops inside it.  Functions whose
docstring marks them "cold path" are exempt (same convention as R006).

Fix: batch the computation over the ArrayState struct-of-arrays
layout (ROADMAP item 1).  Accepted interim loops carry `# noqa: R040`
naming the ROADMAP item that retires them.
""",
    ),
    "R041": AnalysisRuleInfo(
        "R041",
        "no dense quadratic (N,N)/(L,L) construction",
        """\
A dense axis-by-axis matrix — np.zeros((num_nodes, num_nodes)), the
all-pairs broadcast positions[:, None, :] - positions[None, :, :], or
a sum(...) that walks a dense gains row per call — is O(U^2) memory or
time and is exactly what caps the reproduction near U~200 while the
paper's regime of interest extends to 10k-1M users (ROADMAP item 2).

The analyzer flags the three construction idioms everywhere in the
library tree (topology building is off the hot path but still bounds
the reachable scale).

Fix: build gains/conflicts over the candidate-link neighbourhood
(k-nearest or radius-limited) instead of all pairs.  Until the
sub-quadratic topology lands, accepted sites carry `# noqa: R041`
referencing ROADMAP item 2.
""",
    ),
    "R042": AnalysisRuleInfo(
        "R042",
        "no array allocation inside hot loops (preallocate buffers)",
        """\
np.zeros/np.empty inside a loop in engine.step's reachable cone
allocates and garbage-collects once per iteration; for the small
per-band/per-link arrays of the control plane, allocator traffic
rivals the arithmetic itself (the struct-of-arrays refactor exists
precisely to amortize this).

The analyzer flags numpy allocation calls lexically inside for/while
loops of hot-reachable functions.  "cold path" docstrings exempt a
function (R006 convention).

Fix: hoist the buffer above the loop and fill it in place (out=,
buf[:] = ...), or vectorize the loop away entirely (then R040 retires
too).  Justified per-iteration allocations carry `# noqa: R042`.
""",
    ),
}

"""Bound-gap analysis across the ``V`` sweep (Fig. 2(a) post-processing).

Theorem 5 predicts the upper/lower gap closes like ``B/V``; these
helpers compute the absolute and relative gap series from a list of
:class:`~repro.core.bounds.BoundReport` objects so tests and benches
can assert the monotone-shrinking shape.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.bounds import BoundReport


def gap_series(reports: Sequence[BoundReport]) -> np.ndarray:
    """Absolute gaps ``upper - lower``, ordered by the reports' V."""
    ordered = sorted(reports, key=lambda r: r.control_v)
    return np.array([r.gap for r in ordered], dtype=float)


def relative_gap_series(reports: Sequence[BoundReport]) -> np.ndarray:
    """Gaps normalised by ``max(|upper|, 1)``, ordered by V."""
    ordered = sorted(reports, key=lambda r: r.control_v)
    return np.array(
        [r.gap / max(abs(r.upper), 1.0) for r in ordered], dtype=float
    )


def is_shrinking(series: Sequence[float], slack: float = 0.05) -> bool:
    """True when the series trends downward (allowing ``slack`` noise).

    Compares each element against the first: the final element must be
    strictly smaller, and no element may exceed the running minimum by
    more than ``slack`` relative.
    """
    arr = np.asarray(series, dtype=float)
    if arr.size < 2:
        return True
    running_min = np.minimum.accumulate(arr)
    bounded_noise = bool(np.all(arr <= running_min * (1 + slack) + 1e-12))
    return bool(arr[-1] < arr[0]) and bounded_noise


def empirical_gaps(reports: Sequence[BoundReport]) -> List[float]:
    """Gaps against the *empirical* lower bound ``psi*_P3bar``.

    The formal Theorem-5 bound subtracts ``B/V``, which is loose at
    small ``V``; the relaxed optimum itself is also a valid anchor for
    judging how close the heuristic gets (DESIGN.md, experiments).
    """
    ordered = sorted(reports, key=lambda r: r.control_v)
    return [r.upper - r.relaxed_penalty for r in ordered]

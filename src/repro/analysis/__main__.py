"""``python -m repro.analysis`` — static units/equations analysis."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""The abstract-value lattice for the array axis dataflow analysis.

Mirrors :mod:`repro.analysis.unitlattice`, but the tracked property is
the tuple of *named axes* of a numpy array rather than a physical
unit.  Each expression evaluates to one of:

- ``UNKNOWN`` — no axis information (top).  Arithmetic with an
  unknown operand stays unknown; the analyzer reports nothing, which
  keeps it sound-but-quiet on un-annotated code.
- ``SCALAR`` — a provable Python/numpy scalar (literals, ``len()``,
  full reductions).  Broadcasts with anything.
- an **array** element — a known tuple of axis names such as
  ``("L", "M")``, optionally tagged with the axis its integer values
  index (``IndexInto``) for rule R023.
- an **instance** element — a value of a known annotated class
  (``ArrayState``, ``_RouterStatic``, ...) whose attributes resolve
  through a class table.  Instances never participate in broadcasting.

Broadcasting follows numpy's right-alignment rule on *names*: axes are
compared from the trailing end, the literal axis ``"1"`` (inserted via
``None``/``np.newaxis``) broadcasts against anything, and two distinct
real names in the same slot are rule R020 — the analyzer has no sizes,
so it treats differently-named axes as incompatible even when their
runtime lengths coincide (that accidental compatibility is exactly the
silent-transpose bug the rule exists to catch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.axes import ANY_AXIS

_KIND_UNKNOWN = "unknown"
_KIND_SCALAR = "scalar"
_KIND_ARRAY = "array"
_KIND_INSTANCE = "instance"

#: The broadcast-with-anything axis inserted by ``None`` indexing.
BROADCAST_AXIS = "1"


@dataclass(frozen=True)
class Elem:
    """One lattice element (immutable, hashable)."""

    kind: str
    axes: Tuple[str, ...] = ()
    index_into: Optional[str] = None
    class_name: Optional[str] = None

    @property
    def is_unknown(self) -> bool:
        return self.kind == _KIND_UNKNOWN

    @property
    def is_scalar(self) -> bool:
        return self.kind == _KIND_SCALAR

    @property
    def is_array(self) -> bool:
        return self.kind == _KIND_ARRAY

    @property
    def is_instance(self) -> bool:
        return self.kind == _KIND_INSTANCE

    @property
    def is_any_shape(self) -> bool:
        """Array annotated shape-agnostic (``Axes(ANY_AXIS)``)."""
        return self.is_array and ANY_AXIS in self.axes

    @property
    def rank(self) -> int:
        return len(self.axes)

    def __str__(self) -> str:
        if self.is_array:
            shape = "(" + ", ".join(self.axes) + ")"
            if self.index_into is not None:
                return f"{shape}->{self.index_into}-ids"
            return shape
        if self.is_instance:
            return str(self.class_name)
        return self.kind

    def format_axes(self) -> str:
        return "(" + ", ".join(self.axes) + ")"


UNKNOWN = Elem(_KIND_UNKNOWN)
SCALAR = Elem(_KIND_SCALAR)


def array_elem(
    axes: Tuple[str, ...], index_into: Optional[str] = None
) -> Elem:
    """An array element with the given axis names."""
    return Elem(_KIND_ARRAY, axes=tuple(axes), index_into=index_into)


def instance_elem(class_name: str) -> Elem:
    """A value of a known annotated class."""
    return Elem(_KIND_INSTANCE, class_name=class_name)


def join(a: Elem, b: Elem) -> Elem:
    """Least upper bound for control-flow merges.

    Equal elements survive a merge; anything else degrades to
    ``UNKNOWN`` (index tags that disagree are dropped first, so two
    branches producing the same axes with different index domains
    still merge to a plain array).
    """
    if a == b:
        return a
    if (
        a.is_array
        and b.is_array
        and a.axes == b.axes
    ):
        # Same shape, different (or one-sided) index tag: keep the
        # shape, drop the tag.
        return array_elem(a.axes)
    return UNKNOWN


def broadcast(
    a: Elem, b: Elem
) -> Tuple[Elem, Optional[Tuple[Elem, Elem]]]:
    """Result of broadcasting two operands, numpy-style.

    Returns ``(result, mismatch)`` where ``mismatch`` is the offending
    pair when the named axes are provably incompatible (rule R020).
    On mismatch the result degrades to ``UNKNOWN`` so one bug yields
    one finding, mirroring the units lattice.
    """
    if a.is_instance or b.is_instance:
        return UNKNOWN, None
    if a.is_unknown or b.is_unknown:
        return UNKNOWN, None
    if a.is_scalar and b.is_scalar:
        return SCALAR, None
    if a.is_scalar:
        return _strip_index(b), None
    if b.is_scalar:
        return _strip_index(a), None
    if a.is_any_shape or b.is_any_shape:
        return UNKNOWN, None

    result = broadcast_axes(a.axes, b.axes)
    if result is None:
        return UNKNOWN, (a, b)
    return array_elem(result), None


def broadcast_axes(
    a: Tuple[str, ...], b: Tuple[str, ...]
) -> Optional[Tuple[str, ...]]:
    """Right-aligned axis-name broadcast; ``None`` if incompatible."""
    rank = max(len(a), len(b))
    out = []
    for pos in range(1, rank + 1):
        name_a = a[-pos] if pos <= len(a) else BROADCAST_AXIS
        name_b = b[-pos] if pos <= len(b) else BROADCAST_AXIS
        if name_a == name_b:
            out.append(name_a)
        elif name_a == BROADCAST_AXIS:
            out.append(name_b)
        elif name_b == BROADCAST_AXIS:
            out.append(name_a)
        else:
            return None
    return tuple(reversed(out))


def reduce_axes(
    elem: Elem, axis: Optional[int], keepdims: bool = False
) -> Tuple[Elem, Optional[str]]:
    """Result of a reduction (``sum``/``max``/``any``/...) over ``axis``.

    Returns ``(result, error)`` where ``error`` is a human-readable
    reason when ``axis`` is provably out of range for the operand's
    declared rank (rule R021).
    """
    if not elem.is_array or elem.is_any_shape:
        return UNKNOWN, None
    if axis is None:
        # Full reduction.
        if keepdims:
            return array_elem((BROADCAST_AXIS,) * elem.rank), None
        return SCALAR, None
    resolved = axis + elem.rank if axis < 0 else axis
    if resolved < 0 or resolved >= elem.rank:
        return UNKNOWN, (
            f"axis {axis} is out of range for the declared "
            f"{elem.format_axes()} array (rank {elem.rank})"
        )
    names = list(elem.axes)
    if keepdims:
        names[resolved] = BROADCAST_AXIS
    else:
        del names[resolved]
    if not names:
        return SCALAR, None
    return array_elem(tuple(names)), None


def transpose(elem: Elem) -> Elem:
    """``x.T`` / ``np.transpose(x)``: reverse the axis names."""
    if not elem.is_array or elem.is_any_shape:
        return UNKNOWN if not elem.is_scalar else SCALAR
    return array_elem(tuple(reversed(elem.axes)))


def _strip_index(elem: Elem) -> Elem:
    """Arithmetic results are no longer pure index arrays."""
    if elem.is_array and elem.index_into is not None:
        return array_elem(elem.axes)
    return elem

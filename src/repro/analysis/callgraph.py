"""Package-wide call graph and program index for interprocedural analysis.

The per-function passes (:mod:`repro.analysis.dataflow`,
:mod:`repro.analysis.arrayflow`) stop at call boundaries: a shape or
unit fact established in ``core/arraystate.py`` is invisible to the
``control/`` caller two hops away.  This module builds the structures
the interprocedural engine (:mod:`repro.analysis.interproc`) and the
call-graph rule families (:mod:`repro.analysis.hotpath`,
:mod:`repro.analysis.poolsafety`) share:

* :class:`Program` — every module parsed once, with its import map,
  units index, axes index, top-level functions and classes qualified
  by dotted name (``repro.control.router.BackpressureRouter.route``);
* :class:`CallGraph` — the caller -> callee edges, resolved through
  imports, ``self``, annotated parameters, ``self.attr = Class(...)``
  constructor assignments in ``__init__``, and — for receivers built
  behind factories — a name-based fallback that links ``x.decide()``
  to every known ``decide`` method;
* reachability (:meth:`CallGraph.reachable_from`) used to scope the
  hot-path rules to ``engine.step`` and the pool-safety rules to the
  functions the sweep executor ships to workers.

Resolution is deliberately over-approximate (the fallback may add
edges that never fire at runtime) because every consumer wants a
superset: a function *possibly* reachable from the slot loop must obey
the hot-path rules.  Builtin-collection method names (``items``,
``get``, ``update``, ...) are excluded from the fallback so ordinary
dict traffic does not wire the whole program together.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.arrayflow import ClassSpec, _AxesModuleIndex, builtin_classes
from repro.analysis.dataflow import _ModuleIndex
from repro.lint.cli import discover_files
from repro.lint.rules import FileContext, Finding

#: Method names never resolved by the name-based fallback: they are
#: overwhelmingly dict/list/set/str protocol traffic, and an edge to a
#: same-named program method would wire unrelated code into the hot
#: path.  Typed receivers (annotations, ``self.attr`` constructor
#: scans) still resolve these precisely.
FALLBACK_EXCLUDED_METHODS = frozenset(
    {
        "get", "keys", "values", "items", "update", "pop", "append",
        "extend", "add", "remove", "discard", "clear", "copy",
        "setdefault", "popitem", "insert", "count", "index", "sort",
        "reverse", "join", "split", "strip", "format", "startswith",
        "endswith", "read", "write", "close", "flush", "mkdir",
        "exists", "resolve", "open",
    }
)

#: Entry points of the per-slot hot path: everything reachable from
#: these must stay vectorized (rules R040/R042).
HOT_ROOTS: Tuple[str, ...] = (
    "repro.sim.engine.SlotSimulator.step",
    "repro.sim.engine.SlotSimulator.run",
)

#: Functions always treated as process-pool worker entry points, in
#: addition to the first argument of every ``pool.submit(...)`` call
#: discovered in the tree.
WORKER_ROOTS: Tuple[str, ...] = ("repro.experiments.executor._execute_job",)

#: Attribute names whose calls enqueue work on a process pool; the
#: first positional argument is the worker entry point.
_POOL_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)


def module_name_for(display_path: str) -> str:
    """Dotted module name for a source path (``repro.control.router``).

    Everything from the last path component named ``repro`` onwards is
    the package path; files outside a ``repro`` tree fall back to their
    stem so ad-hoc fixtures still index cleanly.
    """
    parts = display_path.replace("\\", "/").rstrip("/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    anchor = -1
    for position, part in enumerate(parts):
        if part == "repro":
            anchor = position
    selected = parts[anchor:] if anchor >= 0 else parts[-1:]
    if selected and selected[-1] == "__init__":
        selected = selected[:-1]
    return ".".join(selected)


@dataclass
class FunctionInfo:
    """One top-level function or one directly nested method."""

    qualname: str
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]


@dataclass
class ClassInfo:
    """One top-level class: its methods, typed attributes and bases."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class *qualname* (from ``self.x = Class(...)``
    #: assignments in ``__init__`` and annotated class-level fields).
    attr_classes: Dict[str, str] = field(default_factory=dict)
    #: resolved base-class qualnames (single level is enough here).
    bases: List[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module with its per-pass indexes and import map."""

    name: str
    ctx: FileContext
    axes_index: _AxesModuleIndex
    unit_index: _ModuleIndex
    #: local binding name -> dotted target (module, function or class).
    imports: Dict[str, str] = field(default_factory=dict)

    @property
    def tree(self) -> ast.Module:
        tree = self.ctx.tree
        assert isinstance(tree, ast.Module)
        return tree


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with the AST node for diagnostics."""

    caller: str
    callee: str
    node: ast.Call


class CallGraph:
    """Caller -> callee qualname edges with BFS reachability."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []

    def add(self, caller: str, callee: str, node: ast.Call) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.call_sites.append(CallSite(caller, callee, node))

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every qualname reachable from ``roots`` (roots included
        when they exist as edges' sources or anywhere in the graph)."""
        seen: Set[str] = set()
        frontier = [root for root in roots]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen


def _import_map(tree: ast.Module, module_name: str) -> Dict[str, str]:
    """Local binding name -> dotted target for every import statement."""
    mapping: Dict[str, str] = {}
    package_parts = module_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return mapping


class Program:
    """Every module of the analyzed tree, indexed for whole-program use."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.parse_findings: List[Finding] = []
        #: method bare name -> qualnames, for the name-based fallback.
        self.methods_by_name: Dict[str, Set[str]] = {}
        #: class bare name -> qualnames (for cross-module spec lookup).
        self.classes_by_name: Dict[str, Set[str]] = {}
        self.callgraph = CallGraph()
        #: worker entry points discovered at ``pool.submit(...)`` sites.
        self.detected_worker_roots: Set[str] = set()

    # -- construction --------------------------------------------------

    @classmethod
    def load(cls, paths: Sequence[str]) -> "Program":
        """Parse every ``*.py`` under ``paths`` into a program."""
        sources: List[Tuple[Path, str, str]] = []
        for path in discover_files(paths):
            sources.append((path, str(path), path.read_text(encoding="utf-8")))
        return cls._build(sources)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Program":
        """Build a program from in-memory ``{display_path: source}``."""
        triples = [
            (Path(display), display, text) for display, text in sorted(sources.items())
        ]
        return cls._build(triples)

    @classmethod
    def _build(cls, sources: Sequence[Tuple[Path, str, str]]) -> "Program":
        program = cls()
        for path, display, text in sources:
            try:
                tree = ast.parse(text, filename=display)
            except SyntaxError as exc:
                program.parse_findings.append(
                    Finding(
                        path=display,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) or 1,
                        rule_id="E999",
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            ctx = FileContext.build(
                path=path, display_path=display, source=text, tree=tree
            )
            name = module_name_for(display)
            module = ModuleInfo(
                name=name,
                ctx=ctx,
                axes_index=_AxesModuleIndex(tree),
                unit_index=_ModuleIndex(tree),
                imports=_import_map(tree, name),
            )
            # Last writer wins on duplicate module names (shadowed
            # fixtures); real trees have unique dotted names.
            program.modules[name] = module
        program._collect_definitions()
        program._collect_attr_classes()
        program._collect_worker_entries()
        program._build_callgraph()
        return program

    def _collect_definitions(self) -> None:
        for module in self.modules.values():
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname=f"{module.name}.{stmt.name}",
                        module=module,
                        node=stmt,
                    )
                    self.functions[info.qualname] = info
                elif isinstance(stmt, ast.ClassDef):
                    cls_info = ClassInfo(
                        qualname=f"{module.name}.{stmt.name}",
                        module=module,
                        node=stmt,
                    )
                    for body_stmt in stmt.body:
                        if isinstance(
                            body_stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            method = FunctionInfo(
                                qualname=(
                                    f"{module.name}.{stmt.name}.{body_stmt.name}"
                                ),
                                module=module,
                                node=body_stmt,
                                class_name=stmt.name,
                            )
                            cls_info.methods[body_stmt.name] = method
                            self.functions[method.qualname] = method
                            self.methods_by_name.setdefault(
                                body_stmt.name, set()
                            ).add(method.qualname)
                    for base in stmt.bases:
                        resolved = self._resolve_expr_name(module, base)
                        if resolved is not None:
                            cls_info.bases.append(resolved)
                    self.classes[cls_info.qualname] = cls_info
                    self.classes_by_name.setdefault(stmt.name, set()).add(
                        cls_info.qualname
                    )

    def _collect_worker_entries(self) -> None:
        """Seed worker roots from ``worker_entry`` class attributes.

        Sweep backends (``experiments/executor.py``) declare their
        worker-side entry point as a class attribute::

            class SerialBackend:
                worker_entry = staticmethod(_execute_job)

        The function named there runs inside pool workers even when no
        ``submit``-style call site is syntactically visible (the
        backend may pass it through arbitrary plumbing), so every such
        declaration seeds the R050–R052 worker reachability sweep —
        new backends keep pool-safety coverage without touching the
        analyzer.
        """
        for cls_info in self.classes.values():
            module = cls_info.module
            for stmt in cls_info.node.body:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if (
                    not isinstance(target, ast.Name)
                    or target.id != "worker_entry"
                    or value is None
                ):
                    continue
                # Unwrap the staticmethod(...) wrapper idiom.
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "staticmethod"
                    and len(value.args) == 1
                ):
                    value = value.args[0]
                resolved = self._resolve_expr_name(module, value)
                if resolved in self.functions:
                    self.detected_worker_roots.add(resolved)

    def _collect_attr_classes(self) -> None:
        """Scan every ``__init__`` for ``self.x = Class(...)`` facts."""
        for cls_info in self.classes.values():
            module = cls_info.module
            init = cls_info.methods.get("__init__")
            if init is None:
                continue
            for node in ast.walk(init.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                    or not isinstance(value, ast.Call)
                ):
                    continue
                resolved = self._resolve_expr_name(module, value.func)
                if resolved in self.classes:
                    cls_info.attr_classes[target.attr] = resolved

    # -- name resolution -----------------------------------------------

    def resolve_name(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Dotted target for a bare name in ``module`` scope, if known."""
        local = f"{module.name}.{name}"
        if local in self.functions or local in self.classes:
            return local
        return module.imports.get(name)

    def _resolve_expr_name(
        self, module: ModuleInfo, node: ast.expr
    ) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.resolve_name(module, node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = module.imports.get(node.value.id)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def lookup_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Find ``method`` on the class or (one level of) its bases."""
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method].qualname
            frontier.extend(cls_info.bases)
        return None

    def class_spec_for(self, module: ModuleInfo, bare_name: str) -> Optional[ClassSpec]:
        """A ClassSpec for ``bare_name`` as seen from ``module``.

        Local classes and runtime-reflected builtins win; otherwise an
        unambiguous program-wide bare-name match resolves, so instance
        elements that crossed a module boundary keep their attributes.
        """
        spec = module.axes_index.class_spec(bare_name)
        if spec is not None:
            return spec
        quals = self.classes_by_name.get(bare_name, set())
        if len(quals) == 1:
            qual = next(iter(quals))
            owner = self.classes[qual].module
            return owner.axes_index.classes.get(qual.rsplit(".", 1)[1])
        return None

    # -- call graph ----------------------------------------------------

    def _build_callgraph(self) -> None:
        for module in self.modules.values():
            for info in self.functions.values():
                if info.module is not module:
                    continue
                local_types = self._local_class_types(module, info)
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in self._callees(module, info, node, local_types):
                        self.callgraph.add(info.qualname, callee, node)
                    self._detect_worker_root(module, node)

    def _local_class_types(
        self, module: ModuleInfo, info: FunctionInfo
    ) -> Dict[str, str]:
        """Variable -> class qualname from annotations and constructor
        assignments, a one-pass flow-insensitive approximation."""
        types: Dict[str, str] = {}
        func = info.node
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = func.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is None:
                continue
            resolved = self._resolve_expr_name(module, arg.annotation)
            if resolved in self.classes:
                types[arg.arg] = resolved
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                resolved = self._resolve_expr_name(module, node.value.func)
                if resolved in self.classes:
                    types[node.targets[0].id] = resolved
        return types

    def _callees(
        self,
        module: ModuleInfo,
        caller: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
    ) -> Set[str]:
        func = call.func
        out: Set[str] = set()
        if isinstance(func, ast.Name):
            target = self.resolve_name(module, func.id)
            if target in self.functions:
                out.add(target)
            elif target in self.classes:
                init = self.lookup_method(target, "__init__")
                if init is not None:
                    out.add(init)
            return out
        if not isinstance(func, ast.Attribute):
            return out
        attr = func.attr
        base = func.value
        receiver_class: Optional[str] = None
        if isinstance(base, ast.Name):
            if base.id == "self" and caller.class_name is not None:
                receiver_class = f"{module.name}.{caller.class_name}"
            elif base.id in local_types:
                receiver_class = local_types[base.id]
            else:
                target = self.resolve_name(module, base.id)
                if target is not None:
                    dotted = f"{target}.{attr}"
                    if dotted in self.functions:  # module alias call
                        out.add(dotted)
                        return out
                    if dotted in self.classes:  # mod.Class(...) ctor
                        init = self.lookup_method(dotted, "__init__")
                        if init is not None:
                            out.add(init)
                        return out
                    if target in self.classes:  # Class.method(...)
                        receiver_class = target
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and caller.class_name is not None
        ):
            own = self.classes.get(f"{module.name}.{caller.class_name}")
            if own is not None:
                receiver_class = own.attr_classes.get(base.attr)
        if receiver_class is not None:
            resolved_method = self.lookup_method(receiver_class, attr)
            if resolved_method is not None:
                out.add(resolved_method)
                return out
        if attr.startswith("__") or attr in FALLBACK_EXCLUDED_METHODS:
            return out
        out.update(self.methods_by_name.get(attr, ()))
        return out

    def _detect_worker_root(self, module: ModuleInfo, call: ast.Call) -> None:
        func = call.func
        if (
            not isinstance(func, ast.Attribute)
            or func.attr not in _POOL_SUBMIT_METHODS
            or not call.args
        ):
            return
        first = call.args[0]
        resolved: Optional[str] = None
        if isinstance(first, ast.Name):
            resolved = self.resolve_name(module, first.id)
        elif isinstance(first, ast.Attribute):
            resolved = self._resolve_expr_name(module, first)
        if resolved in self.functions:
            self.detected_worker_roots.add(resolved)

    # -- reachability --------------------------------------------------

    def hot_functions(self, roots: Sequence[str] = HOT_ROOTS) -> Set[str]:
        """Qualnames reachable from the per-slot loop entry points."""
        present = [root for root in roots if root in self.functions]
        return self.callgraph.reachable_from(present)

    def worker_functions(self, roots: Sequence[str] = WORKER_ROOTS) -> Set[str]:
        """Qualnames reachable from process-pool worker entry points."""
        seeds = {root for root in roots if root in self.functions}
        seeds.update(self.detected_worker_roots)
        return self.callgraph.reachable_from(seeds)


def builtin_class_names() -> Set[str]:
    """Bare names of the runtime-reflected struct-of-arrays classes."""
    return set(builtin_classes())

"""Fixed-point interprocedural lattice propagation (R020-R025, R010-R012).

The per-function passes anchor every fact in an annotation *visible in
the same file*.  This engine lifts both lattices to whole-program
scope over the :class:`~repro.analysis.callgraph.Program` index:

* **function summaries** — for every function the engine maintains a
  summary ``(param elements, return element)``.  Declared annotations
  win; where a parameter is unannotated, the join of the elements
  observed at *every resolved call site* seeds the callee's
  environment, and where a return is unannotated, the join of the
  callee's return expressions flows back to the caller.  Iterating to
  a fixed point (the lattices are finite-height: everything degrades
  to ``UNKNOWN``) propagates the ``core/arraystate.py`` axis
  vocabulary through ``control/``, ``solvers/``, ``phy/`` and
  ``queueing/`` without annotating every signature;
* **cross-module call checking** — argument elements are checked
  against the callee's *declared* signature wherever the call resolves
  through the import map, upgrading the per-function argument checks
  to whole-program and emitting **R024** (call-site axis mismatch
  across a module boundary) where the per-function pass is blind;
* **return contradiction checking** — a value produced by a
  summary-resolved call that then contradicts a declared annotation
  (assignment, return, or broadcast partner) is **R025**: the
  contradiction only exists interprocedurally.

Seeding from call sites is deliberately optimistic: omitted optional
arguments and calls through aliased function objects do not join into
the summary, so a summary may be narrower than runtime reality.  That
is the standard linter trade-off — every reported mismatch is real
under some call path the engine actually resolved.

The units lattice gets the same upgrade with a lighter mechanism:
:func:`run_units` wraps each module's index so calls resolve through
the import map into the *global* signature table before falling back
to same-module lookup (whole-program R010-R012).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.arrayflow import (
    ArrayDataflowRule,
    AxesEnv,
    Signature,
    _ArrayFunctionAnalysis,
    _walk_functions,
    is_hot_path,
)
from repro.analysis.callgraph import FunctionInfo, ModuleInfo, Program
from repro.analysis.dataflow import (
    AnalysisRuleInfo,
    _FunctionAnalysis,
    _ModuleIndex,
)
from repro.analysis.dataflow import Signature as UnitSignature
from repro.analysis.shapelattice import (
    Elem,
    UNKNOWN,
    broadcast,
    broadcast_axes,
    instance_elem,
    join,
)
from repro.lint.rules import Finding

#: Fixed-point iteration bound.  The axis lattice has height 2 per
#: slot (concrete -> UNKNOWN), so summaries stabilise after the call
#: graph's longest un-annotated chain; 4 rounds covers the tree with
#: slack and the engine stops early on convergence anyway.
MAX_ITERATIONS = 4


def _join_opt(a: Optional[Elem], b: Elem) -> Elem:
    return b if a is None else join(a, b)


def _is_concrete(elem: Optional[Elem]) -> bool:
    if elem is None:
        return False
    if elem.is_array:
        return not elem.is_any_shape
    return elem.is_instance or elem.is_scalar


class Summaries:
    """Per-function inferred facts, refined each fixed-point round."""

    def __init__(self) -> None:
        #: qualname -> inferred return element (declared returns are
        #: looked up separately; only un-annotated returns live here).
        self.returns: Dict[str, Elem] = {}
        #: qualname -> per-parameter join of resolved call-site args.
        self.params: Dict[str, Tuple[Optional[Elem], ...]] = {}


class _InterprocAnalysis(_ArrayFunctionAnalysis):
    """The per-function axis pass, upgraded with program resolution.

    Differences from the base pass:

    * call targets resolve through the program's import map (free
      functions, constructors, ``mod.func`` attribute calls), so
      arguments are checked against cross-module declared signatures
      (R024) and declared/summarised return elements flow back;
    * unannotated parameters are seeded from the call-site summary;
    * returns are joined into the summary for the next round;
    * contradictions whose evidence crossed a call boundary report as
      R025 instead of R020.
    """

    def __init__(
        self,
        engine: "InterproceduralEngine",
        info_module: ModuleInfo,
        func: ast.AST,
        emit: Callable[[Finding], None],
        self_class: Optional[str],
        qualname: Optional[str],
        reporting: bool,
    ) -> None:
        super().__init__(
            info_module.ctx,
            info_module.axes_index,
            func,
            emit,
            self_class=self_class,
        )
        self._engine = engine
        self._module = info_module
        self._qualname = qualname
        self._reporting = reporting
        self._cross_site = False
        #: ids of Call nodes whose element came from a cross-module or
        #: summary-inferred resolution — the R025 provenance mark.
        self._summary_values: Set[int] = set()
        self.inferred_return: Optional[Elem] = None

    # -- environment seeding -------------------------------------------

    def run(self) -> None:
        env = AxesEnv()
        env.update(self._index.scalar_names)
        args = self._func.args
        positional = list(args.posonlyargs) + list(args.args)
        if (
            self._self_class is not None
            and positional
            and positional[0].arg == "self"
        ):
            env["self"] = instance_elem(self._self_class)
        if positional and positional[0].arg in ("self", "cls"):
            ordered = positional[1:] + list(args.kwonlyargs)
        else:
            ordered = positional + list(args.kwonlyargs)
        seeded: Tuple[Optional[Elem], ...] = ()
        if self._qualname is not None:
            seeded = self._engine.summaries.params.get(self._qualname, ())
        for position, arg in enumerate(ordered):
            elem = self._index.annotation_elem(arg.annotation)
            if elem is None and position < len(seeded):
                candidate = seeded[position]
                if _is_concrete(candidate):
                    elem = candidate
            if elem is not None:
                env[arg.arg] = elem
        self._walk_body(self._func.body, env)

    # -- returns -------------------------------------------------------

    def _walk_stmt(self, stmt: ast.stmt, env: AxesEnv) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._note_return(UNKNOWN)
                return
            value = self._eval(stmt.value, env)
            self._note_return(value)
            declared = self._return_elem
            if (
                declared is not None
                and declared.is_array
                and not declared.is_any_shape
                and value.is_array
                and not value.is_any_shape
                and broadcast_axes(declared.axes, value.axes) is None
            ):
                if id(stmt.value) in self._summary_values:
                    self._report(
                        stmt,
                        "R025",
                        f"return-shape contradiction: {value.format_axes()} "
                        f"returned as {declared.format_axes()} — the value "
                        "crossed a call boundary the per-function pass "
                        "cannot see",
                    )
                else:
                    self._report_pair(stmt, value, declared, "returned as")
            return
        super()._walk_stmt(stmt, env)

    def _note_return(self, elem: Elem) -> None:
        if self.inferred_return is None:
            self.inferred_return = elem
        else:
            self.inferred_return = join(self.inferred_return, elem)

    # -- call resolution -----------------------------------------------

    def _eval_call(self, node: ast.Call, env: AxesEnv) -> Elem:
        resolved = self._resolve_program_call(node.func, env)
        if resolved is not None:
            qualname, is_class, cross = resolved
            args = [self._eval(a, env) for a in node.args]
            kwargs: Dict[str, Elem] = {}
            for kw in node.keywords:
                if kw.arg:
                    kwargs[kw.arg] = self._eval(kw.value, env)
                else:
                    self._eval(kw.value, env)
            if is_class:
                return self._apply_program_constructor(
                    node, qualname, args, kwargs, cross
                )
            return self._apply_program_call(node, qualname, args, kwargs, cross)
        return super()._eval_call(node, env)

    def _resolve_program_call(
        self, func: ast.expr, env: AxesEnv
    ) -> Optional[Tuple[str, bool, bool]]:
        """Resolve a call target to ``(qualname, is_class, cross)``.

        Returns None for everything the base pass already handles well
        (numpy, array methods, instance methods, local constructors,
        scalar builtins) so behaviour degrades gracefully.
        """
        program = self._engine.program
        if isinstance(func, ast.Name):
            if func.id in self._index.numpy_names:
                return None
            target = program.resolve_name(self._module, func.id)
            if target is None:
                return None
            if target in program.functions:
                info = program.functions[target]
                return target, False, info.module is not self._module
            if target in program.classes:
                cls_info = program.classes[target]
                if cls_info.module is self._module:
                    return None  # local constructor: base pass handles it
                return target, True, True
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value
            if base.id in self._index.numpy_names:
                return None
            if base.id in env and env[base.id] is not UNKNOWN:
                return None  # typed receiver: base pass handles methods
            target = self._module.imports.get(base.id)
            if target is None:
                return None
            dotted = f"{target}.{func.attr}"
            if dotted in program.functions:
                info = program.functions[dotted]
                return dotted, False, info.module is not self._module
            if dotted in program.classes:
                return dotted, True, True
            if target in program.classes:
                method = program.lookup_method(target, func.attr)
                if method is not None:
                    info = program.functions[method]
                    return method, False, info.module is not self._module
        return None

    def _apply_program_call(
        self,
        node: ast.Call,
        qualname: str,
        args: List[Elem],
        kwargs: Dict[str, Elem],
        cross: bool,
    ) -> Elem:
        signature = self._engine.declared_signature(qualname)
        params, declared_ret = signature
        display = qualname if cross else qualname.rsplit(".", 1)[1]
        self._cross_site = cross
        try:
            self._apply_signature(node, display, signature, args, kwargs)
        finally:
            self._cross_site = False
        self._engine.record_call(qualname, args, kwargs)
        ret = declared_ret
        from_summary = False
        if ret is None:
            ret = self._engine.summaries.returns.get(qualname)
            from_summary = ret is not None
        if ret is None:
            return UNKNOWN
        if cross or from_summary:
            self._summary_values.add(id(node))
        return ret

    def _apply_program_constructor(
        self,
        node: ast.Call,
        qualname: str,
        args: List[Elem],
        kwargs: Dict[str, Elem],
        cross: bool,
    ) -> Elem:
        program = self._engine.program
        bare = qualname.rsplit(".", 1)[1]
        owner = program.classes[qualname].module
        spec = owner.axes_index.classes.get(bare)
        local_name = bare
        if isinstance(node.func, ast.Name):
            local_name = node.func.id
        if spec is not None:
            self._cross_site = cross
            try:
                init = spec.methods.get("__init__")
                if init is not None:
                    self._apply_signature(node, qualname, init, args, kwargs)
                else:
                    self._check_constructor(node, qualname, spec, args, kwargs)
            finally:
                self._cross_site = False
        if cross:
            self._summary_values.add(id(node))
        return instance_elem(local_name)

    # -- tagged reporting ----------------------------------------------

    def _check_argument(
        self,
        arg_node: ast.expr,
        param: Tuple[str, Optional[Elem]],
        elem: Elem,
        func_name: Optional[str],
    ) -> None:
        if not self._cross_site:
            super()._check_argument(arg_node, param, elem, func_name)
            return
        param_name, expected = param
        if expected is None or not expected.is_array or expected.is_any_shape:
            return
        if not elem.is_array or elem.is_any_shape:
            return
        if broadcast_axes(expected.axes, elem.axes) is not None:
            return
        self._report(
            arg_node,
            "R024",
            f"call across a module boundary: argument '{param_name}' of "
            f"{func_name or '<call>'}() expects axes "
            f"{expected.format_axes()} but receives {elem.format_axes()} "
            "(signature resolved through the call graph; the per-function "
            "pass cannot see it)",
        )

    def _report_pair(
        self, node: ast.AST, got: Elem, expected: Elem, verb: str
    ) -> None:
        value = getattr(node, "value", None)
        if value is not None and id(value) in self._summary_values:
            self._report(
                node,
                "R025",
                f"return-shape contradiction: {got.format_axes()} {verb} "
                f"{expected.format_axes()} — the value crossed a call "
                "boundary the per-function pass cannot see",
            )
            return
        super()._report_pair(node, got, expected, verb)

    def _combine(self, node: ast.AST, left: Elem, right: Elem) -> Elem:
        result, mismatch = broadcast(left, right)
        if mismatch is not None:
            a, b = mismatch
            if self._summary_operand(node):
                self._report(
                    node,
                    "R025",
                    f"incompatible broadcast: {a.format_axes()} with "
                    f"{b.format_axes()} — one operand is a return value "
                    "resolved through the call graph, invisible to the "
                    "per-function pass",
                )
            else:
                self._report(
                    node,
                    "R020",
                    f"incompatible broadcast: {a.format_axes()} with "
                    f"{b.format_axes()} (no axis alignment exists; a "
                    "transposed operand broadcasts silently when runtime "
                    "sizes coincide)",
                )
        return result

    def _summary_operand(self, node: ast.AST) -> bool:
        for attr in ("left", "right", "value"):
            child = getattr(node, attr, None)
            if child is not None and id(child) in self._summary_values:
                return True
        for child in getattr(node, "comparators", None) or ():
            if id(child) in self._summary_values:
                return True
        return False

    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        if not self._reporting:
            return
        super()._report(node, rule_id, message)


class InterproceduralEngine:
    """Whole-program axis analysis: summaries, fixed point, reporting."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries = Summaries()
        self._pending_params: Dict[str, List[Optional[Elem]]] = {}
        self._declared: Dict[str, Signature] = {}
        for qualname, info in program.functions.items():
            self._declared[qualname] = info.module.axes_index._signature_of(
                info.node
            )
        self._inject_imported_classes()
        self._augment_attr_specs()
        self._info_by_node: Dict[int, FunctionInfo] = {
            id(info.node): info for info in program.functions.values()
        }

    # -- program-index preparation -------------------------------------

    def _inject_imported_classes(self) -> None:
        """Make imported classes resolvable under their local alias, so
        constructor calls and instance attribute reads cross modules."""
        for module in self.program.modules.values():
            for local, target in module.imports.items():
                cls_info = self.program.classes.get(target)
                if cls_info is None:
                    continue
                bare = target.rsplit(".", 1)[1]
                spec = cls_info.module.axes_index.classes.get(bare)
                if spec is not None and local not in module.axes_index.classes:
                    module.axes_index.classes[local] = spec

    def _augment_attr_specs(self) -> None:
        """Record ``self.x = Class(...)`` and ``self.x: Alias = ...``
        facts from ``__init__`` into each class's spec, so method calls
        through composed objects resolve without annotations."""
        for cls_info in self.program.classes.values():
            module = cls_info.module
            bare = cls_info.qualname.rsplit(".", 1)[1]
            spec = module.axes_index.classes.get(bare)
            init = cls_info.methods.get("__init__")
            if spec is None or init is None:
                continue
            for node in ast.walk(init.node):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                else:
                    continue
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                    or target.attr in spec.attrs
                ):
                    continue
                if isinstance(node, ast.AnnAssign):
                    elem = module.axes_index.annotation_elem(node.annotation)
                    if elem is not None:
                        spec.attrs[target.attr] = elem
                    continue
                attr_cls = cls_info.attr_classes.get(target.attr)
                if attr_cls is not None:
                    spec.attrs[target.attr] = instance_elem(
                        attr_cls.rsplit(".", 1)[1]
                    )

    # -- summary bookkeeping -------------------------------------------

    def declared_signature(self, qualname: str) -> Signature:
        return self._declared[qualname]

    def record_call(
        self, qualname: str, args: List[Elem], kwargs: Dict[str, Elem]
    ) -> None:
        params, _ = self._declared[qualname]
        slots = self._pending_params.setdefault(
            qualname, [None] * len(params)
        )
        for position, elem in enumerate(args):
            if position < len(slots):
                slots[position] = _join_opt(slots[position], elem)
        by_name = {name: i for i, (name, _) in enumerate(params)}
        for name, elem in kwargs.items():
            position = by_name.get(name)
            if position is not None:
                slots[position] = _join_opt(slots[position], elem)

    # -- fixed point ---------------------------------------------------

    def solve(self, max_iterations: int = MAX_ITERATIONS) -> int:
        """Iterate summary passes until convergence; returns rounds."""
        rounds = 0
        for _ in range(max_iterations):
            rounds += 1
            self._pending_params = {}
            pending_returns: Dict[str, Elem] = {}
            for qualname, info in self.program.functions.items():
                analysis = self._analysis(info, reporting=False)
                analysis.run()
                _, declared_ret = self._declared[qualname]
                ret = analysis.inferred_return
                if declared_ret is None and _is_concrete(ret):
                    assert ret is not None
                    pending_returns[qualname] = ret
            new_params = {
                qual: tuple(slots)
                for qual, slots in self._pending_params.items()
            }
            changed = (
                new_params != self.summaries.params
                or pending_returns != self.summaries.returns
            )
            self.summaries.params = new_params
            self.summaries.returns = pending_returns
            self._refresh_method_specs()
            if not changed:
                break
        return rounds

    def _refresh_method_specs(self) -> None:
        """Push inferred method returns into the class specs so
        ``obj.method()`` receiver calls see them too."""
        for qualname, ret in self.summaries.returns.items():
            info = self.program.functions.get(qualname)
            if info is None or info.class_name is None:
                continue
            spec = info.module.axes_index.classes.get(info.class_name)
            if spec is None:
                continue
            params, declared_ret = self._declared[qualname]
            if declared_ret is not None:
                continue
            name = qualname.rsplit(".", 1)[1]
            if name == "__init__":
                continue
            spec.methods[name] = (params, ret)

    # -- reporting -----------------------------------------------------

    def report(self) -> List[Finding]:
        """The final, finding-emitting pass over every function."""
        findings: List[Finding] = []
        for module in self.program.modules.values():
            hot = is_hot_path(module.ctx.display_path) and not module.ctx.is_test
            for func, cls in _walk_functions(module.tree):
                if hot:
                    ArrayDataflowRule._check_bare_params(
                        module.ctx, module.axes_index, func, findings.append
                    )
                info = self._info_by_node.get(id(func))
                analysis = _InterprocAnalysis(
                    self,
                    module,
                    func,
                    findings.append,
                    self_class=(
                        info.class_name if info is not None else cls
                    ),
                    qualname=info.qualname if info is not None else None,
                    reporting=True,
                )
                analysis.run()
        return findings

    def _analysis(
        self, info: FunctionInfo, reporting: bool
    ) -> _InterprocAnalysis:
        return _InterprocAnalysis(
            self,
            info.module,
            info.node,
            lambda finding: None,
            self_class=info.class_name,
            qualname=info.qualname,
            reporting=reporting,
        )


def run_axes(program: Program) -> List[Finding]:
    """Whole-program axis/shape analysis: solve then report."""
    engine = InterproceduralEngine(program)
    engine.solve()
    return engine.report()


# -- whole-program units ----------------------------------------------


class _ProgramUnitIndex:
    """A module's unit index, falling back to the global signature
    table through the import map (whole-program R010-R012)."""

    def __init__(
        self,
        module: ModuleInfo,
        program: Program,
        global_signatures: Dict[str, UnitSignature],
    ) -> None:
        self._module = module
        self._inner = module.unit_index
        self._program = program
        self._global = global_signatures

    def annotation_unit(self, node: Optional[ast.expr]):
        return self._inner.annotation_unit(node)

    def lookup_call(self, func: ast.expr) -> Optional[UnitSignature]:
        signature = self._inner.lookup_call(func)
        if signature is not None:
            return signature
        qualname: Optional[str] = None
        if isinstance(func, ast.Name):
            qualname = self._program.resolve_name(self._module, func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = self._module.imports.get(func.value.id)
            if base is not None:
                qualname = f"{base}.{func.attr}"
        if qualname is None:
            return None
        return self._global.get(qualname)


def _global_unit_signatures(program: Program) -> Dict[str, UnitSignature]:
    table: Dict[str, UnitSignature] = {}
    for module in program.modules.values():
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                signature = module.unit_index._signature_of(stmt)
                params, ret = signature
                if ret is not None or any(u is not None for _, u in params):
                    table[f"{module.name}.{stmt.name}"] = signature
    return table


def run_units(program: Program) -> List[Finding]:
    """Whole-program units/dimension analysis (R010-R012)."""
    findings: List[Finding] = []
    table = _global_unit_signatures(program)
    for module in program.modules.values():
        index = _ProgramUnitIndex(module, program, table)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionAnalysis(
                    module.ctx, index, node, findings.append  # type: ignore[arg-type]
                ).run()
    return findings


# -- catalogue ---------------------------------------------------------

INTERPROC_RULES: Dict[str, AnalysisRuleInfo] = {
    "R024": AnalysisRuleInfo(
        "R024",
        "no axis mismatch at call sites resolved across module boundaries",
        """\
The per-function axis pass (R020) checks arguments only against
signatures declared *in the same file*, so the exact seam where
control/ hands (N,)/(L,M) arrays to solvers/ and phy/ is unchecked: a
transposed (M, L) matrix passed to a callee declared (L, M) in another
module broadcasts silently whenever the runtime sizes coincide.

The interprocedural engine resolves every call through the program
import map (free functions, constructors, mod.func attribute calls,
Class.method) and checks argument elements against the callee's
declared repro.axes signature, wherever it lives.  A mismatch at a
cross-module call site is R024 — by construction invisible to the
per-function pass.

Fix: realign the argument (transpose explicitly, reorder axes) or
correct the callee's annotation.  Intentional duck-shape calls carry
`# noqa: R024` with a justification.
""",
    ),
    "R025": AnalysisRuleInfo(
        "R025",
        "no return-shape contradictions across call boundaries",
        """\
When an un-annotated helper's return shape is inferred through the
call graph (a summary), a contradiction between that inferred shape
and a declared annotation in the caller — `x: NodeVec = helper()`
where every return path of helper() yields (L, M), or a broadcast
whose other operand the summary proves incompatible — only exists
interprocedurally: each function in isolation looks fine.

The engine propagates return elements to a fixed point and reports
R025 wherever a summary-resolved value contradicts a declared
annotation at an assignment, return statement or broadcast site.

Fix: correct whichever side is wrong — the caller's annotation, the
callee's return, or insert the explicit realignment.  If the helper is
genuinely shape-polymorphic, annotate its return AnyArray to silence
the inference.
""",
    ),
}

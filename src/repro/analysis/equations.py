"""Paper-equation coverage audit (rules EQ001-EQ003).

The lint rule R005 mandates ``Eq. N`` citations in control/solver
docstrings; this module closes the loop in both directions against a
machine-readable manifest, ``docs/equations.toml``, that lists every
numbered construct of the paper (equation id, paper section, owning
modules, status):

* **EQ001** — an ``implemented``-status equation whose owning modules
  contain no docstring citation of it: the manifest claims coverage
  the code does not acknowledge.
* **EQ002** — a docstring citation of an equation id that does not
  exist in the manifest: either a typo for a real equation or a claim
  about a nonexistent one; both corrupt the paper-to-code map.
* **EQ003** — a malformed manifest: duplicate ids, unknown status,
  owning-module paths that do not exist, or an ``analysis``-status
  entry with no note explaining why no code owns it.

Citations are extracted from *docstrings only* (module, class and
function), and only when introduced by a keyword — ``Eq. 4``,
``Eqs. 9-14``, ``Equation (25)``, ``Constraints (20)-(22)`` — because
bare parenthesised numbers are overwhelmingly false positives
(shapes, years, section references).  Ranges and conjunctions expand:
``Eqs. 9-14`` cites six equations, ``Eqs. 28 and 30`` cites two.

The manifest is TOML.  Python 3.11+ parses it with the stdlib
``tomllib``; on older interpreters (the CI floor is 3.9 and the repo
adds no dependencies) a restricted fallback parser handles exactly the
subset the manifest uses — ``[[equation]]`` tables of string / int /
bool / string-array values.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.rules import Finding

try:  # Python 3.11+
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on the 3.9 CI leg
    _tomllib = None  # type: ignore[assignment]

#: Where the manifest lives, relative to the repo root.
DEFAULT_MANIFEST = Path("docs") / "equations.toml"
#: The tree whose docstrings are scanned for citations.
DEFAULT_SRC_ROOT = Path("src") / "repro"

_VALID_STATUS = ("implemented", "analysis")

#: A keyword-introduced citation span: the keyword plus every number,
#: range and conjunction that follows it.
_CITATION_RE = re.compile(
    # A separator (dot, space or paren) is required after the keyword so
    # rule ids like "EQ001" are not read as citations of equation 1.
    r"\b(?:Equations?|Eqs?|Constraints?)(?:\.\s*|\s+|\s*\()"
    r"\s*(\(?\d+\)?(?:\s*(?:[-–]|to|and|,)\s*\(?\d+\)?)*)",
    re.IGNORECASE,
)

_CITATION_TOKEN_RE = re.compile(r"\d+|[-–]|to|and|,", re.IGNORECASE)


class ManifestError(ValueError):
    """The manifest file cannot be parsed at all (syntax, not schema)."""


@dataclass(frozen=True)
class EquationEntry:
    """One numbered paper construct, as declared in the manifest."""

    equation_id: int
    section: str
    title: str
    modules: Tuple[str, ...]
    status: str = "implemented"
    note: str = ""

    @classmethod
    def from_mapping(cls, raw: Mapping[str, object]) -> "EquationEntry":
        """Build an entry from one decoded ``[[equation]]`` table."""
        known = {"id", "section", "title", "modules", "status", "note"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ManifestError(f"unknown manifest key(s): {', '.join(unknown)}")
        eq_id = raw.get("id")
        if not isinstance(eq_id, int) or isinstance(eq_id, bool) or eq_id < 1:
            raise ManifestError(f"equation id must be a positive integer, got {eq_id!r}")
        section = raw.get("section", "")
        title = raw.get("title", "")
        if not isinstance(section, str) or not isinstance(title, str):
            raise ManifestError(f"equation {eq_id}: section/title must be strings")
        modules_raw = raw.get("modules", [])
        if not isinstance(modules_raw, list) or not all(
            isinstance(m, str) for m in modules_raw
        ):
            raise ManifestError(f"equation {eq_id}: modules must be a string array")
        status = raw.get("status", "implemented")
        if status not in _VALID_STATUS:
            raise ManifestError(
                f"equation {eq_id}: status must be one of {_VALID_STATUS}, got {status!r}"
            )
        note = raw.get("note", "")
        if not isinstance(note, str):
            raise ManifestError(f"equation {eq_id}: note must be a string")
        return cls(
            equation_id=eq_id,
            section=section,
            title=title,
            modules=tuple(modules_raw),
            status=str(status),
            note=note,
        )


@dataclass(frozen=True)
class Citation:
    """One equation number cited by one docstring."""

    path: str
    line: int
    equation_id: int


# -- manifest parsing --------------------------------------------------


def parse_manifest_text(text: str, force_fallback: bool = False) -> List[EquationEntry]:
    """Decode manifest TOML text into validated entries.

    ``force_fallback=True`` bypasses ``tomllib`` so tests can compare
    the two decoders on identical input.
    """
    if _tomllib is not None and not force_fallback:
        try:
            data = _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise ManifestError(str(exc)) from exc
        tables = data.get("equation", [])
        if not isinstance(tables, list):
            raise ManifestError("'equation' must be an array of tables ([[equation]])")
    else:
        tables = _parse_fallback(text)
    return [EquationEntry.from_mapping(table) for table in tables]


def load_manifest(path: Path) -> List[EquationEntry]:
    """Read and decode the manifest file."""
    return parse_manifest_text(path.read_text(encoding="utf-8"))


def _parse_fallback(text: str) -> List[Dict[str, object]]:
    """Restricted TOML decoder for pre-3.11 interpreters.

    Supports exactly the manifest's shape: ``[[equation]]`` headers,
    ``key = value`` lines with basic-string, integer, boolean and
    single-line string-array values, comments and blank lines.
    """
    tables: List[Dict[str, object]] = []
    current: Optional[Dict[str, object]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[equation]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise ManifestError(f"line {lineno}: unsupported table header: {line}")
        if current is None:
            raise ManifestError(f"line {lineno}: key/value before any [[equation]]")
        key, sep, value = line.partition("=")
        if not sep:
            raise ManifestError(f"line {lineno}: expected 'key = value', got: {line}")
        current[key.strip()] = _parse_value(value.strip(), lineno)
    return tables


def _parse_value(text: str, lineno: int) -> object:
    if text.startswith('"'):
        return _parse_string(text, lineno)[0]
    if text.startswith("["):
        return _parse_array(text, lineno)
    # Strip a trailing comment from non-string scalars.
    bare = text.split("#", 1)[0].strip()
    if bare in ("true", "false"):
        return bare == "true"
    if re.fullmatch(r"[+-]?\d+", bare):
        return int(bare)
    raise ManifestError(f"line {lineno}: unsupported value: {text}")


def _parse_string(text: str, lineno: int) -> Tuple[str, str]:
    """Decode a leading basic string; returns ``(value, remainder)``."""
    assert text.startswith('"')
    out: List[str] = []
    i = 1
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                break
            escape = text[i + 1]
            out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
            i += 2
            continue
        if ch == '"':
            return "".join(out), text[i + 1 :]
        out.append(ch)
        i += 1
    raise ManifestError(f"line {lineno}: unterminated string: {text}")


def _parse_array(text: str, lineno: int) -> List[str]:
    body = text.strip()
    if not body.startswith("[") or "]" not in body:
        raise ManifestError(f"line {lineno}: unterminated array: {text}")
    inner = body[1 : body.rindex("]")].strip()
    items: List[str] = []
    while inner:
        if inner.startswith(","):
            inner = inner[1:].lstrip()
            continue
        if not inner.startswith('"'):
            raise ManifestError(f"line {lineno}: arrays may hold only strings: {text}")
        value, inner = _parse_string(inner, lineno)
        items.append(value)
        inner = inner.lstrip()
    return items


# -- citation extraction -----------------------------------------------


def expand_citation_span(span: str) -> Set[int]:
    """Equation ids in one citation span (``"9-14"``, ``"28 and 30"``)."""
    ids: Set[int] = set()
    previous: Optional[int] = None
    pending_range = False
    for token in _CITATION_TOKEN_RE.findall(span):
        if token.isdigit():
            number = int(token)
            if pending_range and previous is not None:
                low, high = sorted((previous, number))
                ids.update(range(low, high + 1))
                pending_range = False
            else:
                ids.add(number)
            previous = number
        elif token.lower() in ("-", "–", "to"):
            pending_range = True
        else:  # "and", ","
            pending_range = False
    return ids


def citations_in_source(source: str, display_path: str) -> List[Citation]:
    """Every keyword-introduced equation citation in a file's docstrings."""
    tree = ast.parse(source, filename=display_path)
    citations: List[Citation] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        docstring = ast.get_docstring(node, clean=False)
        if docstring is None:
            continue
        body = node.body[0]
        line = getattr(body, "lineno", 1)
        for match in _CITATION_RE.finditer(docstring):
            for eq_id in sorted(expand_citation_span(match.group(1))):
                citations.append(Citation(path=display_path, line=line, equation_id=eq_id))
    return citations


def collect_citations(src_root: Path) -> List[Citation]:
    """Citations across every ``.py`` file under ``src_root``."""
    from repro.lint.cli import discover_files

    citations: List[Citation] = []
    for path in discover_files([str(src_root)]):
        try:
            source = path.read_text(encoding="utf-8")
            citations.extend(citations_in_source(source, str(path)))
        except SyntaxError:
            # The units analyzer / lint pass reports unparsable files;
            # the audit just skips them.
            continue
    return citations


# -- the audit ---------------------------------------------------------


@dataclass
class AuditResult:
    """The audit's findings plus the data they were derived from."""

    findings: List[Finding] = field(default_factory=list)
    entries: List[EquationEntry] = field(default_factory=list)
    citations: List[Citation] = field(default_factory=list)


def audit_equations(
    manifest_path: Path,
    src_root: Path,
    repo_root: Optional[Path] = None,
) -> AuditResult:
    """Cross-check the manifest against the tree's docstring citations.

    ``repo_root`` anchors the manifest's relative module paths; it
    defaults to the manifest's grandparent (``docs/..``).
    """
    result = AuditResult()
    manifest_display = str(manifest_path)
    try:
        result.entries = load_manifest(manifest_path)
    except (OSError, ManifestError) as exc:
        result.findings.append(
            Finding(path=manifest_display, line=1, col=1, rule_id="EQ003", message=str(exc))
        )
        return result
    root = repo_root if repo_root is not None else manifest_path.resolve().parent.parent

    seen_ids: Set[int] = set()
    for entry in result.entries:
        if entry.equation_id in seen_ids:
            result.findings.append(
                Finding(
                    path=manifest_display,
                    line=1,
                    col=1,
                    rule_id="EQ003",
                    message=f"duplicate manifest entry for equation {entry.equation_id}",
                )
            )
        seen_ids.add(entry.equation_id)
        if entry.status == "analysis":
            if entry.modules:
                result.findings.append(
                    Finding(
                        path=manifest_display,
                        line=1,
                        col=1,
                        rule_id="EQ003",
                        message=(
                            f"equation {entry.equation_id}: analysis-status entries "
                            "own no modules (drop 'modules' or set status = "
                            '"implemented")'
                        ),
                    )
                )
            if not entry.note.strip():
                result.findings.append(
                    Finding(
                        path=manifest_display,
                        line=1,
                        col=1,
                        rule_id="EQ003",
                        message=(
                            f"equation {entry.equation_id}: analysis-status entries "
                            "must carry a note explaining why no module owns them"
                        ),
                    )
                )
        elif not entry.modules:
            result.findings.append(
                Finding(
                    path=manifest_display,
                    line=1,
                    col=1,
                    rule_id="EQ003",
                    message=(
                        f"equation {entry.equation_id}: implemented-status entries "
                        "must list at least one owning module"
                    ),
                )
            )
        for module in entry.modules:
            if not (root / module).is_file():
                result.findings.append(
                    Finding(
                        path=manifest_display,
                        line=1,
                        col=1,
                        rule_id="EQ003",
                        message=(
                            f"equation {entry.equation_id}: owning module "
                            f"{module} does not exist"
                        ),
                    )
                )

    result.citations = collect_citations(src_root)
    cited_by_path: Dict[str, Set[int]] = {}
    for citation in result.citations:
        resolved = str(Path(citation.path).resolve())
        cited_by_path.setdefault(resolved, set()).add(citation.equation_id)

    for entry in result.entries:
        if entry.status != "implemented":
            continue
        owners = [str((root / module).resolve()) for module in entry.modules]
        if not owners or not all((root / m).is_file() for m in entry.modules):
            continue  # already reported as EQ003
        if not any(entry.equation_id in cited_by_path.get(owner, set()) for owner in owners):
            result.findings.append(
                Finding(
                    path=manifest_display,
                    line=1,
                    col=1,
                    rule_id="EQ001",
                    message=(
                        f"equation {entry.equation_id} ({entry.title}, "
                        f"Section {entry.section}) is never cited in its owning "
                        f"module(s): {', '.join(entry.modules)}"
                    ),
                )
            )

    for citation in result.citations:
        if citation.equation_id not in seen_ids:
            result.findings.append(
                Finding(
                    path=citation.path,
                    line=citation.line,
                    col=1,
                    rule_id="EQ002",
                    message=(
                        f"docstring cites equation {citation.equation_id}, which "
                        f"is not in {manifest_display}"
                    ),
                )
            )

    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return result


def iter_audit_findings(
    manifest_path: Path, src_root: Path, repo_root: Optional[Path] = None
) -> Iterator[Finding]:
    """Finding-only view of :func:`audit_equations`."""
    yield from audit_equations(manifest_path, src_root, repo_root).findings


#: ``--explain`` texts for the audit rules.
EQUATION_RULES: Dict[str, Tuple[str, str]] = {
    "EQ001": (
        "implemented equations must be cited by their owning modules",
        """\
docs/equations.toml declares, for every numbered construct of the
paper, which modules implement it.  If an owning module's docstrings
never cite the equation, the manifest and the code disagree — either
the implementation moved, or the docstring citation (which R005
mandates for control/solver modules and reviewers navigate by) was
never written.

Fix: cite the equation in the owning module's docstring ("Eq. 14",
"Eqs. 9-14", "Constraint (22)"), or correct the manifest's module
list.
""",
    ),
    "EQ002": (
        "docstring citations must reference manifest equations",
        """\
A docstring citing an equation id absent from docs/equations.toml is
either a typo for a real equation or a reference to one the paper
does not have; both corrupt the paper-to-code navigation map.

Fix: correct the citation, or — if the paper really numbers this
construct — add a [[equation]] entry to docs/equations.toml.
""",
    ),
    "EQ003": (
        "the equations manifest must be well-formed",
        """\
docs/equations.toml is machine-read by this audit: entries need a
unique positive integer id, a section, a title, and either
status = "implemented" with at least one existing owning-module path
(relative to the repo root) or status = "analysis" with a note
explaining why no code owns the construct (e.g. a derivation step
subsumed by another implementation).
""",
    ),
}

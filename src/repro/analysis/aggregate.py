"""Time-average and replication statistics (Definition 1).

``time_average`` is the finite-horizon sample of
``lim (1/T) sum_t E[a(t)]``; ``mean_confidence_interval`` aggregates
independent replications (different seeds) into a mean with a normal
confidence interval.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats


def time_average(series: Sequence[float]) -> float:
    """``(1/T) sum_t a(t)`` over one sample path."""
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    return float(arr.mean())


def running_time_average(series: Sequence[float]) -> np.ndarray:
    """The running mean ``(1/t) sum_{u<t} a(u)`` for every prefix."""
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    return np.cumsum(arr) / np.arange(1, arr.size + 1)


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Mean and half-width of a t-based confidence interval.

    Args:
        samples: one statistic per independent replication.
        confidence: two-sided confidence level in (0, 1).

    Returns:
        ``(mean, half_width)``; the half-width is 0 for one sample.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample set")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t_val = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return mean, t_val * sem

"""Operator report: a full plain-text debrief of one simulation run.

``build_report`` turns a :class:`SimulationResult` (plus its simulator
context) into the report a network operator would want after a trial:
cost and traffic headlines, the stability verdicts, the energy-flow
balance per node class, theory-vs-measured checks, and any incidents
(deficits, curtailments).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import format_table
from repro.core import theory
from repro.sim.engine import SlotSimulator
from repro.sim.results import SimulationResult


def _headline_section(result: SimulationResult) -> str:
    rows = [
        ("time-averaged energy cost f(P)", result.average_cost),
        ("steady-state cost (2nd half)", result.steady_state_cost),
        ("P2 objective avg[f - lambda k]", result.average_penalty),
        ("avg grid draw (J/slot)", result.metrics.average_grid_draw_j()),
        ("delivered packets", result.metrics.totals()["delivered_pkts"]),
        ("admitted packets", result.metrics.totals()["admitted_pkts"]),
        ("Little's-law delay (slots)", result.average_delay_slots),
    ]
    return format_table(["headline", "value"], rows, title="Headlines")


def _stability_section(result: SimulationResult) -> str:
    rows = [
        (
            name,
            report.verdict.value,
            report.final_running_mean,
            report.max_backlog,
        )
        for name, report in result.stability_reports().items()
    ]
    return format_table(
        ["queue aggregate", "verdict", "running mean", "peak"],
        rows,
        title="Strong stability (Theorem 3, empirical)",
    )


def _energy_section(result: SimulationResult) -> str:
    rows = []
    for label, node_class in (("base stations", "bs"), ("users", "user")):
        rows.append(
            (
                label,
                float(result.metrics.flow_series(node_class, "renewable_used_j").sum()),
                float(result.metrics.flow_series(node_class, "grid_serve_j").sum()),
                float(result.metrics.flow_series(node_class, "grid_charge_j").sum()),
                float(result.metrics.flow_series(node_class, "discharge_j").sum()),
                float(result.metrics.flow_series(node_class, "spill_j").sum()),
            )
        )
    return format_table(
        [
            "node class",
            "renewable (J)",
            "grid serve (J)",
            "grid charge (J)",
            "discharge (J)",
            "spill (J)",
        ],
        rows,
        title="Energy flows over the horizon",
    )


def _theory_section(simulator: SlotSimulator, result: SimulationResult) -> str:
    predictions = theory.predict(simulator.model, simulator.constants)
    plateau = theory.verify_bs_plateau(
        simulator.model, simulator.constants, result
    )
    fill = theory.fill_time_slots(simulator.model, simulator.constants)
    rows = [
        ("admission threshold (pkts/session)", predictions.admission_threshold_pkts),
        ("predicted BS battery plateau (J)", predictions.bs_battery_total_j),
        ("measured BS battery plateau (J)", plateau.measured_j),
        ("plateau relative error", plateau.relative_error),
        ("predicted fill time (slots)", fill),
        ("formal bound slack B/V", predictions.formal_gap),
    ]
    return format_table(["prediction", "value"], rows, title="Theory checks")


def _incident_section(result: SimulationResult) -> str:
    deficits = result.metrics.series("deficit_j")
    curtailed = result.metrics.series("curtailed_links")
    incidents: List[tuple] = []
    for metrics in result.metrics.slots:
        if metrics.deficit_j > 0 or metrics.curtailed_links > 0:
            incidents.append(
                (metrics.slot, metrics.deficit_j, metrics.curtailed_links)
            )
    if not incidents:
        return "Incidents: none (no deficits, no curtailments)."
    table = format_table(
        ["slot", "deficit (J)", "curtailed links"],
        incidents[:20],
        title=(
            f"Incidents ({len(incidents)} slots; total deficit "
            f"{deficits.sum():.1f} J, {int(curtailed.sum())} curtailments)"
        ),
    )
    if len(incidents) > 20:
        table += f"\n... and {len(incidents) - 20} more slots"
    return table


def build_report(simulator: SlotSimulator, result: SimulationResult) -> str:
    """Assemble the full operator report for a finished run."""
    params = simulator.params
    header = (
        f"Run report — scenario seed {params.seed}, V = {params.control_v:g}, "
        f"{result.num_slots} slots x {params.slot_seconds:.0f} s, "
        f"{params.num_users} users / {params.num_base_stations} base stations"
    )
    sections = [
        header,
        "=" * len(header),
        _headline_section(result),
        _stability_section(result),
        _energy_section(result),
        _theory_section(simulator, result),
        _incident_section(result),
    ]
    return "\n\n".join(sections)

"""Intraprocedural units/dimension dataflow analysis (rules R010-R012).

Layered on the ``repro.lint`` AST infrastructure (:class:`FileContext`,
:class:`Finding`, noqa suppression), this module infers a unit lattice
element (see :mod:`repro.analysis.unitlattice`) for every local
variable of every function and flags arithmetic that mixes
incompatible physical quantities:

* **R010** — adding, subtracting or comparing values of different
  dimensions or scales (watts + joules, joules vs. kWh, ...);
* **R011** — dB/linear confusion: multiplying dB-scale values, or
  passing a dB value where a linear one is expected (and vice versa);
* **R012** — mixing per-slot and per-second rates without an explicit
  ``slot_seconds`` conversion.

Unit facts enter the analysis only through annotations — function
parameters and ``x: Joules = ...`` assignments using the
:mod:`repro.units` aliases — and through calls to functions with
annotated signatures (the ``repro.constants`` converters and
``repro.units`` dB helpers are built in; same-module signatures are
collected in a pre-pass).  Numeric literals are scalars; everything
else starts ``UNKNOWN``, so the analyzer is conservative: it reports
only when it can prove both operands' units.

The flow is a single forward pass per function: branches of ``if`` /
``try`` are analyzed on copies of the environment and joined; loop
bodies are analyzed once and joined with the pre-loop state (enough
for unit inference, which has no interesting loop-carried widening);
ternaries join their arms.  Nested functions are analyzed separately
with fresh environments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.unitlattice import (
    SCALAR,
    UNKNOWN,
    Elem,
    add_result,
    classify_mismatch,
    join,
    unit_elem,
)
from repro.analysis.unitlattice import mul_result as _mul
from repro.analysis.unitlattice import div_result as _div
from repro.axes import ALIAS_UNITS as _AXES_UNITS
from repro.lint.rules import FileContext, Finding, Rule
from repro.units import ALIAS_UNITS, Unit

#: A callable signature the analyzer knows: parameter names with their
#: units (None = unconstrained) and the return unit.
Signature = Tuple[Tuple[Tuple[str, Optional[Unit]], ...], Optional[Unit]]

_UNIT = {name: unit for name, unit in ALIAS_UNITS.items()}


def _sig(params: Sequence[Tuple[str, Optional[str]]], ret: Optional[str]) -> Signature:
    from repro.units import UNIT_BY_SYMBOL

    return (
        tuple((name, UNIT_BY_SYMBOL[sym] if sym else None) for name, sym in params),
        UNIT_BY_SYMBOL[ret] if ret else None,
    )


#: The ``repro.constants`` converters and ``repro.units`` helpers,
#: always in scope regardless of which file is being analyzed.
BUILTIN_SIGNATURES: Dict[str, Signature] = {
    "kwh_to_joules": _sig([("kwh", "kWh")], "J"),
    "wh_to_joules": _sig([("wh", "Wh")], "J"),
    "joules_to_kwh": _sig([("joules", "J")], "kWh"),
    "joules_to_wh": _sig([("joules", "J")], "Wh"),
    "watts_over_slot_to_joules": _sig([("watts", "W"), ("slot_seconds", "s")], "J"),
    "kbps_to_bits_per_slot": _sig([("kbps", "kbit/s"), ("slot_seconds", "s")], "bit/slot"),
    "db_to_linear": _sig([("value_db", "dB")], "lin"),
    "linear_to_db": _sig([("value_linear", "lin")], "dB"),
}

#: Builtins that preserve their (single) argument's unit.
_PRESERVING_BUILTINS = frozenset({"abs", "float", "round"})
#: Builtins returning the join of their arguments' units.
_JOINING_BUILTINS = frozenset({"min", "max"})


class UnitEnv(Dict[str, Elem]):
    """Variable name -> lattice element, with a branch-join helper."""

    def copy(self) -> "UnitEnv":
        return UnitEnv(self)

    @staticmethod
    def joined(a: "UnitEnv", b: "UnitEnv") -> "UnitEnv":
        merged = UnitEnv()
        for name in set(a) | set(b):
            merged[name] = join(a.get(name, UNKNOWN), b.get(name, UNKNOWN))
        return merged


class _ModuleIndex:
    """Per-module context shared by all function analyses.

    Resolves ``repro.units`` alias imports and collects the annotated
    signatures of the module's own functions so intra-module calls
    check their arguments.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.alias_names: Dict[str, Unit] = {}
        self.module_aliases: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro.units":
                    for alias in node.names:
                        unit = _UNIT.get(alias.name)
                        if unit is not None:
                            self.alias_names[alias.asname or alias.name] = unit
                elif node.module == "repro.axes":
                    # Unit-carrying array aliases (NodeJoules, ...)
                    # feed the units lattice too.
                    for alias in node.names:
                        unit = _AXES_UNITS.get(alias.name)
                        if unit is not None:
                            self.alias_names[alias.asname or alias.name] = unit
                elif node.module == "repro" and any(a.name == "units" for a in node.names):
                    for alias in node.names:
                        if alias.name == "units":
                            self.module_aliases.append(alias.asname or "units")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.units":
                        self.module_aliases.append(alias.asname or "repro.units")
        self.signatures: Dict[str, Optional[Signature]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = self._signature_of(node)
                if node.name in self.signatures and self.signatures[node.name] != sig:
                    # Same name, different signatures (e.g. an abstract
                    # method and its overrides): ambiguous, drop it.
                    self.signatures[node.name] = None
                else:
                    self.signatures[node.name] = sig

    def annotation_unit(self, node: Optional[ast.expr]) -> Optional[Unit]:
        """The :class:`Unit` named by an annotation expression, if any."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.alias_names.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in self.module_aliases or node.value.id == "units":
                return _UNIT.get(node.attr)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # A stringified annotation: resolve the bare alias name.
            return self.alias_names.get(node.value) or _UNIT.get(node.value)
        return None

    def _signature_of(self, node: ast.AST) -> Signature:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        params = tuple(
            (a.arg, self.annotation_unit(a.annotation))
            for a in positional + list(args.kwonlyargs)
        )
        return params, self.annotation_unit(node.returns)

    def lookup_call(self, func: ast.expr) -> Optional[Signature]:
        """Signature for a call target, by bare or attribute name."""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        builtin = BUILTIN_SIGNATURES.get(name)
        if builtin is not None:
            return builtin
        return self.signatures.get(name)


class _FunctionAnalysis:
    """One forward dataflow pass over a single function body."""

    def __init__(
        self,
        ctx: FileContext,
        index: _ModuleIndex,
        func: ast.AST,
        emit: Callable[[Finding], None],
    ) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._ctx = ctx
        self._index = index
        self._func = func
        self._emit = emit
        self._return_unit = index.annotation_unit(func.returns)

    def run(self) -> None:
        env = UnitEnv()
        args = self._func.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            unit = self._index.annotation_unit(arg.annotation)
            if unit is not None:
                env[arg.arg] = unit_elem(unit)
        self._walk_body(self._func.body, env)

    # -- statements ----------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt], env: UnitEnv) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: UnitEnv) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = self._index.annotation_unit(stmt.annotation)
            inferred = self._eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            if (
                declared is not None
                and inferred.kind == "unit"
                and inferred.unit is not None
                and inferred.unit.symbol != declared.symbol
            ):
                self._report_mismatch(stmt, declared, inferred.unit, "assigned to")
            elem = unit_elem(declared) if declared is not None else inferred
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = elem
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                left = env.get(stmt.target.id, UNKNOWN)
                result = self._binop_result(stmt, stmt.op, left, self._eval(stmt.value, env))
                env[stmt.target.id] = result
            else:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if (
                    self._return_unit is not None
                    and value.kind == "unit"
                    and value.unit is not None
                    and value.unit.symbol != self._return_unit.symbol
                ):
                    self._report_mismatch(
                        stmt, self._return_unit, value.unit, "returned as"
                    )
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = env.copy(), env.copy()
            self._walk_body(stmt.body, then_env)
            self._walk_body(stmt.orelse, else_env)
            merged = UnitEnv.joined(then_env, else_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            loop_env = env.copy()
            if isinstance(stmt.target, ast.Name):
                loop_env[stmt.target.id] = UNKNOWN
            self._walk_body(stmt.body, loop_env)
            self._walk_body(stmt.orelse, loop_env)
            merged = UnitEnv.joined(env, loop_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            loop_env = env.copy()
            self._walk_body(stmt.body, loop_env)
            self._walk_body(stmt.orelse, loop_env)
            merged = UnitEnv.joined(env, loop_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
            self._walk_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = env.copy()
            self._walk_body(stmt.body, body_env)
            merged = body_env
            for handler in stmt.handlers:
                handler_env = env.copy()
                self._walk_body(handler.body, handler_env)
                merged = UnitEnv.joined(merged, handler_env)
            self._walk_body(stmt.orelse, merged)
            self._walk_body(stmt.finalbody, merged)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # pass/break/continue/import/global/nonlocal: no unit effect.

    def _bind(self, target: ast.expr, value_node: ast.expr, value: Elem, env: UnitEnv) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            sources: List[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                sources = list(value_node.elts)
            else:
                sources = [None] * len(target.elts)
            for sub_target, sub_source in zip(target.elts, sources):
                sub_value = self._eval(sub_source, env) if sub_source is not None else UNKNOWN
                self._bind(sub_target, sub_source or value_node, sub_value, env)
        # Attribute/subscript targets are not tracked.

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, env: UnitEnv) -> Elem:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return UNKNOWN
            return SCALAR
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            return operand if isinstance(node.op, (ast.UAdd, ast.USub)) else UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._binop_result(node, node.op, left, right)
        if isinstance(node, ast.Compare):
            elems = [self._eval(node.left, env)]
            elems.extend(self._eval(c, env) for c in node.comparators)
            for a, b in zip(elems[:-1], elems[1:]):
                _, mismatch = add_result(a, b)
                if mismatch is not None:
                    self._report_pair(node, mismatch, "compared with")
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            parts = [self._eval(v, env) for v in node.values]
            result = parts[0]
            for part in parts[1:]:
                result = join(result, part)
            return result
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join(self._eval(node.body, env), self._eval(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        # Attribute, Subscript, Lambda, f-strings, ...: no tracking.
        return UNKNOWN

    def _eval_call(self, node: ast.Call, env: UnitEnv) -> Elem:
        func = node.func
        args = [self._eval(a, env) for a in node.args]
        kwargs = {
            kw.arg: self._eval(kw.value, env) for kw in node.keywords if kw.arg
        }
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _PRESERVING_BUILTINS and len(args) == 1 and not kwargs:
            return args[0]
        if name in _JOINING_BUILTINS and args and not kwargs:
            result = args[0]
            for arg in args[1:]:
                result = join(result, arg)
            return result
        signature = self._index.lookup_call(func)
        if signature is None:
            return UNKNOWN
        params, return_unit = signature
        for position, elem in enumerate(args):
            if position < len(params):
                self._check_argument(node.args[position], params[position], elem, name)
        by_name = dict(params)
        for kw in node.keywords:
            if kw.arg and kw.arg in by_name:
                self._check_argument(kw.value, (kw.arg, by_name[kw.arg]), kwargs[kw.arg], name)
        return unit_elem(return_unit) if return_unit is not None else UNKNOWN

    def _check_argument(
        self,
        arg_node: ast.expr,
        param: Tuple[str, Optional[Unit]],
        elem: Elem,
        func_name: Optional[str],
    ) -> None:
        param_name, expected = param
        if expected is None or elem.kind != "unit" or elem.unit is None:
            return
        if elem.unit.symbol == expected.symbol:
            return
        if expected.dimension == "dimensionless" and elem.kind == "scalar":
            return
        rule_id = classify_mismatch(expected, elem.unit)
        finding = self._ctx.finding(
            arg_node,
            rule_id,
            f"argument '{param_name}' of {func_name or '<call>'}() expects "
            f"[{expected.symbol}] but receives [{elem.unit.symbol}]"
            + _hint(rule_id),
        )
        if finding is not None:
            self._emit(finding)

    def _binop_result(
        self, node: ast.AST, op: ast.operator, left: Elem, right: Elem
    ) -> Elem:
        if isinstance(op, (ast.Add, ast.Sub)):
            result, mismatch = add_result(left, right)
            if mismatch is not None:
                verb = "added to" if isinstance(op, ast.Add) else "subtracted from"
                self._report_pair(node, mismatch, verb)
            return result
        if isinstance(op, ast.Mult):
            result, mismatch = _mul(left, right)
            if mismatch is not None:
                self._report_pair(node, mismatch, "multiplied by")
            return result
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            result, mismatch = _div(left, right)
            if mismatch is not None:
                self._report_pair(node, mismatch, "divided by")
            return result
        if isinstance(op, ast.Mod):
            return left
        return UNKNOWN

    def _report_pair(self, node: ast.AST, pair: Tuple[Unit, Unit], verb: str) -> None:
        a, b = pair
        rule_id = classify_mismatch(a, b)
        finding = self._ctx.finding(
            node,
            rule_id,
            f"[{a.symbol}] {verb} [{b.symbol}]" + _hint(rule_id),
        )
        if finding is not None:
            self._emit(finding)

    def _report_mismatch(self, node: ast.AST, expected: Unit, got: Unit, verb: str) -> None:
        rule_id = classify_mismatch(expected, got)
        finding = self._ctx.finding(
            node,
            rule_id,
            f"[{got.symbol}] {verb} [{expected.symbol}]" + _hint(rule_id),
        )
        if finding is not None:
            self._emit(finding)


def _hint(rule_id: str) -> str:
    if rule_id == "R011":
        return " (convert with repro.units.db_to_linear/linear_to_db)"
    if rule_id == "R012":
        return " (convert with repro.constants.kbps_to_bits_per_slot or scale by slot_seconds)"
    return " (insert the repro.constants converter for this pair)"


class UnitDataflowRule(Rule):
    """R010-R012, implemented as one dataflow pass per function.

    The three rule ids share this checker because they share the
    inference; ``--select`` filters the emitted findings by id.
    """

    rule_id = "R010"
    title = "units/dimension dataflow analysis (R010-R012)"
    explain = """\
See `python -m repro.analysis --explain R010|R011|R012`.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        index = _ModuleIndex(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionAnalysis(ctx, index, node, findings.append).run()
        yield from findings


@dataclass(frozen=True)
class AnalysisRuleInfo:
    """Catalogue entry backing ``--explain`` for one analysis rule."""

    rule_id: str
    title: str
    explain: str


ANALYSIS_RULES: Dict[str, AnalysisRuleInfo] = {
    "R010": AnalysisRuleInfo(
        "R010",
        "no arithmetic mixing incompatible dimensions or scales",
        """\
Adding, subtracting or comparing two quantities of different physical
dimensions (watts + joules) — or the same dimension at different
scales (joules vs. kWh) — is the dominant silent-bug class in energy
network reproductions: the code runs, the numbers are wrong by 3.6e6.

The analyzer infers units from repro.units annotations on function
signatures and from the repro.constants converters, then flags every
+, -, comparison, argument pass or return whose two sides have known,
different units.

Fix: route the value through the appropriate repro.constants converter
(kwh_to_joules, watts_over_slot_to_joules, ...) or correct the
annotation.  Intentional mixed arithmetic carries `# noqa: R010` with
a justification.
""",
    ),
    "R011": AnalysisRuleInfo(
        "R011",
        "no dB/linear confusion",
        """\
SINR thresholds and gains appear in the literature both on the
logarithmic dB scale and as linear ratios; the library computes in
linear (Gamma = 1.0 means 0 dB).  Multiplying two dB values, or
passing a Db-annotated value where a Linear one is expected (or vice
versa), silently corrupts every SINR feasibility decision.

dB values may be added, subtracted and compared among themselves
(that is multiplication/division in linear space) and scaled by plain
numbers; any arithmetic that combines a Db value with a different
unit is flagged.

Fix: cross the boundary explicitly with repro.units.db_to_linear /
linear_to_db.
""",
    ),
    "R012": AnalysisRuleInfo(
        "R012",
        "no per-slot vs. per-second rate mixing",
        """\
The paper states demand in Kbps but every queue evolves in per-slot
quantities (the slot is one minute), so per-second and per-slot rates
coexist throughout the control plane and differ by a factor of
slot_seconds = 60 — a silent error that inflates or starves every
backlog by the same factor.

The analyzer flags +/-/comparisons and argument passes that combine a
per-slot rate (BitsPerSlot, PacketsPerSlot) with a per-second rate
(Kbps, BitsPerSecond).

Fix: convert at the configuration boundary with
repro.constants.kbps_to_bits_per_slot (or multiply by slot_seconds
where the conversion is genuinely local).
""",
    ),
}

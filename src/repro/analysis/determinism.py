"""Determinism lint rules (R030-R032).

The repo's reproducibility contract is bit-identity: a scenario seed
fully determines the sample path (``sim/rng.py`` stream separation),
serial and parallel sweeps must agree byte-for-byte, and the
object-path and array-path state implementations must stay
interchangeable.  Three rule families guard the ways that contract
silently erodes:

* **R030** — drawing randomness outside the seeded stream discipline:
  legacy global ``np.random.*`` calls, stdlib ``random`` module
  functions, or unseeded ``default_rng()`` / ``Generator`` /
  ``RandomState`` construction anywhere but ``sim/rng.py``;
* **R031** — wallclock reads (``time.time``, ``datetime.now``, ...)
  in library code, where they can leak into simulation state or
  recorded results (monotonic ``perf_counter`` timing is fine — it
  measures elapsed cost, not state);
* **R032** — iterating an unordered ``set``/``frozenset`` where the
  iteration order can reach results or RNG consumption order.
  Order-insensitive consumers (``sorted``, ``min``/``max``, ``sum``,
  ``any``/``all``, ``len``, set-to-set operations) are allowed.

All three are plain AST rules on the ``repro.lint`` chassis and run
with the dataflow passes under ``python -m repro.analysis``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.dataflow import AnalysisRuleInfo
from repro.lint.rules import (
    LEGACY_GLOBAL_RANDOM_FNS,
    FileContext,
    Finding,
    Rule,
    _canonical_call_target,
    _numpy_aliases,
)

#: stdlib ``random`` module-level draw functions (module state).
STDLIB_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
        "expovariate", "betavariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate", "binomialvariate",
    }
)

#: Wallclock call targets (dotted, after alias canonicalization).
WALLCLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Call names whose consumption of an iterable is order-insensitive.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "set", "frozenset", "len"}
)


class GlobalRngRule(Rule):
    """R030: all randomness flows through the seeded stream discipline."""

    rule_id = "R030"
    title = "no RNG draws outside the seeded sim/rng.py streams"
    explain = """\
Bit-identical replications require every random draw to come from a
named, seed-derived stream (sim/rng.py RngStreams).  Three escape
hatches break that silently:

- legacy global numpy draws (np.random.rand, np.random.choice, ...)
  share one hidden global state across the whole process;
- stdlib random module functions (random.random, random.shuffle, ...)
  do the same, and are additionally affected by hash randomization
  when seeded from object hashes;
- an unseeded np.random.default_rng() / Generator(...) pulls OS
  entropy, so no seed reproduces the run.

Library code must accept an np.random.Generator (or RngStreams) from
its caller.  Tests may construct their own generators but must seed
them.  sim/rng.py itself is the sanctioned construction site and is
exempt.  Suppress deliberate exceptions with `# noqa: R030` and a
one-line justification.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        modules, names = _numpy_aliases(ctx.tree)
        stdlib_random_names = _stdlib_random_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(
                ctx, node, modules, names, stdlib_random_names
            )
            if finding is not None:
                yield finding

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        modules: Dict[str, str],
        names: Dict[str, str],
        stdlib_random_names: Set[str],
    ) -> Optional[Finding]:
        target = _canonical_call_target(node, modules, names)
        if target is not None and target.startswith("numpy.random."):
            attr = target.rsplit(".", 1)[1]
            if attr in LEGACY_GLOBAL_RANDOM_FNS:
                return ctx.finding(
                    node,
                    self.rule_id,
                    f"legacy global np.random.{attr}() shares hidden "
                    "process-wide state: draw from a seeded RngStreams "
                    "generator (sim/rng.py) instead",
                )
            if attr in ("default_rng", "Generator", "RandomState"):
                if not node.args and not node.keywords:
                    return ctx.finding(
                        node,
                        self.rule_id,
                        f"unseeded np.random.{attr}() draws OS entropy: "
                        "no seed can reproduce the run; pass a seed or a "
                        "spawned SeedSequence",
                    )
                if not ctx.is_test:
                    return ctx.finding(
                        node,
                        self.rule_id,
                        f"np.random.{attr}() constructed in library "
                        "code: accept an np.random.Generator from the "
                        "caller (see sim/rng.py stream discipline)",
                    )
                return None
        # stdlib random: both `random.random()` and `from random import x`.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in stdlib_random_names
            and func.attr in STDLIB_RANDOM_FNS | {"Random", "SystemRandom"}
        ):
            return ctx.finding(
                node,
                self.rule_id,
                f"stdlib random.{func.attr}() bypasses the seeded numpy "
                "stream discipline: use an np.random.Generator from "
                "sim/rng.py",
            )
        return None


def _stdlib_random_aliases(tree: ast.AST) -> Set[str]:
    """Names the stdlib ``random`` module is bound to in this file."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    names.add(alias.asname or "random")
    return names


class WallclockRule(Rule):
    """R031: no wallclock reads in library code."""

    rule_id = "R031"
    title = "no wallclock influencing sim state"
    explain = """\
A simulation step that reads time.time() or datetime.now() produces
state that can never be reproduced from the scenario seed, and a
result record stamped with wallclock breaks byte-for-byte comparison
between serial and parallel sweep runs.

The rule flags wallclock call targets (time.time, time.time_ns,
datetime.now/utcnow/today, date.today, time.localtime/gmtime/ctime)
in library code.  Monotonic elapsed-time measurement
(time.perf_counter, time.monotonic) is deliberately allowed: it
measures cost, not state, and the sweep executor reports it as
timing metadata only.  Tests and benchmarks are out of scope.
Suppress deliberate uses (e.g. a log header) with `# noqa: R031` and
a one-line justification.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _dotted_call_target(node.func)
            if target in WALLCLOCK_TARGETS:
                yield from _maybe(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"wallclock read {target}() in library code: derive "
                        "sim state from the seeded environment and timestamp "
                        "results outside the library (perf_counter is fine "
                        "for elapsed timing)",
                    )
                )


class SetIterationRule(Rule):
    """R032: no iteration over unordered sets feeding ordered consumers."""

    rule_id = "R032"
    title = "no set-iteration order reaching results or RNG order"
    explain = """\
Python set iteration order depends on insertion history and element
hashes — and str hashes are randomized per process.  A `for` loop over
a set that appends to results, draws from an RNG, or fixes variables
decides those effects in an order that differs between runs and
between the serial and parallel sweep paths.

The rule flags for-loops, comprehensions and list()/tuple() calls over
expressions that are provably sets (set literals/comprehensions,
set()/frozenset() calls, variables assigned only those), unless the
iteration feeds an order-insensitive consumer (sorted, min/max, sum,
any/all, len, set/frozenset).

Fix: iterate `sorted(the_set)` (with an explicit key for non-trivially
ordered elements), or keep a deterministically ordered list alongside
the membership set.  Provably order-independent loops (pure membership
updates) carry `# noqa: R032` with a justification.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        set_names = _set_bound_names(func)
        skip: Set[int] = set()
        for nested in ast.walk(func):
            if (
                isinstance(nested, (ast.FunctionDef, ast.AsyncFunctionDef))
                and nested is not func
            ):
                for node in ast.walk(nested):
                    skip.add(id(node))
        for node in ast.walk(func):
            if id(node) in skip:
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    yield from _maybe(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "for-loop over an unordered set: iterate "
                            "sorted(...) so effects apply in a "
                            "deterministic order",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                yield from self._check_comprehension(ctx, node, set_names)
            elif isinstance(node, ast.GeneratorExp):
                # Flagged only when the surrounding call is
                # order-sensitive; handled via the Call branch below.
                continue
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, set_names)

    def _check_comprehension(
        self, ctx: FileContext, node: ast.expr, set_names: Set[str]
    ) -> Iterator[Finding]:
        for comp in getattr(node, "generators", []):
            if self._is_set_expr(comp.iter, set_names):
                kind = (
                    "dict" if isinstance(node, ast.DictComp) else "list"
                )
                yield from _maybe(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{kind} comprehension over an unordered set "
                        "produces a nondeterministic order: iterate "
                        "sorted(...) instead",
                    )
                )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("list", "tuple") and len(node.args) == 1:
            if self._is_set_expr(node.args[0], set_names):
                yield from _maybe(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{name}() of an unordered set freezes a "
                        "nondeterministic order: use sorted(...) instead",
                    )
                )
            return
        if name in ORDER_INSENSITIVE_CONSUMERS:
            return
        # Order-sensitive call consuming a genexp over a set, e.g.
        # "".join(f(x) for x in some_set).
        for arg in node.args:
            if isinstance(arg, ast.GeneratorExp):
                for comp in arg.generators:
                    if self._is_set_expr(comp.iter, set_names):
                        yield from _maybe(
                            ctx.finding(
                                arg,
                                self.rule_id,
                                "generator over an unordered set feeding "
                                f"{name or 'a call'}(): iterate sorted(...) "
                                "so consumption order is deterministic",
                            )
                        )

    @staticmethod
    def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False


def _set_bound_names(func: ast.AST) -> Set[str]:
    """Names bound *only* to provable set expressions in ``func``."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    bound: Dict[str, bool] = {}

    def note(name: str, is_set: bool) -> None:
        bound[name] = bound.get(name, True) and is_set

    args = func.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if _is_set_annotation(arg.annotation):
            note(arg.arg, True)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    note(target.id, _is_plain_set(node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.value is not None:
                note(node.target.id, _is_plain_set(node.value))
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            note(node.target.id, False)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                note(node.target.id, False)
    return {name for name, is_set in bound.items() if is_set}


def _is_plain_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    """``set`` / ``Set[...]`` / ``frozenset`` parameter annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.split("[")[0].strip()
    return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")


def _dotted_call_target(func: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute-chain call target, else the bare name."""
    parts: List[str] = []
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _maybe(finding: Optional[Finding]) -> Iterator[Finding]:
    if finding is not None:
        yield finding


#: The determinism checkers, in rule-id order.
DETERMINISM_RULE_CLASSES = (GlobalRngRule, WallclockRule, SetIterationRule)

DETERMINISM_RULES: Dict[str, AnalysisRuleInfo] = {
    cls.rule_id: AnalysisRuleInfo(cls.rule_id, cls.title, cls.explain)
    for cls in DETERMINISM_RULE_CLASSES
}

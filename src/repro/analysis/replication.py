"""Multi-seed replication: means with confidence intervals.

One simulation run is a single sample path; claims about *expected*
cost or backlog need replication over independent seeds.  This module
runs a scenario across seeds and aggregates any per-run statistic into
a mean with a t-based confidence interval.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.analysis.aggregate import mean_confidence_interval
from repro.config.parameters import ScenarioParameters
from repro.sim.engine import SlotSimulator
from repro.sim.results import SimulationResult

#: A per-run statistic, e.g. ``lambda r: r.average_cost``.
Statistic = Callable[[SimulationResult], float]


@dataclass(frozen=True)
class ReplicatedStatistic:
    """A statistic aggregated over independent replications.

    Attributes:
        mean: sample mean over seeds.
        half_width: confidence-interval half-width.
        samples: the raw per-seed values, in seed order.
    """

    mean: float
    half_width: float
    samples: Tuple[float, ...]

    @property
    def interval(self) -> Tuple[float, float]:
        """The confidence interval ``(lo, hi)``."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def overlaps(self, other: "ReplicatedStatistic") -> bool:
        """True when the two confidence intervals intersect."""
        return (
            self.interval[0] <= other.interval[1]
            and other.interval[0] <= self.interval[1]
        )


def replicate(
    base: ScenarioParameters,
    statistic: Statistic,
    num_seeds: int = 5,
    first_seed: int = 0,
    confidence: float = 0.95,
) -> ReplicatedStatistic:
    """Run ``base`` under ``num_seeds`` seeds and aggregate a statistic.

    Args:
        base: the scenario; its own seed is ignored.
        statistic: per-run value to aggregate.
        num_seeds: number of independent replications.
        first_seed: seeds are ``first_seed .. first_seed+num_seeds-1``.
        confidence: two-sided confidence level.
    """
    if num_seeds < 1:
        raise ValueError(f"need at least one seed, got {num_seeds}")
    samples = []
    for offset in range(num_seeds):
        params = dataclasses.replace(base, seed=first_seed + offset)
        result = SlotSimulator.integral(params).run()
        samples.append(float(statistic(result)))
    mean, half = mean_confidence_interval(samples, confidence)
    return ReplicatedStatistic(
        mean=mean, half_width=half, samples=tuple(samples)
    )


def replicate_summary(
    base: ScenarioParameters,
    num_seeds: int = 5,
    first_seed: int = 0,
) -> Dict[str, ReplicatedStatistic]:
    """Replicate the headline statistics of a scenario.

    Returns means/CIs for average cost, steady-state cost, average
    penalty, and the mean BS data backlog.
    """
    statistics: Dict[str, Statistic] = {
        "average_cost": lambda r: r.average_cost,
        "steady_state_cost": lambda r: r.steady_state_cost,
        "average_penalty": lambda r: r.average_penalty,
        "mean_bs_backlog": lambda r: float(
            r.backlog_series("bs_data_packets").mean()
        ),
    }
    # Run every seed once, evaluating all statistics on the same runs.
    runs = []
    for offset in range(num_seeds):
        params = dataclasses.replace(base, seed=first_seed + offset)
        runs.append(SlotSimulator.integral(params).run())
    out: Dict[str, ReplicatedStatistic] = {}
    for name, statistic in statistics.items():
        samples = [float(statistic(run)) for run in runs]
        mean, half = mean_confidence_interval(samples)
        out[name] = ReplicatedStatistic(
            mean=mean, half_width=half, samples=tuple(samples)
        )
    return out

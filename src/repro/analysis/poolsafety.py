"""Process-pool safety rules over the call graph (R050-R052).

The sweep executor promises bit-identical results whether a grid runs
serially or across a ``ProcessPoolExecutor`` — the property the
serial-vs-parallel equivalence suite pins.  That contract survives
only while worker-reachable code is fork-safe:

* **R050** — a worker-reachable function mutates a module-level
  global (``global`` + store, ``CACHE.append(...)``,
  ``TABLE[key] = ...``).  Each fork gets a private copy, so the
  mutation silently diverges between serial and parallel runs;
* **R051** — a pool submit site passes a lambda, a nested function,
  a file/lock handle, or a module-level mutable: the first two fail
  to pickle, the latter two smuggle shared state across the fork;
* **R052** — fork-visible RNG state touched outside ``RngStreams``:
  a module-level generator, worker-reachable ``np.random.seed`` /
  ``set_state`` / stdlib ``random.seed``, or worker draws from a
  module-level generator.  Children inherit the parent's RNG state,
  so streams collide and replication determinism breaks.

Worker reachability is seeded from the executor's job entry point
plus the first argument of any ``.submit``/``.map``-style call the
call-graph builder sees.  ``sim/rng.py`` is exempt from R052 — it is
the one sanctioned home of generator construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    WORKER_ROOTS,
    _POOL_SUBMIT_METHODS,
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.analysis.dataflow import AnalysisRuleInfo
from repro.lint.rules import Finding

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "remove", "discard",
        "clear", "pop", "popitem", "setdefault", "update", "sort",
        "reverse",
    }
)
#: Constructors whose results are module-level mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict",
     "Counter", "OrderedDict"}
)
#: Factories producing objects that do not survive pickling.
UNPICKLABLE_FACTORIES = frozenset(
    {"open", "Lock", "RLock", "Condition", "Semaphore",
     "BoundedSemaphore", "Event", "Barrier", "socket", "connect",
     "Popen"}
)
#: Constructors that create a fork-visible random generator.
RNG_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "Generator", "PCG64", "Philox",
     "MT19937", "SFC64"}
)
#: Dotted suffixes that reseed or export global RNG state.
_GLOBAL_RNG_CALLS = (
    "random.seed", "random.set_state", "random.get_state",
    "random.setstate", "random.getstate",
)


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _final_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def module_level_mutables(module: ModuleInfo) -> Dict[str, int]:
    """Module-level names bound to mutable containers, name -> lineno."""
    out: Dict[str, int] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
             ast.DictComp),
        )
        if not mutable and isinstance(value, ast.Call):
            mutable = _final_name(value.func) in _MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.lineno
    return out


def module_level_rngs(module: ModuleInfo) -> Dict[str, ast.Assign]:
    """Module-level names bound to an RNG constructor call."""
    out: Dict[str, ast.Assign] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Call):
            continue
        if _final_name(stmt.value.func) not in RNG_CONSTRUCTORS:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt
    return out


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (params, stores), so module
    globals of the same name are shadowed."""
    names: Set[str] = set()
    args = func.args  # type: ignore[attr-defined]
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.update(a.arg for a in group)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names - declared_global


def check_pool_safety(
    program: Program, roots: Sequence[str] = WORKER_ROOTS
) -> List[Finding]:
    """Run R050/R051/R052 over the program."""
    findings: List[Finding] = []
    worker = program.worker_functions(roots)
    worker_infos = [
        program.functions[qual]
        for qual in sorted(worker)
        if qual in program.functions
    ]
    mutables: Dict[str, Dict[str, int]] = {}
    rngs: Dict[str, Dict[str, ast.Assign]] = {}
    for name, module in program.modules.items():
        mutables[name] = module_level_mutables(module)
        rngs[name] = module_level_rngs(module)

    for info in worker_infos:
        if not info.module.ctx.is_library:
            continue
        findings.extend(_check_r050(info, mutables[info.module.name]))
        findings.extend(
            _check_r052_worker(info, rngs[info.module.name])
        )
    for name, module in program.modules.items():
        if not module.ctx.is_library:
            continue
        findings.extend(_check_r051(module, mutables[name]))
        findings.extend(_check_r052_module(module, rngs[name]))
    return findings


def _check_r050(
    info: FunctionInfo, mutables: Dict[str, int]
) -> Iterator[Finding]:
    ctx = info.module.ctx
    func = info.node
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_ = _local_names(func)
    shared = {name for name in mutables if name not in locals_}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Store)
            and node.id in declared_global
        ):
            finding = ctx.finding(
                node,
                "R050",
                f"worker-reachable {info.qualname}() rebinds module global "
                f"'{node.id}': each forked worker mutates a private copy, "
                "so serial and parallel sweeps diverge silently; pass "
                "state through the job payload instead",
            )
            if finding is not None:
                yield finding
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id in shared
                and func_expr.attr in MUTATING_METHODS
            ):
                finding = ctx.finding(
                    node,
                    "R050",
                    f"worker-reachable {info.qualname}() mutates "
                    f"module-level '{func_expr.value.id}' via "
                    f".{func_expr.attr}(): the mutation lands in the "
                    "worker's fork copy and is lost (or worse, kept only "
                    "in serial runs); thread results through return values",
                )
                if finding is not None:
                    yield finding
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in shared
                ):
                    finding = ctx.finding(
                        target,
                        "R050",
                        f"worker-reachable {info.qualname}() assigns into "
                        f"module-level '{target.value.id}[...]': "
                        "fork-copied state diverges between serial and "
                        "parallel execution; return the value and merge in "
                        "the parent",
                    )
                    if finding is not None:
                        yield finding


def _check_r051(
    module: ModuleInfo, mutables: Dict[str, int]
) -> Iterator[Finding]:
    ctx = module.ctx
    for func, _cls in _iter_functions(module.tree):
        nested = {
            sub.name
            for sub in ast.walk(func)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not func
        }
        handles: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _final_name(node.value.func) in UNPICKLABLE_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            handles.add(target.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.context_expr, ast.Call
            ):
                if (
                    _final_name(node.context_expr.func) in UNPICKLABLE_FACTORIES
                    and node.optional_vars is not None
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    handles.add(node.optional_vars.id)
        locals_ = _local_names(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if (
                not isinstance(callee, ast.Attribute)
                or callee.attr not in _POOL_SUBMIT_METHODS
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    reason = "a lambda, which cannot be pickled"
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    reason = (
                        f"nested function '{arg.id}', which cannot be "
                        "pickled (move it to module level)"
                    )
                elif isinstance(arg, ast.Name) and arg.id in handles:
                    reason = (
                        f"'{arg.id}', a file/lock-style handle that does "
                        "not survive pickling"
                    )
                elif (
                    isinstance(arg, ast.Name)
                    and arg.id in mutables
                    and arg.id not in locals_
                ):
                    reason = (
                        f"module-level mutable '{arg.id}': each worker "
                        "gets an independent fork copy, so shared-state "
                        "updates silently diverge"
                    )
                else:
                    continue
                finding = ctx.finding(
                    arg,
                    "R051",
                    f"pool .{callee.attr}(...) captures {reason}; pass "
                    "plain picklable data and rebuild resources inside "
                    "the worker",
                )
                if finding is not None:
                    yield finding


def _check_r052_module(
    module: ModuleInfo, rngs: Dict[str, ast.Assign]
) -> Iterator[Finding]:
    ctx = module.ctx
    if ctx.is_rng_module:
        return
    for name, stmt in sorted(rngs.items()):
        finding = ctx.finding(
            stmt,
            "R052",
            f"module-level RNG '{name}' created outside RngStreams: forked "
            "workers inherit its state, so parallel replications draw "
            "correlated streams; construct generators per replication via "
            "repro.sim.rng.RngStreams",
        )
        if finding is not None:
            yield finding


def _check_r052_worker(
    info: FunctionInfo, rngs: Dict[str, ast.Assign]
) -> Iterator[Finding]:
    ctx = info.module.ctx
    if ctx.is_rng_module:
        return
    locals_ = _local_names(info.node)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is not None and (
            dotted in _GLOBAL_RNG_CALLS
            or any(dotted.endswith("." + s) for s in _GLOBAL_RNG_CALLS)
        ):
            finding = ctx.finding(
                node,
                "R052",
                f"worker-reachable {info.qualname}() touches global RNG "
                f"state via {dotted}(): reseeding or exporting the shared "
                "generator inside a forked worker breaks the bit-identity "
                "contract; draw from the job's RngStreams instead",
            )
            if finding is not None:
                yield finding
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in rngs
            and node.func.value.id not in locals_
        ):
            finding = ctx.finding(
                node,
                "R052",
                f"worker-reachable {info.qualname}() draws from "
                f"module-level RNG '{node.func.value.id}': every forked "
                "worker starts from the same inherited state, so streams "
                "collide across replications; use RngStreams",
            )
            if finding is not None:
                yield finding


def _iter_functions(tree: ast.Module) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node.name


# -- catalogue ---------------------------------------------------------

POOL_RULES: Dict[str, AnalysisRuleInfo] = {
    "R050": AnalysisRuleInfo(
        "R050",
        "no worker-reachable mutation of module globals",
        """\
The sweep executor promises bit-identical output whether a grid runs
serially or across a ProcessPoolExecutor.  A worker-reachable function
that mutates module-level state — `global` plus a store, CACHE.append,
TABLE[key] = value — writes into the fork's private copy: serial runs
accumulate the mutation, parallel runs silently drop it (or each
worker accumulates its own), and the equivalence suite's contract is
broken in a way no single-process test can see.

The analyzer seeds worker reachability from the executor job entry
point plus the first argument of every .submit/.map-style call, then
flags mutations of unshadowed module-level names inside that cone.

Fix: thread state through the job payload and return values; merge in
the parent process.
""",
    ),
    "R051": AnalysisRuleInfo(
        "R051",
        "no unpicklable or shared-mutable captures at pool submit sites",
        """\
Arguments to .submit/.map/.apply_async must round-trip through pickle
and must not alias parent state.  A lambda or nested function fails at
submit time (often only on spawn-start platforms, so CI on Linux
passes while macOS breaks); an open file or lock handle pickles to a
dead object; a module-level mutable (a cache dict, a list of results)
arrives as a fork copy whose mutations never return to the parent.

The analyzer inspects every pool submit call site in the library and
flags lambdas, functions defined inside the enclosing function,
locally-created file/lock-style handles, and module-level mutable
containers passed as arguments.

Fix: submit a module-level function with plain picklable data, and
open resources inside the worker.
""",
    ),
    "R052": AnalysisRuleInfo(
        "R052",
        "no fork-visible RNG state outside RngStreams",
        """\
Replication determinism rests on RngStreams deriving one child
generator per (replication, stream) from the root SeedSequence.  Any
other generator that exists at fork time — a module-level
default_rng()/RandomState(), a worker-reachable np.random.seed or
random.seed, worker draws from a module-level generator — is
inherited identically by every forked worker, so "independent"
replications draw the same numbers and the serial-vs-parallel
equivalence quietly becomes a lie.

The analyzer flags module-level RNG constructor assignments outside
sim/rng.py, worker-reachable calls that reseed or export global RNG
state, and worker-reachable draws from module-level generators.

Fix: accept a Generator argument plumbed from RngStreams; never
construct or reseed generators in library code outside sim/rng.py.
""",
    ),
}

"""Command-line front end for the static dataflow/equations analysis.

Usage::

    python -m repro.analysis [PATH ...] [--select R010,R02] [--ignore R04]
                             [--explain [RULE]]
                             [--format text|json|github|sarif]
                             [--no-cache]
    python -m repro.analysis --equations [--manifest docs/equations.toml]
                             [--src src/repro]

The default invocation builds the package call graph over the given
paths (default: ``src``) and runs every checker family, reusing the
``repro.lint`` discovery, noqa and output conventions:

* the units/dimension dataflow analysis (R010-R012), propagated
  interprocedurally through the call graph;
* the array axis/shape dataflow analysis (R020-R023) plus the
  interprocedural call-site/return rules (R024-R025);
* the determinism rules (R030-R032);
* the hot-path complexity/allocation rules (R040-R042);
* the process-pool safety rules (R050-R052).

``--select`` accepts exact ids or prefixes — ``--select R02,R03``
selects both whole families — and ``--ignore`` subtracts ids the same
way.  ``--equations`` instead cross-checks the docstring equation
citations against the ``docs/equations.toml`` manifest (EQ001-EQ003).

Exit status: 0 clean, 1 findings reported, 2 internal/usage error —
identical to ``python -m repro.lint``, so both slot into
``scripts/check.sh``, pre-commit and CI the same way.  Results are
memoized under ``.cache/analysis/`` keyed by file content hashes
(``--no-cache`` bypasses).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Set

from repro.analysis.callgraph import Program
from repro.analysis.determinism import DETERMINISM_RULE_CLASSES
from repro.analysis.equations import (
    DEFAULT_MANIFEST,
    DEFAULT_SRC_ROOT,
    EQUATION_RULES,
    audit_equations,
)
from repro.analysis.hotpath import check_hot_path
from repro.analysis.poolsafety import check_pool_safety
from repro.analysis.registry import ANALYZER_RULE_IDS, RULE_REGISTRY
from repro.lint.cache import DEFAULT_CACHE_DIR, FindingsCache, content_digest
from repro.lint.cli import discover_files
from repro.lint.emitter import FORMATS, emit
from repro.lint.rules import Finding

#: Rule ids the units analysis can emit, kept for backwards
#: compatibility (E999 rides along for unparsable files).
UNIT_RULE_IDS = ("R010", "R011", "R012")


def run_program_analysis(program: Program) -> List[Finding]:
    """Every checker family over an already-built :class:`Program`."""
    from repro.analysis.interproc import run_axes, run_units

    findings: List[Finding] = list(program.parse_findings)
    findings.extend(run_units(program))
    findings.extend(run_axes(program))
    determinism = [cls() for cls in DETERMINISM_RULE_CLASSES]
    for name in sorted(program.modules):
        ctx = program.modules[name].ctx
        for rule in determinism:
            findings.extend(rule.check(ctx))
    findings.extend(check_hot_path(program))
    findings.extend(check_pool_safety(program))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def analyze_paths(paths: Sequence[str]) -> List[Finding]:
    """Build the program from files/directories and analyze it."""
    return run_program_analysis(Program.load(paths))


def analyze_sources(sources: Mapping[str, str]) -> List[Finding]:
    """Analyze an in-memory {display_path: source} tree (for tests)."""
    return run_program_analysis(Program.from_sources(sources))


def _explain(rule_id: Optional[str]) -> int:
    """Print the analysis rule catalogue (or one rule's rationale)."""
    if rule_id is None:
        for rid in ANALYZER_RULE_IDS:
            print(f"{rid}  {RULE_REGISTRY[rid].title}")
        for eq_id in EQUATION_RULES:
            print(f"{eq_id}  {RULE_REGISTRY[eq_id].title}")
        print()
        print("Use --explain RULE_ID for the full rationale of one rule.")
        return 0
    key = rule_id.upper()
    info = RULE_REGISTRY.get(key)
    if info is not None:
        print(f"{info.rule_id} — {info.title}")
        print()
        print(info.explain)
        return 0
    print(f"unknown rule id: {rule_id}", file=sys.stderr)
    return 2


def _selected_ids(
    spec: Optional[str], valid: Sequence[str], option: str = "--select"
) -> Optional[Set[str]]:
    """Resolve ``--select``/``--ignore`` into a set of ids (None = unset).

    Tokens match exactly or as prefixes: ``R02`` selects every
    ``R02x`` rule, ``R0`` selects all R-rules of the family list.
    """
    if spec is None:
        return None
    chosen: Set[str] = set()
    for token in spec.split(","):
        token = token.strip().upper()
        if not token:
            continue
        matched = {rid for rid in valid if rid.startswith(token)}
        if not matched:
            print(
                f"repro.analysis: unknown rule id in {option}: {token} "
                f"(valid: {', '.join(valid)})",
                file=sys.stderr,
            )
            raise SystemExit(2)
        chosen.update(matched)
    return chosen


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status.

    0 clean, 1 findings, 2 internal or usage error; 141 when a
    downstream pipe closes early (``... | head``).
    """
    try:
        return _run(argv)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except SystemExit:
        raise
    except Exception as exc:  # pragma: no cover - defensive
        print(f"repro.analysis: internal error: {exc!r}", file=sys.stderr)
        return 2


def _run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Interprocedural units/dimension analysis (R010-R012), "
        "array axis/shape analysis (R020-R025), determinism rules "
        "(R030-R032), hot-path complexity rules (R040-R042), process-pool "
        "safety rules (R050-R052) and paper-equation coverage audit "
        "(EQ001-EQ003).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--equations",
        action="store_true",
        help="run the equation-coverage audit instead of the units analysis",
    )
    parser.add_argument(
        "--manifest",
        default=str(DEFAULT_MANIFEST),
        metavar="TOML",
        help="equations manifest path (default: docs/equations.toml)",
    )
    parser.add_argument(
        "--src",
        default=str(DEFAULT_SRC_ROOT),
        metavar="DIR",
        help="tree whose docstrings the audit scans (default: src/repro)",
    )
    parser.add_argument(
        "--explain",
        nargs="?",
        const="",
        default=None,
        metavar="RULE",
        help="print the rule catalogue, or one rule's full rationale",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to suppress (complement of --select)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=FORMATS,
        default="text",
        help="output encoding: text lines, a json object, GitHub Actions "
        "::error annotations, or a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the .cache/analysis/ findings cache",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain or None)

    if args.equations:
        manifest = Path(args.manifest)
        src_root = Path(args.src)
        if not manifest.is_file():
            print(f"repro.analysis: no such manifest: {manifest}", file=sys.stderr)
            return 2
        if not src_root.exists():
            print(f"repro.analysis: no such source tree: {src_root}", file=sys.stderr)
            return 2
        selected = _selected_ids(args.select, tuple(EQUATION_RULES))
        ignored = _selected_ids(args.ignore, tuple(EQUATION_RULES), "--ignore")
        findings = audit_equations(manifest, src_root).findings
        label = "equation-audit finding(s)"
    else:
        selected = _selected_ids(args.select, ANALYZER_RULE_IDS)
        ignored = _selected_ids(args.ignore, ANALYZER_RULE_IDS, "--ignore")
        paths = args.paths or ["src"]
        try:
            findings = _analyze_cached(paths, use_cache=not args.no_cache)
        except FileNotFoundError as exc:
            print(f"repro.analysis: {exc}", file=sys.stderr)
            return 2
        label = "finding(s)"

    if selected is not None:
        findings = [f for f in findings if f.rule_id in selected or f.rule_id == "E999"]
    if ignored:
        findings = [f for f in findings if f.rule_id not in ignored]

    emit(
        findings,
        args.output_format,
        tool_name="repro.analysis",
        rule_titles={rid: RULE_REGISTRY[rid].title for rid in RULE_REGISTRY},
    )
    if findings:
        files = len({f.path for f in findings})
        print(
            f"repro.analysis: {len(findings)} {label} in {files} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _analyze_cached(paths: Sequence[str], use_cache: bool) -> List[Finding]:
    """Run :func:`analyze_paths`, memoized on the tree content hash.

    The interprocedural pass is whole-program — one edited module can
    change findings elsewhere through the call graph — so the cache
    key covers every discovered file; any edit re-runs the full pass.
    Filtering (``--select``/``--ignore``) happens after lookup, so one
    entry serves every selection.
    """
    if not use_cache:
        return analyze_paths(paths)
    files = discover_files(paths)
    items = []
    for path in files:
        try:
            items.append((str(path), content_digest(path.read_text(encoding="utf-8"))))
        except (OSError, UnicodeDecodeError):
            return analyze_paths(paths)
    cache = FindingsCache(DEFAULT_CACHE_DIR, "repro.analysis", "interproc")
    key = cache.key(items)
    cached = cache.load(key)
    if cached is not None:
        return cached
    findings = analyze_paths(paths)
    cache.store(key, findings)
    return findings


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

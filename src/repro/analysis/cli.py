"""Command-line front end for the static dataflow/equations analysis.

Usage::

    python -m repro.analysis [PATH ...] [--select R010,R02,R03]
                             [--explain [RULE]] [--format text|json|github]
    python -m repro.analysis --equations [--manifest docs/equations.toml]
                             [--src src/repro]

The default invocation runs three checker families over the given
paths (default: ``src``), reusing the ``repro.lint`` discovery, noqa
and output conventions:

* the units/dimension dataflow analysis (rules R010-R012);
* the array axis/shape dataflow analysis (rules R020-R023);
* the determinism rules (rules R030-R032).

``--select`` accepts exact ids or prefixes — ``--select R02,R03``
selects both whole families.  ``--equations`` instead cross-checks the
docstring equation citations against the ``docs/equations.toml``
manifest (rules EQ001-EQ003).  Exit status is 1 when any finding is
reported, 0 when clean, 2 on usage errors — identical to
``python -m repro.lint``, so both slot into ``scripts/check.sh`` and
CI the same way.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.arrayflow import ArrayDataflowRule
from repro.analysis.dataflow import UnitDataflowRule
from repro.analysis.determinism import DETERMINISM_RULE_CLASSES
from repro.analysis.equations import (
    DEFAULT_MANIFEST,
    DEFAULT_SRC_ROOT,
    EQUATION_RULES,
    audit_equations,
)
from repro.analysis.registry import ANALYZER_RULE_IDS, RULE_REGISTRY
from repro.lint.cli import lint_paths
from repro.lint.emitter import FORMATS, emit
from repro.lint.rules import Finding

#: Rule ids the units analysis can emit, kept for backwards
#: compatibility (E999 rides along for unparsable files).
UNIT_RULE_IDS = ("R010", "R011", "R012")


def analyze_paths(paths: Sequence[str]) -> List[Finding]:
    """Run all dataflow/determinism analyses over files/directories."""
    rules = [UnitDataflowRule(), ArrayDataflowRule()]
    rules.extend(cls() for cls in DETERMINISM_RULE_CLASSES)
    return list(lint_paths(paths, rules))


def _explain(rule_id: Optional[str]) -> int:
    """Print the analysis rule catalogue (or one rule's rationale)."""
    if rule_id is None:
        for rid in ANALYZER_RULE_IDS:
            print(f"{rid}  {RULE_REGISTRY[rid].title}")
        for eq_id in EQUATION_RULES:
            print(f"{eq_id}  {RULE_REGISTRY[eq_id].title}")
        print()
        print("Use --explain RULE_ID for the full rationale of one rule.")
        return 0
    key = rule_id.upper()
    info = RULE_REGISTRY.get(key)
    if info is not None:
        print(f"{info.rule_id} — {info.title}")
        print()
        print(info.explain)
        return 0
    print(f"unknown rule id: {rule_id}", file=sys.stderr)
    return 2


def _selected_ids(select: Optional[str], valid: Sequence[str]) -> Optional[Set[str]]:
    """Resolve ``--select`` into a set of rule ids (None = all).

    Tokens match exactly or as prefixes: ``R02`` selects every
    ``R02x`` rule, ``R0`` selects all R-rules of the family list.
    """
    if select is None:
        return None
    chosen: Set[str] = set()
    for token in select.split(","):
        token = token.strip().upper()
        if not token:
            continue
        matched = {rid for rid in valid if rid.startswith(token)}
        if not matched:
            raise SystemExit(
                f"repro.analysis: unknown rule id in --select: {token} "
                f"(valid: {', '.join(valid)})"
            )
        chosen.update(matched)
    return chosen


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    try:
        return _run(argv)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static units/dimension analysis (R010-R012), array "
        "axis/shape analysis (R020-R023), determinism rules (R030-R032) "
        "and paper-equation coverage audit (EQ001-EQ003).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--equations",
        action="store_true",
        help="run the equation-coverage audit instead of the units analysis",
    )
    parser.add_argument(
        "--manifest",
        default=str(DEFAULT_MANIFEST),
        metavar="TOML",
        help="equations manifest path (default: docs/equations.toml)",
    )
    parser.add_argument(
        "--src",
        default=str(DEFAULT_SRC_ROOT),
        metavar="DIR",
        help="tree whose docstrings the audit scans (default: src/repro)",
    )
    parser.add_argument(
        "--explain",
        nargs="?",
        const="",
        default=None,
        metavar="RULE",
        help="print the rule catalogue, or one rule's full rationale",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=FORMATS,
        default="text",
        help="output encoding: text lines, a json object, or GitHub "
        "Actions ::error annotations",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain or None)

    if args.equations:
        manifest = Path(args.manifest)
        src_root = Path(args.src)
        if not manifest.is_file():
            print(f"repro.analysis: no such manifest: {manifest}", file=sys.stderr)
            return 2
        if not src_root.exists():
            print(f"repro.analysis: no such source tree: {src_root}", file=sys.stderr)
            return 2
        selected = _selected_ids(args.select, tuple(EQUATION_RULES))
        findings = audit_equations(manifest, src_root).findings
        label = "equation-audit finding(s)"
    else:
        selected = _selected_ids(args.select, ANALYZER_RULE_IDS)
        paths = args.paths or ["src"]
        try:
            findings = analyze_paths(paths)
        except FileNotFoundError as exc:
            print(f"repro.analysis: {exc}", file=sys.stderr)
            return 2
        label = "finding(s)"

    if selected is not None:
        findings = [f for f in findings if f.rule_id in selected or f.rule_id == "E999"]

    emit(findings, args.output_format)
    if findings:
        files = len({f.path for f in findings})
        print(
            f"repro.analysis: {len(findings)} {label} in {files} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Axis-annotation vocabulary for the static array-shape analyzer.

The struct-of-arrays core (``repro.core.arraystate``) fixes four axis
meanings for the whole hot path:

====== ==============================================================
Axis   Meaning
====== ==============================================================
``N``  nodes, in ``NetworkModel.nodes`` order (BS rows first)
``S``  sessions, in ``NetworkModel.sessions`` order
``L``  directed links, in the frozen ``ArrayState.links`` order
``M``  spectrum bands, in ``bands_hz`` key order
``1``  a broadcast axis inserted with ``None``/``np.newaxis``
====== ==============================================================

Every alias below is ``Annotated[np.ndarray, Axes(...)]`` — zero cost
at runtime (annotated code passes and returns plain ``ndarray``), but
the dataflow analyzer (``python -m repro.analysis``, rules R020-R023)
reads the axis names statically and flags incompatible broadcasts,
wrong-axis reductions, and frozen-index violations before a simulation
ever runs.

Index arrays carry a second piece of metadata, ``IndexInto(axis)``:
``LinkToNode`` is a ``(L,)`` array whose *values* are node ids, so it
may subscript axis-``N`` arrays (``q[link_tx]`` gathers ``(L, S)``)
but never axis-``L`` arrays (``g[link_tx]`` is rule R023 — the classic
node-id/link-id confusion the frozen link index exists to prevent).

Aliases that also carry a :class:`repro.units.Unit` (``NodeJoules``,
``QueuePackets``, ...) feed *both* analyzers: the axis lattice checks
shapes while the units lattice (R010-R012) checks dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated, Dict, Tuple

import numpy as np

from repro.units import Unit, ALIAS_UNITS as _UNIT_ALIASES

#: Sentinel axis name: the array is intentionally shape-agnostic
#: (e.g. ``seq_sum`` reduces anything).  Satisfies rule R022 without
#: asserting a rank.
ANY_AXIS = "?"

#: Canonical axis name -> meaning, mirrored in ``docs/analysis.md``.
AXIS_MEANINGS: Dict[str, str] = {
    "N": "nodes (NetworkModel.nodes order, BS rows first)",
    "S": "sessions (NetworkModel.sessions order)",
    "L": "directed links (frozen ArrayState.links order)",
    "M": "spectrum bands (bands_hz key order)",
    "1": "broadcast axis inserted with None/np.newaxis",
    ANY_AXIS: "intentionally shape-agnostic",
}


@dataclass(frozen=True)
class Axes:
    """Static axis names carried by one ``Annotated`` array alias.

    ``Axes("L", "M")`` declares a rank-2 array whose rows follow the
    frozen link order and whose columns follow the band order.  Axis
    names must come from :data:`AXIS_MEANINGS`; ``Axes(ANY_AXIS)``
    opts out of rank checking entirely.
    """

    names: Tuple[str, ...] = field(default=())

    def __init__(self, *names: str) -> None:
        for name in names:
            if name not in AXIS_MEANINGS:
                raise ValueError(
                    f"unknown axis name {name!r}; expected one of "
                    f"{sorted(AXIS_MEANINGS)}"
                )
        object.__setattr__(self, "names", tuple(names))

    @property
    def is_any(self) -> bool:
        return ANY_AXIS in self.names

    def __str__(self) -> str:
        return "(" + ", ".join(self.names) + ")"


@dataclass(frozen=True)
class IndexInto:
    """Marks an integer array whose *values* index the named axis.

    ``Annotated[np.ndarray, Axes("L"), IndexInto("N")]`` is a
    link-indexed array of node ids: positions follow the link order,
    values subscript node-axis arrays.  Rule R023 fires when such an
    array subscripts an array whose leading axis is not ``axis``.
    """

    axis: str

    def __post_init__(self) -> None:
        if self.axis not in AXIS_MEANINGS:
            raise ValueError(
                f"unknown axis name {self.axis!r}; expected one of "
                f"{sorted(AXIS_MEANINGS)}"
            )


_JOULES = _UNIT_ALIASES["Joules"]
_PACKETS = _UNIT_ALIASES["Packets"]

# -- Axes-only aliases (dimensionless or mixed-unit arrays) -----------

#: ``(N,)`` per-node vector (efficiencies, masks, generic scratch).
NodeVec = Annotated[np.ndarray, Axes("N")]
#: ``(L,)`` per-link vector (powers, rates, weights).
LinkVec = Annotated[np.ndarray, Axes("L")]
#: ``(S,)`` per-session vector.
SessionVec = Annotated[np.ndarray, Axes("S")]
#: ``(M,)`` per-band vector (capacities, bandwidths).
BandVec = Annotated[np.ndarray, Axes("M")]
#: ``(N, S)`` node x session matrix (the Q backlog layout).
NodeSessionMat = Annotated[np.ndarray, Axes("N", "S")]
#: ``(N, S)`` boolean mask over the Q layout (valid/invalid cells).
QueueMask = Annotated[np.ndarray, Axes("N", "S")]
#: ``(L, S)`` link x session matrix (routing coefficients, eligibility).
LinkSessionMat = Annotated[np.ndarray, Axes("L", "S")]
#: ``(L, M)`` link x band matrix (band membership, per-band rates).
LinkBandMat = Annotated[np.ndarray, Axes("L", "M")]
#: ``(N, M)`` node x band matrix (per-slot spectrum access).
NodeBandMat = Annotated[np.ndarray, Axes("N", "M")]
#: Shape-agnostic array — annotation-complete (R022) without a rank.
AnyArray = Annotated[np.ndarray, Axes(ANY_AXIS)]

# -- Frozen-index aliases (integer arrays indexing another axis) ------

#: ``(L,)`` node ids: ``link_tx``/``link_rx`` gather node-axis arrays.
LinkToNode = Annotated[np.ndarray, Axes("L"), IndexInto("N")]
#: ``(S,)`` node ids: per-session sources/destinations.
SessionToNode = Annotated[np.ndarray, Axes("S"), IndexInto("N")]
#: Variable-length node-id index (e.g. ``bs_rows``/``user_rows``).
NodeIds = Annotated[np.ndarray, Axes(ANY_AXIS), IndexInto("N")]
#: Variable-length link-position index.
LinkIds = Annotated[np.ndarray, Axes(ANY_AXIS), IndexInto("L")]

# -- Combined axis + unit aliases (feed both analyzers) ---------------

#: ``(N,)`` joules: battery levels, caps, shifts (Eqs. 9-13).
NodeJoules = Annotated[np.ndarray, Axes("N"), _JOULES]
#: ``(N, S)`` packets: the Q backlog matrix (Eq. 15).
QueuePackets = Annotated[np.ndarray, Axes("N", "S"), _PACKETS]
#: ``(L,)`` packets: G/H virtual backlogs (Eqs. 28, 30-31).
LinkPackets = Annotated[np.ndarray, Axes("L"), _PACKETS]

#: Alias name -> axis metadata, the analyzer's annotation vocabulary.
ALIAS_AXES: Dict[str, Axes] = {
    "NodeVec": Axes("N"),
    "LinkVec": Axes("L"),
    "SessionVec": Axes("S"),
    "BandVec": Axes("M"),
    "NodeSessionMat": Axes("N", "S"),
    "QueueMask": Axes("N", "S"),
    "LinkSessionMat": Axes("L", "S"),
    "LinkBandMat": Axes("L", "M"),
    "NodeBandMat": Axes("N", "M"),
    "AnyArray": Axes(ANY_AXIS),
    "LinkToNode": Axes("L"),
    "SessionToNode": Axes("S"),
    "NodeIds": Axes(ANY_AXIS),
    "LinkIds": Axes(ANY_AXIS),
    "NodeJoules": Axes("N"),
    "QueuePackets": Axes("N", "S"),
    "LinkPackets": Axes("L"),
}

#: Alias name -> index domain, for rule R023.
ALIAS_INDEX: Dict[str, IndexInto] = {
    "LinkToNode": IndexInto("N"),
    "SessionToNode": IndexInto("N"),
    "NodeIds": IndexInto("N"),
    "LinkIds": IndexInto("L"),
}

#: Alias name -> unit metadata, merged into the R010-R012 vocabulary
#: so unit-carrying array aliases feed the units lattice too.
ALIAS_UNITS: Dict[str, Unit] = {
    "NodeJoules": _JOULES,
    "QueuePackets": _PACKETS,
    "LinkPackets": _PACKETS,
}

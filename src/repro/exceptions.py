"""Exception taxonomy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A scenario or parameter set is inconsistent or out of range."""


class TopologyError(ReproError):
    """The network topology is malformed (unknown node, no links, ...)."""


class SpectrumError(ReproError):
    """A spectrum band is referenced that a node cannot access."""


class QueueError(ReproError):
    """A queueing-law invariant was violated (negative backlog, ...)."""


class EnergyError(ReproError):
    """An energy-storage invariant was violated (overcharge, ...)."""


class InfeasibleError(ReproError):
    """An optimization subproblem has no feasible point."""


class SolverError(ReproError):
    """A numerical solver failed to converge or returned garbage."""


class SimulationError(ReproError):
    """The slot simulator reached an inconsistent state."""


class ShardingError(ReproError):
    """A shard plan is infeasible or a sharded run is misconfigured."""

"""Shard-aware S1–S4 controller: local passes, global merge points.

The drift-plus-penalty decomposition is per-link (S1 weights), per-node
(curtailment, S4), and per-(link, session) (S3 coefficients), so each
shard can compute its own slice of the decision inputs independently.
What *cannot* be sharded without changing results is coordination:

* **S1 selection + power control** — the greedy selector resolves radio
  and band conflicts network-wide, and the per-band Foschini–Miljanic
  solve couples every co-band link through interference, so both run on
  the merged candidate list.  The merge is order-independent: candidate
  keys ``(weight, tx, rx, band)`` are unique and the selector lexsorts
  them, so concatenating per-shard slices in any order yields the exact
  monolithic decision.
* **Curtailment, S2, the S3 commit loops, and S4** — each consumes RNG
  draws and/or fleet-level prices in a fixed global order; they stay
  global so the draw sequence is bit-identical to the monolithic
  controller on *every* scenario, not just contained-traffic ones.

The shard-local work is therefore the candidate-weight scan (S1) and
the routing-coefficient fill (S3) — the two passes whose cost grows
with the link count — while the merge points are exactly the boundary
exchanges described in ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.contracts import ContractChecker
from repro.control.controller import DriftPlusPenaltyController
from repro.control.decisions import ScheduleDecision, SlotObservation
from repro.control.router import RouterMode
from repro.core.arraystate import LinkArrayMapping
from repro.core.lyapunov import LyapunovConstants
from repro.exceptions import ShardingError
from repro.model import NetworkModel
from repro.sharding.partition import ShardPlan
from repro.state import NetworkState
from repro.types import EnergySolverKind, Link, SchedulerKind

__all__ = ["ShardedController"]


class ShardedController(DriftPlusPenaltyController):
    """The drift-plus-penalty controller over a :class:`ShardPlan`.

    Only the S1 and S3 phase computations change (shard-local slices,
    merged globally); sequencing, curtailment, S2, S4, RNG consumption,
    and contract checks are inherited unchanged.
    """

    def __init__(
        self,
        plan: ShardPlan,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
        energy_solver: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        router_mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        # Only the GREEDY selector has the order-independent lexsort
        # merge the sharded S1 relies on; the sequential-fix and
        # matching selectors are insertion-order-sensitive.
        super().__init__(
            model,
            constants,
            rng,
            scheduler_kind=SchedulerKind.GREEDY,
            energy_solver=energy_solver,
            router_mode=router_mode,
            checker=checker,
        )
        self._plan = plan

    @property
    def plan(self) -> ShardPlan:
        """The shard plan this controller computes over."""
        return self._plan

    def _require_arrays(self, h_backlogs, arrays) -> None:
        """The sharded phases slice frozen arrays; object state can't."""
        if (
            arrays is None
            or not isinstance(h_backlogs, LinkArrayMapping)
            or h_backlogs.links is not arrays.links
        ):
            raise ShardingError(
                "sharded control requires the array-backed NetworkState"
                " over the frozen link index"
            )

    def _schedule_phase(
        self,
        observation: SlotObservation,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
        arrays,
    ) -> ScheduleDecision:
        """S1: per-shard candidate scans, one global conflict merge."""
        self._require_arrays(h_backlogs, arrays)
        energy_prices = self._energy_prices(observation.slot, use_arrays=True)
        slices = [
            self.scheduler.candidate_slice(
                observation,
                h_backlogs,
                energy_prices,
                within=shard.owned_link_pos,
            )
            for shard in self._plan.shards
        ]
        link_pos = np.concatenate([s[0] for s in slices])
        bands = np.concatenate([s[1] for s in slices])
        weights = np.concatenate([s[2] for s in slices])
        forbidden = None
        if self._allowed_links is not None:
            forbidden = [
                link for link, ok in self._allowed_links.items() if not ok
            ]
        return self.scheduler.schedule_from_candidates(
            link_pos,
            bands,
            weights,
            observation,
            h_backlogs,
            forbidden,
            self._model.topology.candidate_links,
        )

    def _routing_phase(
        self,
        observation: SlotObservation,
        schedule: ScheduleDecision,
        admission,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
        arrays,
    ):
        """S3: per-shard coefficient fill, global selection/commit.

        Each shard writes its owned rows of the ``(L, S)`` coefficient
        matrix ``-Q_i^s + Q_j^s + beta H_ij``; a boundary link's row
        reads the receiver's backlog from the neighbouring shard's node
        rows — the read half of the halo.  Every entry is an elementwise
        function of its own row, so the sliced fill equals the global
        expression bit for bit; the router's tie-break/RNG machinery
        then runs globally over the completed matrix.
        """
        self._require_arrays(h_backlogs, arrays)
        beta_h = self._constants.beta * h_backlogs.values_array
        q = arrays.q
        coeff = np.empty((len(arrays.links), len(arrays.sessions)))  # noqa: R041 - same (L, S) matrix the monolithic router broadcasts (router.py route); L is the pruned candidate-link set, sub-quadratic under the sparse topology
        for shard in self._plan.shards:
            pos = shard.owned_link_pos
            coeff[pos] = (-q[arrays.link_tx[pos]] + q[arrays.link_rx[pos]]) + (
                beta_h[pos][:, None]
            )
        return self.router.route(
            observation,
            schedule,
            admission,
            state.backlog,
            h_backlogs,
            allowed_links=self._allowed_links,
            arrays=arrays,
            coeff=coeff,
        )

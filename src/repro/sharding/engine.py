"""The sharded slot simulator.

``ShardedSlotSimulator`` is a :class:`~repro.sim.engine.SlotSimulator`
whose state and controller are built over one shared
:class:`~repro.sharding.partition.ShardPlan`:

* the state is a :class:`~repro.sharding.state.ShardedNetworkState`
  (global buffer build = boundary exchange, per-shard slice applies);
* the controller is a
  :class:`~repro.sharding.controller.ShardedController` (per-shard S1
  candidate scans and S3 coefficient fills, global merge points).

RNG construction, model build, contract wiring, metrics, and the
observe → decide → apply step are all inherited, so a sharded run with
``num_shards=1`` consumes byte-for-byte the same streams — and produces
bit-identical decisions and state — as the monolithic GREEDY simulator.
The relaxed LP bound solves one global program by definition and is not
shardable; use :meth:`SlotSimulator.relaxed` for it.
"""

from __future__ import annotations

from repro.config.parameters import ScenarioParameters
from repro.control.router import RouterMode
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.sharding.controller import ShardedController
from repro.sharding.partition import ShardPlan, build_shard_plan
from repro.sharding.state import BoundaryExchange, ShardedNetworkState
from repro.sim.engine import ContractsArg, Controller, SlotSimulator
from repro.sim.rng import RngStreams
from repro.types import EnergySolverKind

__all__ = ["ShardedSlotSimulator"]


class ShardedSlotSimulator(SlotSimulator):
    """A scenario wired up to run shard-local S1–S4 passes."""

    def __init__(
        self,
        params: ScenarioParameters,
        num_shards: int,
        energy_solver: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        router_mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        contracts: ContractsArg = None,
    ) -> None:
        # The base constructor builds the state before the controller,
        # so the plan is derived once in the state factory and shared
        # with the controller factory through this closure slot.
        holder: dict = {}

        def state_factory(
            model: NetworkModel, constants: LyapunovConstants, rng
        ) -> ShardedNetworkState:
            plan = build_shard_plan(model, num_shards)
            holder["plan"] = plan
            return ShardedNetworkState(model, constants, rng, plan=plan)

        def controller_factory(
            model: NetworkModel, constants: LyapunovConstants, rng: RngStreams
        ) -> Controller:
            return ShardedController(
                holder["plan"],
                model,
                constants,
                rng.controller,
                energy_solver=energy_solver,
                router_mode=router_mode,
            )

        super().__init__(
            params,
            controller_factory,
            contracts=contracts,
            state_cls=state_factory,  # type: ignore[arg-type]
        )
        self.plan: ShardPlan = holder["plan"]

    @property
    def exchange(self) -> BoundaryExchange:
        """The state's boundary-exchange diagnostics."""
        return self.state.exchange

"""Multi-cell sharding: BS-anchored regions with boundary-queue exchange.

See ``docs/architecture.md`` ("Sharded slot loop") for the partition /
halo / exchange design and the determinism argument.
"""

from repro.sharding.controller import ShardedController
from repro.sharding.engine import ShardedSlotSimulator
from repro.sharding.partition import Shard, ShardPlan, build_shard_plan
from repro.sharding.state import BoundaryExchange, ShardedNetworkState

__all__ = [
    "BoundaryExchange",
    "Shard",
    "ShardPlan",
    "ShardedController",
    "ShardedNetworkState",
    "ShardedSlotSimulator",
    "build_shard_plan",
]

"""Shard-aware network state: global buffer build, per-shard apply.

The monolithic :meth:`repro.state.NetworkState.apply` advances Eq. 15
(data queues), Eq. 28 (link virtual queues), and Eq. 4 (batteries) with
whole-array kernels.  :class:`ShardedNetworkState` splits each update
into the two halves the queue banks expose:

1. **build** — one slot's decision dicts are scattered into dense global
   buffers, walked once in their deterministic global insertion order.
   This *is* the boundary-queue exchange: a boundary link's routed rate
   lands in the service buffer at its transmitter's row (one shard) and
   in the arrival buffer at its receiver's row (the other), in a fixed
   order that no shard schedule can perturb.
2. **apply** — each shard advances its own slice (node rows for Eq. 15
   and Eq. 4, owned link positions for Eq. 28).  Every update is
   elementwise per queue cell / link / battery, so the per-shard applies
   compose to bit-for-bit the same state as the monolithic kernels.

:class:`BoundaryExchange` accumulates per-slot diagnostics over the
plan's boundary set — the contained-traffic equivalence test asserts it
stays empty when sessions never cross shard borders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.control.decisions import SlotDecision
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.queueing.backlog import BacklogSnapshot, make_snapshot_from_arrays
from repro.sharding.partition import ShardPlan
from repro.state import NetworkState

__all__ = ["BoundaryExchange", "ShardedNetworkState"]


@dataclass
class BoundaryExchange:
    """Running totals of traffic crossing shard borders.

    Attributes:
        slots: slots recorded so far.
        cross_arrivals_pkts: packets routed onto boundary links
            (Eq. 15/28 arrivals a remote shard will absorb), total.
        cross_service_pkts: scheduled service on boundary links, total.
        per_slot_arrivals: per-slot boundary arrival totals, in slot
            order.
    """

    slots: int = 0
    cross_arrivals_pkts: float = 0.0
    cross_service_pkts: float = 0.0
    per_slot_arrivals: List[float] = field(default_factory=list)

    def record(
        self,
        boundary_link_pos: np.ndarray,
        arrivals: np.ndarray,
        service: np.ndarray,
    ) -> None:
        """Accumulate one slot's boundary totals from the link buffers."""
        crossed = float(arrivals[boundary_link_pos].sum())
        self.slots += 1
        self.cross_arrivals_pkts += crossed
        self.cross_service_pkts += float(service[boundary_link_pos].sum())
        self.per_slot_arrivals.append(crossed)

    @property
    def contained(self) -> bool:
        """True while no packet has ever crossed a shard border."""
        return (
            self.cross_arrivals_pkts == 0.0  # noqa: R002 - exact zero is the contract: totals are sums of non-negative packet counts, so any crossing makes them strictly positive
            and self.cross_service_pkts == 0.0  # noqa: R002 - same exact-zero containment contract as above
        )


class ShardedNetworkState(NetworkState):
    """Array-backed state advanced shard by shard.

    Construction, RNG stream consumption, and every read accessor are
    inherited unchanged — only :meth:`apply` is replaced by the
    build-globally / apply-per-shard split described in the module
    docstring, so observations and controller inputs are bitwise those
    of the monolithic state.
    """

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
        plan: ShardPlan,
    ) -> None:
        super().__init__(model, constants, rng)
        self.plan = plan
        self.exchange = BoundaryExchange()

    def apply(
        self,
        decision: SlotDecision,
        slot: int,
        enforce_complementarity: bool = True,
    ) -> BacklogSnapshot:
        """Apply one slot's decision via the sharded exchange protocol."""
        # Exchange: build every global buffer first, in fixed order.
        q_service, q_arrivals = self.data_queues.build_buffers(
            decision.routing.rates, decision.admission.as_queue_arrivals()
        )
        g_arrivals, g_service = self.virtual_queues.build_buffers(
            decision.routing.link_totals(), decision.schedule.link_service_pkts
        )
        charge_j, drain_j = self._build_battery_buffers(
            decision, enforce_complementarity
        )
        self.exchange.record(
            self.plan.boundary_link_pos, g_arrivals, g_service
        )

        # Shard-local applies over disjoint slices of the shared arrays.
        for shard in self.plan.shards:
            self.data_queues.apply_buffers(
                q_service, q_arrivals, rows=shard.node_rows
            )
            self.virtual_queues.apply_buffers(
                g_arrivals, g_service, positions=shard.owned_link_pos
            )
            self.arrays.apply_battery_actions(
                charge_j, drain_j, rows=shard.node_rows
            )

        return make_snapshot_from_arrays(slot=slot, arrays=self.arrays)

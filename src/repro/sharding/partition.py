"""BS-anchored topology partitioning for the sharded slot loop.

A :class:`ShardPlan` splits a network into ``num_shards`` regions, each
anchored on a contiguous spatial group of base stations:

1. Base stations are ordered spatially by walking the non-empty cells of
   a :class:`~repro.network.geometry.UniformGridIndex` built over the BS
   positions (row-major cell order, ascending members within a cell), so
   nearby stations land in the same anchor group.
2. The ordered stations are cut into ``num_shards`` contiguous groups of
   near-equal size — the shard anchors.
3. Every node joins the shard of its nearest base station (lowest BS id
   wins exact distance ties); a base station's nearest station is itself,
   so anchors always live in their own shard.

Ownership over the frozen link index follows the transmitter: shard ``s``
owns link position ``p`` iff ``node_shard[link_tx[p]] == s``.  A link
whose endpoints live in different shards is a *boundary* link; it appears
in the halo of **both** adjacent shards (the owner needs the receiver's
queue backlog for routing weights, the receiver's shard needs the
arrival when the boundary exchange applies Eq. 15).

The plan is purely structural — it never reorders the frozen node/link
indices, so per-shard work is expressed as index slices into the same
global arrays the monolithic path uses.  That is what makes the sharded
loop bit-identical (see ``docs/architecture.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ShardingError
from repro.model import NetworkModel
from repro.network.geometry import UniformGridIndex
from repro.sim.rng import SpawnKey, spawn_child_keys

__all__ = ["Shard", "ShardPlan", "build_shard_plan"]

#: Target entries per chunk of the (nodes x stations) distance block in
#: the nearest-BS assignment, bounding peak memory at large N * B.
_ASSIGN_CHUNK_ENTRIES = 4_000_000


@dataclass(frozen=True)
class Shard:
    """One BS-anchored region of a :class:`ShardPlan`.

    Attributes:
        shard_id: dense shard index ``0 .. num_shards - 1``.
        anchor_bs: base-station ids anchoring this shard (spatial order).
        node_rows: frozen node indices owned by the shard, ascending.
        owned_link_pos: frozen link positions whose transmitter lives in
            this shard, ascending.
        halo_link_pos: boundary link positions touching this shard
            (either endpoint local, the other remote), ascending.
        session_cols: session columns (ArrayState column order) whose
            destination lives in this shard, ascending.
        spawn_key: ``SeedSequence`` spawn key reserved for this shard so
            a distributed backend can derive an independent stream
            without coordinating with its peers.
    """

    shard_id: int
    anchor_bs: Tuple[int, ...]
    node_rows: np.ndarray = field(repr=False)
    owned_link_pos: np.ndarray = field(repr=False)
    halo_link_pos: np.ndarray = field(repr=False)
    session_cols: np.ndarray = field(repr=False)
    spawn_key: SpawnKey = ()

    @property
    def num_nodes(self) -> int:
        """Nodes owned by this shard."""
        return int(self.node_rows.size)


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of one network into BS-anchored shards.

    Attributes:
        num_shards: shard count.
        shards: the shards, ordered by ``shard_id``.
        node_shard: ``(N,)`` owning shard per frozen node index.
        link_shard: ``(L,)`` owning shard per frozen link position
            (the transmitter's shard).
        boundary_link_pos: frozen link positions whose endpoints live in
            different shards, ascending — the exchange set.
    """

    num_shards: int
    shards: Tuple[Shard, ...]
    node_shard: np.ndarray = field(repr=False)
    link_shard: np.ndarray = field(repr=False)
    boundary_link_pos: np.ndarray = field(repr=False)

    def validate(self) -> None:
        """Check the structural invariants of the partition.

        Raises:
            ShardingError: if any node or link is unowned/doubly owned, or
                a boundary link is missing from an adjacent halo.
        """
        num_nodes = self.node_shard.size
        owned_nodes = np.concatenate(
            [shard.node_rows for shard in self.shards]
        )
        if not np.array_equal(np.sort(owned_nodes), np.arange(num_nodes)):
            raise ShardingError("shards do not partition the node index")
        num_links = self.link_shard.size
        owned_links = np.concatenate(
            [shard.owned_link_pos for shard in self.shards]
        )
        if not np.array_equal(np.sort(owned_links), np.arange(num_links)):
            raise ShardingError("shards do not partition the link index")
        boundary = set(self.boundary_link_pos.tolist())
        halos = {
            shard.shard_id: set(shard.halo_link_pos.tolist())
            for shard in self.shards
        }
        for shard_id, halo in halos.items():
            if not halo <= boundary:
                raise ShardingError(
                    f"shard {shard_id} halo contains interior links"
                )
        for pos in sorted(boundary):
            members = sorted(
                shard_id for shard_id, halo in halos.items() if pos in halo
            )
            expected = sorted(
                {
                    int(self.link_shard[pos]),
                    int(self.node_shard[self._link_rx[pos]]),
                }
            )
            if members != expected:
                raise ShardingError(
                    f"boundary link {pos} halos {members} != adjacent"
                    f" shards {expected}"
                )

    # validate() needs link_rx; the builder stores it privately so the
    # public surface stays the ownership arrays.
    _link_rx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]


def _spatial_bs_order(model: NetworkModel) -> np.ndarray:
    """Base-station ids in spatial (grid-cell row-major) order."""
    bs_ids = np.asarray(model.bs_ids, dtype=np.intp)
    positions = np.array(
        [[model.nodes[b].position.x, model.nodes[b].position.y] for b in bs_ids]
    )
    extent = float(positions.max() - positions.min()) if bs_ids.size > 1 else 1.0
    # Aim for roughly one station per cell so the row-major walk is a
    # genuine space-filling order rather than one giant bucket.
    cell = max(extent / max(int(np.sqrt(bs_ids.size)), 1), 1e-9)
    grid = UniformGridIndex(positions, cell)
    ordered = [
        int(bs_ids[member])
        for _row, _col, members in grid.nonempty_cells()
        for member in members
    ]
    return np.asarray(ordered, dtype=np.intp)


def _assign_nearest_bs(model: NetworkModel, bs_ids: np.ndarray) -> np.ndarray:
    """``(N,)`` index into ``bs_ids`` of each node's nearest station.

    Chunked over nodes so the (chunk, B) distance block stays bounded;
    ties resolve to the lowest *position in bs_ids* via argmin, which is
    the lowest BS id because ``bs_ids`` is passed ascending.
    """
    positions = np.array(
        [[node.position.x, node.position.y] for node in model.nodes]
    )
    stations = positions[bs_ids]
    num_nodes = positions.shape[0]
    chunk = max(1, _ASSIGN_CHUNK_ENTRIES // max(bs_ids.size, 1))
    nearest = np.empty(num_nodes, dtype=np.intp)
    for start in range(0, num_nodes, chunk):
        block = positions[start : start + chunk]
        deltas = block[:, None, :] - stations[None, :, :]  # noqa: R041 - chunked (chunk, B) block, not all-pairs; peak memory bounded by _ASSIGN_CHUNK_ENTRIES
        dist_sq = (deltas**2).sum(axis=2)
        nearest[start : start + chunk] = np.argmin(dist_sq, axis=1)
    return nearest


def build_shard_plan(model: NetworkModel, num_shards: int) -> ShardPlan:
    """Partition ``model`` into ``num_shards`` BS-anchored shards.

    Args:
        model: the static network model (frozen node/link indices).
        num_shards: target shard count; must satisfy
            ``1 <= num_shards <= len(model.bs_ids)``.

    Returns:
        A validated :class:`ShardPlan`.

    Raises:
        ShardingError: on an infeasible shard count.
    """
    bs_ids = np.asarray(model.bs_ids, dtype=np.intp)
    if num_shards < 1:
        raise ShardingError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > bs_ids.size:
        raise ShardingError(
            f"num_shards={num_shards} exceeds the {bs_ids.size}"
            " base stations available as anchors"
        )

    ordered_bs = _spatial_bs_order(model)
    base, extra = divmod(ordered_bs.size, num_shards)
    groups = []
    cursor = 0
    for shard_id in range(num_shards):
        size = base + (1 if shard_id < extra else 0)
        groups.append(tuple(int(b) for b in ordered_bs[cursor : cursor + size]))
        cursor += size

    # Shard of each *station*, indexed by position in ascending bs_ids.
    bs_shard_by_id: Dict[int, int] = {
        b: shard_id for shard_id, group in enumerate(groups) for b in group
    }
    station_shard = np.array(
        [bs_shard_by_id[int(b)] for b in bs_ids], dtype=np.intp
    )

    nearest = _assign_nearest_bs(model, bs_ids)
    node_shard = station_shard[nearest]
    # A station's nearest station is itself (distance 0 beats every
    # other draw; equal-position stations collapse to the lowest id,
    # which is fine — they are spatially indistinguishable anchors).

    link_tx, link_rx = model.topology.link_arrays()
    link_shard = node_shard[link_tx]
    rx_shard = node_shard[link_rx]
    boundary_link_pos = np.flatnonzero(link_shard != rx_shard)

    destinations = model.session_destinations()
    session_dest = np.array(
        [destinations[s.session_id] for s in model.sessions], dtype=np.intp
    )
    session_shard = (
        node_shard[session_dest]
        if session_dest.size
        else np.zeros(0, dtype=np.intp)
    )

    spawn_keys = spawn_child_keys(
        model.params.seed, num_shards, base=model.params.seed_spawn_key
    )

    shards = []
    for shard_id in range(num_shards):
        local_nodes = np.flatnonzero(node_shard == shard_id)
        owned = np.flatnonzero(link_shard == shard_id)
        touches = (link_shard[boundary_link_pos] == shard_id) | (
            rx_shard[boundary_link_pos] == shard_id
        )
        halo = boundary_link_pos[touches]
        cols = np.flatnonzero(session_shard == shard_id)
        shards.append(
            Shard(
                shard_id=shard_id,
                anchor_bs=groups[shard_id],
                node_rows=local_nodes,
                owned_link_pos=owned,
                halo_link_pos=halo,
                session_cols=cols,
                spawn_key=spawn_keys[shard_id],
            )
        )

    plan = ShardPlan(
        num_shards=num_shards,
        shards=tuple(shards),
        node_shard=node_shard,
        link_shard=link_shard,
        boundary_link_pos=boundary_link_pos,
        _link_rx=link_rx,
    )
    plan.validate()
    return plan

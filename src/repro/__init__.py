"""repro — Optimal Energy Cost for Strongly Stable Multi-hop Green
Cellular Networks (ICDCS 2014), reproduced as a Python library.

The package implements the paper's complete stack from scratch: the
multi-hop cellular network model, the PHY substrate (path loss, SINR,
physical-model interference, power control), the energy substrate
(renewables, batteries, grid, convex generation cost), the queueing
substrate (data/virtual/shifted-energy queues), the Lyapunov
drift-plus-penalty controller with its four per-slot subproblems
(S1 link scheduling, S2 resource allocation, S3 routing, S4 energy
management), the relaxed-LP lower-bound machinery, the baseline
architectures, a slot-based simulator, and one experiment driver per
evaluation figure.

Quickstart::

    from repro import paper_scenario, run_simulation

    result = run_simulation(paper_scenario(control_v=2e5, num_slots=50))
    print(result.summary())
"""

from repro.config import (
    ScenarioParameters,
    paper_scenario,
    small_scenario,
    tiny_scenario,
    validate_parameters,
)
from repro.model import NetworkModel, build_network_model
from repro.core import (
    BoundReport,
    LyapunovConstants,
    RelaxedLpController,
    compute_constants,
    lower_bound_cost,
)
from repro.control import DriftPlusPenaltyController
from repro.sim import SimulationResult, SlotSimulator, TraceRecorder, run_simulation
from repro.state import NetworkState
from repro.types import (
    Architecture,
    EnergySolverKind,
    QueueSemantics,
    SchedulerKind,
)

__version__ = "1.0.0"

__all__ = [
    "ScenarioParameters",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
    "validate_parameters",
    "NetworkModel",
    "build_network_model",
    "BoundReport",
    "LyapunovConstants",
    "RelaxedLpController",
    "compute_constants",
    "lower_bound_cost",
    "DriftPlusPenaltyController",
    "SimulationResult",
    "SlotSimulator",
    "TraceRecorder",
    "run_simulation",
    "NetworkState",
    "Architecture",
    "EnergySolverKind",
    "QueueSemantics",
    "SchedulerKind",
    "__version__",
]

"""One-dimensional solvers: monotone root bisection and golden-section.

The S4 price-decomposition solver (Section IV-C) reduces the coupled
energy-management program — the slot energy balance of Eqs. 2-3 under
the battery/grid constraints Eqs. 9-14 — to a fixed point in the
marginal grid price; these routines are the numerical workhorses
behind it.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.exceptions import SolverError

#: Golden-ratio constant for the section search.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def bisect_root(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Root of a monotone (non-decreasing) function on ``[lo, hi]``.

    If ``func`` has no sign change on the interval the nearer endpoint
    is returned — for monotone response curves that endpoint is the
    constrained optimum, which is exactly the semantics the S4 solver
    needs.

    Raises:
        SolverError: if ``lo > hi``.
    """
    if lo > hi:
        raise SolverError(f"empty interval [{lo}, {hi}]")
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo >= 0.0:
        return lo
    if f_hi <= 0.0:
        return hi
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if abs(f_mid) <= tol or (hi - lo) <= tol * max(1.0, abs(mid)):
            return mid
        if f_mid < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bisect_root_vec(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> np.ndarray:
    """Elementwise :func:`bisect_root` over a batch of ``K`` problems.

    ``func`` maps a ``(K,)`` abscissa vector to a ``(K,)`` residual
    vector; every component must be monotone non-decreasing in its own
    coordinate.  Each component follows *exactly* the scalar
    :func:`bisect_root` iteration — the same midpoints, the same
    stopping rule, the same endpoint short-circuits — so a ``K = 1``
    batch is bit-identical to the scalar solver.  This is the kernel
    behind the batched S4 price decomposition: one ``func`` evaluation
    prices all nodes simultaneously instead of one convex program per
    node (Section IV-C-4).

    Converged components are frozen: their abscissa stops moving and
    their result is pinned, while the remaining components keep
    bisecting (``func`` is still evaluated on the full vector, so it
    must be pure).

    Raises:
        SolverError: if any ``lo > hi``.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if np.any(lo > hi):
        bad = int(np.argmax(lo > hi))
        raise SolverError(f"empty interval [{lo[bad]}, {hi[bad]}]")
    result = np.empty_like(lo)
    f_lo = np.asarray(func(lo), dtype=float)
    at_lo = f_lo >= 0.0
    result[at_lo] = lo[at_lo]
    f_hi = np.asarray(func(hi), dtype=float)
    at_hi = ~at_lo & (f_hi <= 0.0)
    result[at_hi] = hi[at_hi]
    active = ~(at_lo | at_hi)
    if not np.any(active):
        return result
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        f_mid = np.asarray(func(mid), dtype=float)
        done = active & (
            (np.abs(f_mid) <= tol)
            | ((hi - lo) <= tol * np.maximum(1.0, np.abs(mid)))
        )
        result[done] = mid[done]
        active &= ~done
        if not np.any(active):
            return result
        below = active & (f_mid < 0.0)
        lo[below] = mid[below]
        above = active & ~below
        hi[above] = mid[above]
    tail = 0.5 * (lo + hi)
    result[active] = tail[active]
    return result


def minimize_convex_1d(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Golden-section minimiser for a unimodal function on ``[lo, hi]``.

    Returns:
        The abscissa of the (approximate) minimum.

    Raises:
        SolverError: if ``lo > hi``.
    """
    if lo > hi:
        raise SolverError(f"empty interval [{lo}, {hi}]")
    if hi - lo <= tol:
        return 0.5 * (lo + hi)

    x1 = hi - _INV_PHI * (hi - lo)
    x2 = lo + _INV_PHI * (hi - lo)
    f1 = func(x1)
    f2 = func(x2)
    for _ in range(max_iterations):
        if hi - lo <= tol * max(1.0, abs(lo) + abs(hi)):
            break
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _INV_PHI * (hi - lo)
            f1 = func(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _INV_PHI * (hi - lo)
            f2 = func(x2)
    return 0.5 * (lo + hi)

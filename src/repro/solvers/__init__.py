"""Numerical solvers: LP builder, sequential-fix, bisection, QP."""

from repro.solvers.linprog import (
    Constraint,
    LinearProgram,
    LPSolution,
    Sense,
)
from repro.solvers.sequential_fix import sequential_fix
from repro.solvers.bisection import (
    bisect_root,
    bisect_root_vec,
    minimize_convex_1d,
)

__all__ = [
    "Constraint",
    "LinearProgram",
    "LPSolution",
    "Sense",
    "sequential_fix",
    "bisect_root",
    "bisect_root_vec",
    "minimize_convex_1d",
]

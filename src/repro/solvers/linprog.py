"""A named-variable linear-program builder over ``scipy``'s HiGHS.

The scheduling and bound subproblems — the S1 activation/power LP over
constraints (20)-(24) and the relaxed lower-bound program P2 — are
naturally expressed over variables indexed by structured keys
(``(i, j, m)`` link-band triples, ``(i, j, s)`` routing triples).
``LinearProgram`` lets callers build the model in those terms and
converts to the sparse matrix form ``scipy.optimize.linprog`` expects.
Minimisation only, like scipy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError

#: Variables are identified by arbitrary hashable keys.
VarKey = Hashable


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """One linear constraint ``sum coeffs[v] * v  <sense>  rhs``."""

    coeffs: Mapping[VarKey, float]
    sense: Sense
    rhs: float
    name: str = ""


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes:
        objective: optimal objective value.
        values: optimal value per variable key.
    """

    objective: float
    values: Dict[VarKey, float] = field(default_factory=dict)

    def value(self, key: VarKey) -> float:
        """Value of one variable."""
        return self.values[key]


class LinearProgram:
    """Incrementally built minimisation LP with named variables."""

    def __init__(self) -> None:
        self._objective: Dict[VarKey, float] = {}
        self._bounds: Dict[VarKey, Tuple[float, Optional[float]]] = {}
        self._order: List[VarKey] = []
        self._constraints: List[Constraint] = []

    @property
    def num_variables(self) -> int:
        """Number of declared variables."""
        return len(self._order)

    @property
    def num_constraints(self) -> int:
        """Number of added constraints."""
        return len(self._constraints)

    def add_variable(
        self,
        key: VarKey,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> VarKey:
        """Declare a variable with its objective coefficient and bounds.

        Raises:
            SolverError: if ``key`` was already declared.
        """
        if key in self._objective:
            raise SolverError(f"variable {key!r} declared twice")
        if upper is not None and upper < lower:
            raise SolverError(
                f"variable {key!r} has empty bound interval [{lower}, {upper}]"
            )
        self._objective[key] = objective
        self._bounds[key] = (lower, upper)
        self._order.append(key)
        return key

    def has_variable(self, key: VarKey) -> bool:
        """True if ``key`` was declared."""
        return key in self._objective

    def fix_variable(self, key: VarKey, value: float) -> None:
        """Pin an existing variable to a single value."""
        if key not in self._objective:
            raise SolverError(f"unknown variable {key!r}")
        self._bounds[key] = (value, value)

    def add_constraint(
        self,
        coeffs: Mapping[VarKey, float],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> None:
        """Add a linear constraint over declared variables.

        Variables in ``coeffs`` that were never declared raise; zero
        coefficients are dropped.
        """
        clean = {k: v for k, v in coeffs.items() if v != 0.0}  # noqa: R002 - dropping exactly-zero coefficients is intentional; near-zero ones must stay
        unknown = [k for k in clean if k not in self._objective]
        if unknown:
            raise SolverError(f"constraint {name!r} uses unknown variables {unknown}")
        self._constraints.append(Constraint(clean, sense, rhs, name))

    def solve(self) -> LPSolution:
        """Solve with HiGHS and return the solution.

        Raises:
            InfeasibleError: primal infeasible (or unbounded, which for
                our bounded formulations always indicates a modelling
                bug upstream).
            SolverError: any other solver failure.
        """
        if not self._order:
            return LPSolution(objective=0.0)

        index = {key: i for i, key in enumerate(self._order)}
        cost = np.array([self._objective[k] for k in self._order])

        ub_rows: List[Tuple[Dict[VarKey, float], float]] = []
        eq_rows: List[Tuple[Dict[VarKey, float], float]] = []
        for con in self._constraints:
            if con.sense is Sense.LE:
                ub_rows.append((dict(con.coeffs), con.rhs))
            elif con.sense is Sense.GE:
                negated = {k: -v for k, v in con.coeffs.items()}
                ub_rows.append((negated, -con.rhs))
            else:
                eq_rows.append((dict(con.coeffs), con.rhs))

        def to_matrix(
            rows: List[Tuple[Dict[VarKey, float], float]]
        ) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
            if not rows:
                return None, None
            data, row_idx, col_idx, rhs = [], [], [], []
            for r, (coeffs, bound) in enumerate(rows):
                # Row equilibration: physical-model rows mix propagation
                # gains (~1e-12) with big-M constants (~10), which makes
                # HiGHS mis-declare feasible systems infeasible.  Scaling
                # a row by its largest coefficient is an exact
                # reformulation.
                scale = max((abs(c) for c in coeffs.values()), default=0.0)
                if scale <= 0.0:
                    scale = 1.0
                rhs.append(bound / scale)
                for key, coeff in coeffs.items():
                    data.append(coeff / scale)
                    row_idx.append(r)
                    col_idx.append(index[key])
            matrix = sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), len(self._order))
            )
            return matrix, np.array(rhs)

        a_ub, b_ub = to_matrix(ub_rows)
        a_eq, b_eq = to_matrix(eq_rows)
        bounds = [self._bounds[k] for k in self._order]

        # Normalise the objective: drift coefficients can span 12+
        # orders of magnitude (the beta^2-scaled virtual-queue terms),
        # which trips HiGHS's simplex numerics.  Scaling the objective
        # leaves the argmin unchanged; the true value is restored below.
        scale = float(np.abs(cost).max())
        if scale <= 0.0:
            scale = 1.0

        result = None
        for method in ("highs", "highs-ipm"):
            result = linprog(
                c=cost / scale,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method=method,
            )
            if result.status in (0, 2, 3):
                break
        assert result is not None
        if result.status == 2:
            raise InfeasibleError("linear program is infeasible")
        if result.status == 3:
            raise InfeasibleError("linear program is unbounded")
        if not result.success:
            raise SolverError(f"linprog failed: {result.message}")

        values = {key: float(result.x[index[key]]) for key in self._order}
        return LPSolution(objective=float(result.fun) * scale, values=values)

"""The generic sequential-fix (SF) heuristic for binary programs.

The paper's S1 scheduler fixes binary variables one LP-relaxation at a
time (Section IV-C-1): relax all unfixed binaries to ``[0, 1]``, solve,
fix every variable the LP put at 1 (and the single largest fractional
variable if none hit 1), zero out the variables that conflict with each
newly fixed one, and repeat until everything is fixed.  This module
implements that loop generically so it can be unit-tested away from the
scheduling model and reused by other binary subproblems.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.exceptions import InfeasibleError, SolverError
from repro.solvers.linprog import LinearProgram, VarKey

#: Callback building the relaxed LP for the current fixings.  The
#: builder must declare every key in ``binary_keys`` as a variable with
#: bounds [0, 1] and honour the passed fixings (``fix_variable``).
LpBuilder = Callable[[Mapping[VarKey, float]], LinearProgram]

#: Callback yielding the variables that must be zero once ``key`` is 1.
ConflictFn = Callable[[VarKey], Iterable[VarKey]]


def sequential_fix(
    binary_keys: Sequence[VarKey],
    build_lp: LpBuilder,
    conflicts: ConflictFn,
    eps: float = 1e-6,
    max_iterations: Optional[int] = None,
    check_feasibility: bool = False,
) -> Dict[VarKey, int]:
    """Run the SF loop and return a full 0/1 assignment.

    Args:
        binary_keys: all binary variables to be fixed.
        build_lp: relaxed-LP factory honouring current fixings.
        conflicts: conflict sets enforced when a variable is fixed to 1.
        eps: rounding tolerance for "the LP set it to 1" / "to 0".
        max_iterations: safety cap; defaults to ``len(binary_keys) + 1``.
        check_feasibility: speculatively re-solve before committing any
            fix-to-1.  Needed when the LP carries coupling constraints
            beyond the conflict sets (e.g. big-M SINR rows): rounding a
            fractional variable up can then be jointly infeasible with
            earlier fixes, in which case it is fixed to 0 instead (the
            Hou et al. fallback).  Costs one extra LP solve per fix.

    Returns:
        Mapping of every key in ``binary_keys`` to 0 or 1.

    Raises:
        SolverError: if the loop fails to make progress (a symptom of a
            conflict callback that never zeroes anything).
    """
    remaining = set(binary_keys)
    fixed: Dict[VarKey, int] = {}
    if max_iterations is None:
        max_iterations = len(binary_keys) + 1

    def feasible_with(key: VarKey) -> bool:
        trial = dict(fixed)
        trial[key] = 1
        try:
            build_lp(trial).solve()
        except InfeasibleError:
            return False
        return True

    def fix_to_one(key: VarKey) -> bool:
        if check_feasibility and not feasible_with(key):
            fixed[key] = 0
            remaining.discard(key)
            return False
        fixed[key] = 1
        remaining.discard(key)
        for other in conflicts(key):
            if other in remaining:
                fixed[other] = 0
                remaining.discard(other)
        return True

    iterations = 0
    while remaining:
        iterations += 1
        if iterations > max_iterations:
            raise SolverError(
                f"sequential fix exceeded {max_iterations} iterations with "
                f"{len(remaining)} variables unfixed"
            )

        lp = build_lp(dict(fixed))
        missing = [k for k in sorted(remaining, key=repr) if not lp.has_variable(k)]
        if missing:
            raise SolverError(
                f"LP builder omitted unfixed binary variables: {missing[:5]}"
            )
        solution = lp.solve()

        # Deterministic candidate order: by LP value (descending), then
        # by key repr — `remaining` is a set, and ties must not depend
        # on hash iteration order.
        ordered = sorted(
            remaining, key=lambda k: (-solution.values[k], repr(k))
        )
        at_one = [k for k in ordered if solution.values[k] >= 1.0 - eps]
        if at_one:
            # Fix in decreasing LP-value order so conflict propagation
            # from an earlier fix can veto a later, lower-value one.
            for key in at_one:
                if key in remaining:
                    fix_to_one(key)
            continue

        best = ordered[0]
        if solution.values[best] <= eps:
            # The relaxation puts every unfixed variable at zero: with
            # all conflicts already resolved, all-zero is optimal.
            for key in list(remaining):  # noqa: R032 - every key gets the same value 0; dict order of the zeros is not observable downstream
                fixed[key] = 0
            remaining.clear()
            continue

        fix_to_one(best)

    return fixed

"""Physical and unit-conversion constants shared across the library.

All internal computation uses SI units: watts, joules, hertz, seconds,
bits.  The ICDCS'14 paper states several parameters in kWh and minutes;
these helpers convert at the configuration boundary so the rest of the
code never mixes unit systems.
"""

from __future__ import annotations

import math

from repro.units import (
    BitsPerSlot,
    Joules,
    Kbps,
    KilowattHours,
    Seconds,
    WattHours,
    Watts,
)

#: Seconds in one minute (the paper's slot duration is one minute).
SECONDS_PER_MINUTE: float = 60.0

#: Seconds in one hour, used for Wh/kWh conversions.
SECONDS_PER_HOUR: float = 3600.0

#: Joules in one watt-hour.
JOULES_PER_WH: float = 3600.0

#: Joules in one kilowatt-hour.
JOULES_PER_KWH: float = 3.6e6

#: Default thermal-noise power spectral density used by the paper (W/Hz).
PAPER_NOISE_DENSITY_W_PER_HZ: float = 1e-20

#: Default antenna/wavelength constant ``C`` in the propagation model.
PAPER_PROPAGATION_CONSTANT: float = 62.5

#: Default path-loss exponent ``gamma`` used by the paper.
PAPER_PATH_LOSS_EXPONENT: float = 4.0

#: Default SINR decoding threshold ``Gamma`` used by the paper.
PAPER_SINR_THRESHOLD: float = 1.0

#: A tolerance for floating-point feasibility checks throughout the
#: library (queue non-negativity, battery bounds, LP round-off, ...).
FEASIBILITY_EPS: float = 1e-9


def approx_eq(
    a: float,
    b: float,
    rel_tol: float = 1e-9,
    abs_tol: float = FEASIBILITY_EPS,
) -> bool:
    """Tolerant float equality for energy/queue quantities.

    Exact ``==`` on computed floats is forbidden by lint rule R002;
    energy balances and queue backlogs accumulate round-off, so
    comparisons must carry an explicit tolerance.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_zero(x: float, abs_tol: float = FEASIBILITY_EPS) -> bool:
    """Tolerant zero test for energy/queue quantities (see R002)."""
    return abs(x) <= abs_tol


def kwh_to_joules(kwh: KilowattHours) -> Joules:
    """Convert kilowatt-hours to joules."""
    return kwh * JOULES_PER_KWH


def wh_to_joules(wh: WattHours) -> Joules:
    """Convert watt-hours to joules."""
    return wh * JOULES_PER_WH


def joules_to_kwh(joules: Joules) -> KilowattHours:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def joules_to_wh(joules: Joules) -> WattHours:
    """Convert joules to watt-hours."""
    return joules / JOULES_PER_WH


def watts_over_slot_to_joules(watts: Watts, slot_seconds: Seconds) -> Joules:
    """Energy in joules delivered by a constant power over one slot."""
    return watts * slot_seconds


def kbps_to_bits_per_slot(kbps: Kbps, slot_seconds: Seconds) -> BitsPerSlot:
    """Convert a rate in kilobits/second to bits per slot."""
    return kbps * 1e3 * slot_seconds

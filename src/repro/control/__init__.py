"""Control plane: the four per-slot subproblems and their orchestrator."""

from repro.control.decisions import (
    AdmissionDecision,
    EnergyManagementDecision,
    NodeEnergyAllocation,
    RoutingDecision,
    ScheduleDecision,
    SlotDecision,
    SlotObservation,
)
from repro.control.scheduler import LinkScheduler
from repro.control.admission import ResourceAllocator
from repro.control.router import BackpressureRouter
from repro.control.energy_manager import EnergyManager
from repro.control.controller import DriftPlusPenaltyController

__all__ = [
    "AdmissionDecision",
    "EnergyManagementDecision",
    "NodeEnergyAllocation",
    "RoutingDecision",
    "ScheduleDecision",
    "SlotDecision",
    "SlotObservation",
    "LinkScheduler",
    "ResourceAllocator",
    "BackpressureRouter",
    "EnergyManager",
    "DriftPlusPenaltyController",
]

"""S1 — link scheduling (Section IV-C-1).

Minimises ``Psi-hat_1 = -(beta/delta) sum_ij H_ij sum_m c_ij^m a_ij^m dt``
subject to the single-radio constraint (22): each node participates in
at most one transmission per slot, as transmitter or receiver, on one
band.  Three algorithms are provided:

* ``SEQUENTIAL_FIX`` — the paper's LP-rounding heuristic (via the
  generic :func:`repro.solvers.sequential_fix`);
* ``MAX_WEIGHT_MATCHING`` — exact: under constraint (22) alone, S1 is a
  maximum-weight matching over nodes with per-edge best-band weights;
* ``GREEDY`` — sort link-bands by weight, take what fits.

The base weight of a link-band is ``beta * H_ij * service_pkts`` (the
Psi-hat_1 contribution).  When the controller passes per-node energy
prices (energy-aware backpressure, the default), the weight additionally
subtracts the marginal energy cost of the activation —
``price_tx * P_min * dt + price_rx * P_recv * dt`` — restoring the
drift coupling the paper's stage-wise decomposition drops; candidates
whose energy cost exceeds their backlog value are not scheduled at all.

After activation, per-band Foschini–Miljanic power control assigns the
minimal transmit powers meeting ``SINR >= Gamma`` (constraint 24);
links with no feasible power are dropped, realising the "otherwise"
branch of Eq. (1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.axes import AnyArray, LinkBandMat, LinkIds, LinkToNode, LinkVec
from repro.contracts import ContractChecker
from repro.control.decisions import ScheduleDecision, SlotObservation
from repro.core.arraystate import LinkArrayMapping, NodeArrayMapping
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.phy.capacity import max_link_capacity_bps
from repro.phy.interference import big_m_coefficient, max_power_array
from repro.phy.power_control import (
    minimal_power_assignment,
    minimal_power_assignment_vec,
)
from repro.exceptions import SolverError
from repro.solvers.linprog import LinearProgram, Sense
from repro.solvers.sequential_fix import sequential_fix
from repro.types import Link, LinkBand, NodeId, SchedulerKind, Transmission

#: Ignore links whose virtual backlog is below this (the paper's SF
#: pre-step fixes ``a_ij^m = 0`` whenever ``H_ij = 0``).
_H_EPS = 1e-12


class _SchedulerStatic(NamedTuple):
    """Frozen per-topology tables for the vectorized S1 weights.

    Attributes:
        link_tx: ``(L,)`` transmitter index per candidate link.
        link_rx: ``(L,)`` receiver index per candidate link.
        band_member: ``(L, M)`` bool form of the static common-band
            sets ``M_i ∩ M_j``.
        max_power_tx: ``(L,)`` transmitter power cap per link (W).
        recv_power_rx: ``(L,)`` receiver listening power per link (W).
    """

    link_tx: LinkToNode
    link_rx: LinkToNode
    band_member: LinkBandMat
    max_power_tx: LinkVec
    recv_power_rx: LinkVec


class _RadioBudget:
    """Stateful conflict callback for multi-radio sequential fix.

    The SF loop invokes the callback exactly once per variable fixed
    to 1; this tracks per-node radio usage and per-(node, band)
    exclusivity, returning the variables that just became infeasible.
    """

    def __init__(self, keys, radios_of) -> None:
        self._keys = list(keys)
        self._radios_of = radios_of
        self._usage: Dict[NodeId, int] = {}
        self._band_used: set = set()

    def __call__(self, key: LinkBand) -> List[LinkBand]:
        tx, rx, band = key
        for node in (tx, rx):
            self._usage[node] = self._usage.get(node, 0) + 1
            self._band_used.add((node, band))

        exhausted = {
            node
            for node in (tx, rx)
            if self._usage[node] >= self._radios_of(node)
        }
        blocked: List[LinkBand] = []
        for other in self._keys:
            if other == key:
                continue
            otx, orx, oband = other
            if otx in exhausted or orx in exhausted:
                blocked.append(other)
            elif oband == band and (
                (otx, band) in self._band_used or (orx, band) in self._band_used
            ):
                # Constraints (20)/(21): one activity per node per band.
                blocked.append(other)
        return blocked


class LinkScheduler:
    """The S1 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        kind: SchedulerKind = SchedulerKind.SEQUENTIAL_FIX,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._constants = constants
        self._kind = kind
        self._checker = checker
        self._static_cache: Optional[Tuple[Tuple[Link, ...], _SchedulerStatic]] = None
        self._band_order_cache: Optional[
            Tuple[Tuple[Link, ...], Tuple[Tuple[int, ...], ...]]
        ] = None
        self._access_cache: Optional[np.ndarray] = None

    @property
    def kind(self) -> SchedulerKind:
        """The configured scheduling algorithm."""
        return self._kind

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every activation set against Eqs. 20-22 and 24."""
        self._checker = checker

    # ------------------------------------------------------------------
    # Candidate construction
    # ------------------------------------------------------------------

    def _service_pkts(self, band: int, observation: SlotObservation) -> float:
        """Packets/slot a successful transmission on ``band`` carries."""
        params = self._model.params
        bps = max_link_capacity_bps(
            observation.bands.bandwidth(band), params.sinr_threshold
        )
        return bps * params.slot_seconds / params.sessions.packet_size_bits

    def _gains(self, observation: SlotObservation):
        """The slot's pair gains (mobility-aware).

        Returns the slot's dense matrix under mobility, else the
        topology's gain lookup — the materialised matrix view or the
        position-computed view when the sparse topology skipped the
        O(N^2) matrices.  Scalar ``[tx, rx]`` indexing and the
        ``submatrix``/``column`` blocks are bit-identical either way.
        """
        if observation.gains is not None:
            return observation.gains
        return self._model.topology.gains_lookup()

    def _min_tx_power_w(
        self, tx: NodeId, rx: NodeId, band: int, observation: SlotObservation
    ) -> float | None:
        """Zero-interference minimal power for the energy price term."""
        params = self._model.params
        noise = self._model.noise_power_w(observation.bands.bandwidth(band))
        power = (
            params.sinr_threshold * noise / self._gains(observation)[tx, rx]
        )
        if power > self._model.max_power_w[tx]:
            return None
        return power

    def _access_matrix(self) -> np.ndarray:
        """``(N, M)`` bool band-access table from the static sets.

        Cold path: built once per run — the access sets are drawn at
        model construction and never change.
        """
        cached = self._access_cache
        if cached is None:
            spectrum = self._model.spectrum
            cached = np.zeros(
                (self._model.num_nodes, spectrum.num_bands), dtype=bool
            )
            for node, bands in spectrum.access_sets().items():
                for band in bands:
                    cached[node, band] = True
            self._access_cache = cached
        return cached

    def _band_orders(
        self, links: Tuple[Link, ...]
    ) -> Tuple[Tuple[int, ...], ...]:
        """Per-link band ids in the scalar loop's frozenset iteration order.

        Only the dict candidate path (SF / matching selectors) needs the
        insertion order; the array selectors work off the ``(L, M)``
        membership mask, so this O(L) Python table is built lazily and
        never touched by the large-scale GREEDY path.
        """
        cached = self._band_order_cache
        if cached is not None and cached[0] is links:
            return cached[1]
        spectrum = self._model.spectrum
        orders = tuple(
            tuple(spectrum.common_bands(tx, rx)) for tx, rx in links  # noqa: R040 - built once per topology (identity-cached), only for the small-N dict selectors; the array selectors never call this
        )
        self._band_order_cache = (links, orders)
        return orders

    def _scheduler_static(self, links: Tuple[Link, ...]) -> _SchedulerStatic:
        """Per-topology index tables for the vectorized candidate pass.

        Cold path: built once per candidate-link tuple (keyed by
        identity) — radios, power caps, and the static band sets never
        change mid-run.  All tables are per-node arrays fancy-indexed by
        the frozen link endpoints, so construction is O(N + L) numpy
        work with no per-link Python loop.
        """
        cached = self._static_cache
        if cached is not None and cached[0] is links:
            return cached[1]
        topology = self._model.topology
        if topology.candidate_links is links:
            link_tx, link_rx = topology.link_arrays()
        else:
            count = len(links)
            link_tx = np.fromiter(
                (tx for tx, _ in links), dtype=np.intp, count=count
            )
            link_rx = np.fromiter(
                (rx for _, rx in links), dtype=np.intp, count=count
            )
        access = self._access_matrix()
        band_member = access[link_tx] & access[link_rx]
        num_nodes = self._model.num_nodes
        max_power = max_power_array(self._model.max_power_w, num_nodes)
        recv_power = np.fromiter(
            (node.radio.recv_power_w for node in self._model.nodes),
            dtype=float,
            count=num_nodes,
        )
        static = _SchedulerStatic(
            link_tx=link_tx,
            link_rx=link_rx,
            band_member=band_member,
            max_power_tx=max_power[link_tx],
            recv_power_rx=recv_power[link_rx],
        )
        self._static_cache = (links, static)
        return static

    def _candidate_grid(
        self,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        energy_prices: Optional[Mapping[NodeId, float]],
        links: Tuple[Link, ...],
        within: Optional[np.ndarray] = None,
    ) -> Optional[
        Tuple[
            np.ndarray,
            Optional[Sequence[Tuple[int, ...]]],
            np.ndarray,
            np.ndarray,
        ]
    ]:
        """Net candidate weights as ``(active links, bands)`` arrays.

        Returns ``(active, orders, keep, weight)`` — the active link
        positions, their per-link band iteration orders (None in the
        static-band case, where only the dict path needs them and
        resolves them lazily via :meth:`_band_orders`), the survivor
        mask, and the weight matrix — or ``None`` when no link clears
        the backlog floor.  The elementwise float64 chain mirrors the
        scalar candidate loop's operation order bit for bit.

        ``within`` restricts the scan to a subset of frozen link
        positions (the sharded loop passes each shard's owned links);
        every weight is an elementwise function of its own row, so the
        restricted grid is the exact row-slice of the full one.
        """
        beta = self._constants.beta
        params = self._model.params
        dt = params.slot_seconds
        static = self._scheduler_static(links)
        h_arr = h_backlogs.values_array
        if within is None:
            active = np.flatnonzero(h_arr > _H_EPS)
        else:
            active = within[h_arr[within] > _H_EPS]
        if active.size == 0:
            return None

        num_bands = static.band_member.shape[1]
        service = np.fromiter(
            (self._service_pkts(band, observation) for band in range(num_bands)),
            dtype=float,
            count=num_bands,
        )
        orders: Optional[Sequence[Tuple[int, ...]]]
        if observation.band_access is not None:
            member = np.zeros((active.size, num_bands), dtype=bool)
            dyn_orders: List[Tuple[int, ...]] = []
            for i, pos in enumerate(active):
                tx, rx = links[pos]
                order = tuple(
                    observation.band_access[tx] & observation.band_access[rx]
                )
                dyn_orders.append(order)
                for band in order:
                    member[i, band] = True
            orders = dyn_orders
        else:
            member = static.band_member[active]
            orders = None

        keep = member & (service[None, :] > 0.0)
        weight = (beta * h_arr[active])[:, None] * service[None, :]
        if energy_prices is not None:
            noise = np.fromiter(
                (
                    self._model.noise_power_w(observation.bands.bandwidth(band))
                    for band in range(num_bands)
                ),
                dtype=float,
                count=num_bands,
            )
            tx_idx = static.link_tx[active]
            rx_idx = static.link_rx[active]
            if observation.gains is not None:
                g_link = np.asarray(observation.gains)[tx_idx, rx_idx]
            else:
                # The frozen per-link gain array is bitwise equal to
                # ``gains[link_tx, link_rx]`` in every topology mode,
                # so no (N, N) matrix read is needed.
                g_link = self._model.topology.link_gain_array()[active]
            power = (params.sinr_threshold * noise)[None, :] / g_link[:, None]
            keep &= power <= static.max_power_tx[active][:, None]
            if isinstance(energy_prices, np.ndarray):
                price = energy_prices
            else:
                price = np.fromiter(
                    (
                        energy_prices.get(node, 0.0)
                        for node in range(self._model.num_nodes)  # noqa: R040 - reference dict-price path; the array path passes the (N,) price vector directly
                    ),
                    dtype=float,
                    count=self._model.num_nodes,
                )
            weight = weight - (price[tx_idx][:, None] * power) * dt
            weight = weight - ((price[rx_idx] * static.recv_power_rx[active]) * dt)[
                :, None
            ]
        keep &= weight > 0.0
        return active, orders, keep, weight

    def _candidates_vectorized(
        self,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        energy_prices: Optional[Mapping[NodeId, float]],
        links: Tuple[Link, ...],
    ) -> Dict[LinkBand, float]:
        """Array fast path of :meth:`_candidates` over the link index.

        Computes the net weights via :meth:`_candidate_grid`, then
        writes only the survivors to the candidate dict in the scalar
        loop's (link, band) insertion order — so every downstream
        selector (including the insertion-order-sensitive matching
        tie-break) sees an identical input.
        """
        weights: Dict[LinkBand, float] = {}
        grid = self._candidate_grid(observation, h_backlogs, energy_prices, links)
        if grid is None:
            return weights
        active, orders, keep, weight = grid
        static_orders = self._band_orders(links) if orders is None else None
        for i, pos in enumerate(active):
            tx, rx = links[pos]
            keep_row = keep[i]
            weight_row = weight[i]
            order = orders[i] if orders is not None else static_orders[pos]
            for band in order:
                if keep_row[band]:
                    weights[(tx, rx, band)] = weight_row[band]
        return weights

    def _candidate_positions(
        self,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        energy_prices: Optional[Mapping[NodeId, float]],
        links: Tuple[Link, ...],
        within: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Survivor candidates as ``(link positions, bands, weights)``.

        The greedy selector re-sorts candidates globally, so unlike the
        dict path no per-candidate insertion order needs preserving —
        the survivors come straight off the ``keep`` mask with no
        Python loop.  ``within`` restricts the scan to a subset of link
        positions (see :meth:`_candidate_grid`).
        """
        grid = self._candidate_grid(
            observation, h_backlogs, energy_prices, links, within=within
        )
        if grid is None:
            empty_pos = np.zeros(0, dtype=np.intp)
            return empty_pos, np.zeros(0, dtype=np.intp), np.zeros(0)
        active, _, keep, weight = grid
        rows, bands = np.nonzero(keep)
        return active[rows], bands, weight[rows, bands]

    def candidate_slice(
        self,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        energy_prices: Optional[Mapping[NodeId, float]] = None,
        within: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Public shard entry: survivor candidates over a link subset.

        The sharded controller computes each shard's candidates with
        ``within=shard.owned_link_pos`` and merges the slices through
        :meth:`schedule_from_candidates`; on the full index
        (``within=None``) this is exactly the monolithic candidate scan.
        """
        links = self._model.topology.candidate_links
        return self._candidate_positions(
            observation, h_backlogs, energy_prices, links, within=within
        )

    def _candidates(
        self,
        observation: SlotObservation,
        h_backlogs: Mapping[Link, float],
        energy_prices: Optional[Mapping[NodeId, float]] = None,
    ) -> Dict[LinkBand, float]:
        """Net weight per candidate link-band (module docstring)."""
        links = self._model.topology.candidate_links
        if isinstance(h_backlogs, LinkArrayMapping) and h_backlogs.links is links:
            return self._candidates_vectorized(
                observation, h_backlogs, energy_prices, links
            )
        if isinstance(energy_prices, np.ndarray):
            energy_prices = NodeArrayMapping(energy_prices)
        beta = self._constants.beta
        dt = self._model.params.slot_seconds
        weights: Dict[LinkBand, float] = {}
        # Per-slot service memo: every link-band on the same band
        # carries the same packet rate, so compute it once per band.
        service_by_band: Dict[int, float] = {}
        for tx, rx, backlog in self._active_links(h_backlogs):
            for band in observation.common_bands(self._model, tx, rx):
                service = service_by_band.get(band)
                if service is None:
                    service = self._service_pkts(band, observation)
                    service_by_band[band] = service
                if service <= 0:
                    continue
                weight = beta * backlog * service
                if energy_prices is not None:
                    power = self._min_tx_power_w(tx, rx, band, observation)
                    if power is None:
                        continue  # unreachable even without interference
                    recv_power = self._model.nodes[rx].radio.recv_power_w
                    weight -= energy_prices.get(tx, 0.0) * power * dt
                    weight -= energy_prices.get(rx, 0.0) * recv_power * dt
                if weight > 0:
                    weights[(tx, rx, band)] = weight
        return weights

    def _active_links(
        self, h_backlogs: Mapping[Link, float]
    ) -> Iterable[Tuple[NodeId, NodeId, float]]:
        """Candidate links with ``H_ij`` above the SF pre-step floor.

        When ``h_backlogs`` is an array view over the frozen link index
        the floor test runs as one vectorized comparison; the surviving
        links come back in candidate order either way, and elementwise
        float64 values are bit-identical to the scalar reads.
        """
        links = self._model.topology.candidate_links
        if isinstance(h_backlogs, LinkArrayMapping) and h_backlogs.links is links:
            h_arr = h_backlogs.values_array
            for pos in np.flatnonzero(h_arr > _H_EPS):
                tx, rx = links[pos]
                yield tx, rx, h_arr[pos]
            return
        for tx, rx in links:  # noqa: R040 - reference object path used by the SF/matching schedulers; the GREEDY array path uses _candidate_positions
            backlog = h_backlogs.get((tx, rx), 0.0)
            if backlog > _H_EPS:
                yield tx, rx, backlog

    # ------------------------------------------------------------------
    # Activation algorithms
    # ------------------------------------------------------------------

    def _radios(self, node: NodeId) -> int:
        """Radio budget of ``node`` (1 in the paper's model)."""
        return self._model.nodes[node].radio.num_radios

    def _conflicting(
        self, key: LinkBand, others: Iterable[LinkBand]
    ) -> List[LinkBand]:
        """Link-bands excluded once ``key`` is active (single radio).

        The budget-aware generalisation lives in :class:`_RadioBudget`;
        this is the fast path when every involved node has one radio.
        """
        tx, rx, _ = key
        busy = {tx, rx}
        return [
            other
            for other in others
            if other != key and (other[0] in busy or other[1] in busy)
        ]

    def _make_conflicts(self, keys: List[LinkBand]):
        """The conflict callback for the SF loop, radio-budget aware."""
        if all(
            self._radios(node) == 1
            for key in keys
            for node in (key[0], key[1])
        ):
            return lambda key: self._conflicting(key, keys)
        return _RadioBudget(keys, self._radios)

    def _radio_constraints(
        self, lp: LinearProgram, keys: List[LinkBand]
    ) -> None:
        """Constraints (20)-(22) generalised to radio budgets.

        Per node: total activity <= num_radios; per (node, band):
        activity <= 1 (constraints (20)/(21), which the budget row only
        implies in the single-radio case).
        """
        per_node: Dict[NodeId, List[LinkBand]] = {}
        per_node_band: Dict[Tuple[NodeId, int], List[LinkBand]] = {}
        for tx, rx, band in keys:
            key = (tx, rx, band)
            for node in (tx, rx):
                per_node.setdefault(node, []).append(key)
                per_node_band.setdefault((node, band), []).append(key)
        for node, involved in per_node.items():
            lp.add_constraint(
                {key: 1.0 for key in involved},
                Sense.LE,
                float(self._radios(node)),
                name=f"radios[{node}]",
            )
        for (node, band), involved in per_node_band.items():
            if self._radios(node) > 1 and len(involved) > 1:
                lp.add_constraint(
                    {key: 1.0 for key in involved},
                    Sense.LE,
                    1.0,
                    name=f"band_excl[{node},{band}]",
                )

    def _select_sequential_fix(
        self, weights: Dict[LinkBand, float]
    ) -> List[LinkBand]:
        keys = sorted(weights)

        def build_lp(fixed: Mapping[LinkBand, float]) -> LinearProgram:
            lp = LinearProgram()
            for key in keys:
                # Minimisation form of Psi-hat_1: negative weights.
                lp.add_variable(key, objective=-weights[key], lower=0.0, upper=1.0)
            for key, value in fixed.items():
                lp.fix_variable(key, float(value))
            self._radio_constraints(lp, keys)
            return lp

        fixed = sequential_fix(
            binary_keys=keys,
            build_lp=build_lp,
            conflicts=self._make_conflicts(keys),
        )
        return [key for key, value in fixed.items() if value == 1]

    def _select_sequential_fix_sinr(
        self,
        weights: Dict[LinkBand, float],
        observation: SlotObservation,
    ) -> List[LinkBand]:
        """SF with the big-M SINR constraints (24) in the relaxation.

        Adds a power variable per candidate link-band (linearising the
        ``P * a`` product with ``P <= P_max * a``) and the constraint

            g_ij P_ijm + M_ijm (1 - a_ijm)
                >= Gamma (eta W_m + sum_{(k,v) != (i,j)} g_kj P_kvm),

        so the LP already prices co-band interference when choosing
        which variable to fix — fewer selections die in power control.
        """
        keys = sorted(weights)
        gains = self._gains(observation)
        params = self._model.params
        by_band: Dict[int, List[LinkBand]] = {}
        for key in keys:
            by_band.setdefault(key[2], []).append(key)

        def build_lp(fixed: Mapping[LinkBand, float]) -> LinearProgram:
            lp = LinearProgram()
            for key in keys:
                lp.add_variable(key, objective=-weights[key], lower=0.0, upper=1.0)
            for key in keys:
                tx = key[0]
                lp.add_variable(
                    ("P", key), lower=0.0, upper=self._model.max_power_w[tx]
                )
            for key, value in fixed.items():
                lp.fix_variable(key, float(value))
                if value == 0:
                    lp.fix_variable(("P", key), 0.0)

            self._radio_constraints(lp, keys)

            for band, members in by_band.items():
                noise = self._model.noise_power_w(
                    observation.bands.bandwidth(band)
                )
                for key in members:
                    tx, rx, _ = key
                    # Linearise P * a: power flows only when scheduled.
                    lp.add_constraint(
                        {
                            ("P", key): 1.0,
                            key: -self._model.max_power_w[tx],
                        },
                        Sense.LE,
                        0.0,
                        name=f"pow_link[{key}]",
                    )
                    big_m = big_m_coefficient(
                        gains,
                        tx,
                        rx,
                        noise,
                        params.sinr_threshold,
                        self._model.max_power_w,
                    )
                    # g_ij P + M (1 - a) - Gamma sum g_kj P_other
                    #   >= Gamma eta W.
                    coeffs: Dict = {
                        ("P", key): gains[tx, rx],
                        key: -big_m,
                    }
                    for other in members:
                        # Links sharing a node with (tx, rx) are already
                        # excluded by the single-radio conflicts in the
                        # binary solution; pricing their (fractional)
                        # self-interference here would exceed the big-M
                        # envelope, which only covers k != i, j.
                        if other == key or other[0] in (tx, rx):
                            continue
                        coeffs[("P", other)] = (
                            -params.sinr_threshold * gains[other[0], rx]
                        )
                    lp.add_constraint(
                        coeffs,
                        Sense.GE,
                        params.sinr_threshold * noise - big_m,
                        name=f"sinr[{key}]",
                    )
            return lp

        fixed = sequential_fix(
            binary_keys=keys,
            build_lp=build_lp,
            conflicts=self._make_conflicts(keys),
            check_feasibility=True,
        )
        return [key for key, value in fixed.items() if value == 1]

    def _select_matching(self, weights: Dict[LinkBand, float]) -> List[LinkBand]:
        """Exact S1 optimum via maximum-weight matching.

        Constraint (22) makes every node a unit-capacity resource, so
        the activation problem is a matching on the undirected node
        graph; each undirected edge takes its best direction and band.
        Only exact for single-radio nodes — with budgets the problem is
        a degree-constrained subgraph, which this solver does not
        handle.
        """
        involved = {node for key in weights for node in (key[0], key[1])}
        if any(self._radios(node) > 1 for node in involved):
            raise SolverError(
                "MAX_WEIGHT_MATCHING is exact only for single-radio nodes; "
                "use SEQUENTIAL_FIX or GREEDY with num_radios > 1"
            )
        best: Dict[Tuple[NodeId, NodeId], Tuple[float, LinkBand]] = {}
        for (tx, rx, band), weight in weights.items():
            edge = (min(tx, rx), max(tx, rx))
            if edge not in best or weight > best[edge][0]:
                best[edge] = (weight, (tx, rx, band))

        graph = nx.Graph()
        for (u, v), (weight, _) in best.items():
            graph.add_edge(u, v, weight=weight)
        matching = nx.max_weight_matching(graph, maxcardinality=False)
        return [best[(min(u, v), max(u, v))][1] for u, v in matching]

    def _select_greedy(self, weights: Dict[LinkBand, float]) -> List[LinkBand]:
        usage: Dict[NodeId, int] = {}
        band_used: set = set()
        chosen: List[LinkBand] = []
        # Sort by weight descending, tie-broken by key for determinism.
        for key in sorted(weights, key=lambda k: (-weights[k], k)):
            tx, rx, band = key
            if any(
                usage.get(node, 0) >= self._radios(node) for node in (tx, rx)
            ):
                continue
            if (tx, band) in band_used or (rx, band) in band_used:
                continue  # constraints (20)/(21)
            chosen.append(key)
            for node in (tx, rx):
                usage[node] = usage.get(node, 0) + 1
                band_used.add((node, band))
        return chosen

    def _radios_list(self) -> List[int]:
        """Per-node radio budgets, cached (cold path: built once)."""
        cached = getattr(self, "_radios_cache", None)
        if cached is None:
            cached = [node.radio.num_radios for node in self._model.nodes]
            self._radios_cache = cached
        return cached

    def _select_greedy_arrays(
        self,
        link_pos: LinkIds,
        bands: AnyArray,
        weights: AnyArray,
        links: Tuple[Link, ...],
    ) -> Tuple[List[int], List[int]]:
        """Array fast path of :meth:`_select_greedy`.

        ``np.lexsort`` over ``(-weight, tx, rx, band)`` reproduces the
        scalar ``sorted(weights, key=lambda k: (-weights[k], k))``
        order exactly (keys are unique, so ties resolve on the integer
        key columns); the conflict scan then replays the same
        usage/band-exclusivity bookkeeping over plain Python ints.

        Returns the chosen candidates as parallel ``(link position,
        band)`` lists, in selection (descending-weight) order.
        """
        static = self._scheduler_static(links)
        tx_arr = static.link_tx[link_pos]
        rx_arr = static.link_rx[link_pos]
        order = np.lexsort((bands, rx_arr, tx_arr, -weights))
        tx_l = tx_arr[order].tolist()
        rx_l = rx_arr[order].tolist()
        band_l = bands[order].tolist()
        pos_l = link_pos[order].tolist()

        radios = self._radios_list()
        usage = [0] * self._model.num_nodes
        band_used: set = set()
        chosen_pos: List[int] = []
        chosen_band: List[int] = []
        for i in range(len(pos_l)):
            tx = tx_l[i]
            rx = rx_l[i]
            if usage[tx] >= radios[tx] or usage[rx] >= radios[rx]:
                continue
            band = band_l[i]
            if (tx, band) in band_used or (rx, band) in band_used:
                continue  # constraints (20)/(21)
            chosen_pos.append(pos_l[i])
            chosen_band.append(band)
            usage[tx] += 1
            usage[rx] += 1
            band_used.add((tx, band))
            band_used.add((rx, band))
        return chosen_pos, chosen_band

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def schedule(
        self,
        observation: SlotObservation,
        h_backlogs: Mapping[Link, float],
        forbidden_links: Optional[Iterable[Link]] = None,
        energy_prices: Optional[Mapping[NodeId, float]] = None,
    ) -> ScheduleDecision:
        """Solve S1 for one slot.

        Args:
            observation: the slot's realised random state.
            h_backlogs: current ``H_ij(t)`` per candidate link.
            forbidden_links: links excluded up front (used by the
                curtailment re-run and the one-hop baselines).
            energy_prices: optional per-node marginal energy prices for
                energy-aware weights; None recovers the paper's S1.

        Returns:
            The activation set with minimal feasible powers and the
            per-link realised service in packets.
        """
        links = self._model.topology.candidate_links
        if (
            self._kind is SchedulerKind.GREEDY
            and isinstance(h_backlogs, LinkArrayMapping)
            and h_backlogs.links is links
        ):
            return self._schedule_greedy_arrays(
                observation, h_backlogs, forbidden_links, energy_prices, links
            )
        weights = self._candidates(observation, h_backlogs, energy_prices)
        if forbidden_links:
            banned = set(forbidden_links)
            weights = {
                key: w for key, w in weights.items() if (key[0], key[1]) not in banned
            }
        if not weights:
            return ScheduleDecision()

        if self._kind is SchedulerKind.SEQUENTIAL_FIX:
            selected = self._select_sequential_fix(weights)
        elif self._kind is SchedulerKind.SEQUENTIAL_FIX_SINR:
            selected = self._select_sequential_fix_sinr(weights, observation)
        elif self._kind is SchedulerKind.MAX_WEIGHT_MATCHING:
            selected = self._select_matching(weights)
        else:
            selected = self._select_greedy(weights)

        decision = self._power_control(selected, observation, h_backlogs)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_schedule(
                self._model, observation, decision, observation.slot
            )
        return decision

    def _schedule_greedy_arrays(
        self,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        forbidden_links: Optional[Iterable[Link]],
        energy_prices: Optional[Mapping[NodeId, float]],
        links: Tuple[Link, ...],
    ) -> ScheduleDecision:
        """Matrix S1 for the GREEDY selector over the frozen link index.

        Candidate weights, selection, and per-band Foschini–Miljanic
        power control all run on ``(L,)``/``(L, M)`` arrays; the
        decision (activation set, powers, service, drops) is
        bit-identical to the dict path on the same slot.
        """
        link_pos, bands, weights = self._candidate_positions(
            observation, h_backlogs, energy_prices, links
        )
        return self.schedule_from_candidates(
            link_pos, bands, weights, observation, h_backlogs, forbidden_links, links
        )

    def schedule_from_candidates(
        self,
        link_pos: AnyArray,
        bands: AnyArray,
        weights: AnyArray,
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        forbidden_links: Optional[Iterable[Link]],
        links: Tuple[Link, ...],
    ) -> ScheduleDecision:
        """The selection + power-control tail of the GREEDY array path.

        Accepts precomputed candidate ``(link position, band, weight)``
        triples in **any** order: the greedy selector lexsorts them over
        unique ``(weight, tx, rx, band)`` keys, so any concatenation of
        per-shard candidate slices produces the same decision as the
        monolithic scan.  The sharded controller calls this directly as
        its S1 merge point (interference coordination is global — the
        per-band power solve couples all co-band links).
        """
        if forbidden_links:
            banned = set(forbidden_links)
            if banned:
                allowed = np.fromiter(
                    (links[pos] not in banned for pos in link_pos),
                    dtype=bool,
                    count=link_pos.shape[0],
                )
                link_pos = link_pos[allowed]
                bands = bands[allowed]
                weights = weights[allowed]
        if link_pos.size == 0:
            return ScheduleDecision()
        chosen_pos, chosen_band = self._select_greedy_arrays(
            link_pos, bands, weights, links
        )
        decision = self._power_control_vectorized(
            chosen_pos, chosen_band, observation, h_backlogs, links
        )
        if self._checker is not None and self._checker.enabled:
            self._checker.check_schedule(
                self._model, observation, decision, observation.slot
            )
        return decision

    def _power_control_vectorized(
        self,
        chosen_pos: List[int],
        chosen_band: List[int],
        observation: SlotObservation,
        h_backlogs: LinkArrayMapping,
        links: Tuple[Link, ...],
    ) -> ScheduleDecision:
        """Array fast path of :meth:`_power_control`.

        Per band, one :func:`minimal_power_assignment_vec` call replaces
        the per-pair gain-matrix Python loops; priorities come straight
        off the ``H`` array.
        """
        decision = ScheduleDecision()
        static = self._scheduler_static(links)
        h_arr = h_backlogs.values_array
        by_band: Dict[int, List[int]] = {}
        for pos, band in zip(chosen_pos, chosen_band):
            by_band.setdefault(band, []).append(pos)

        # The dense matrix under mobility, else the topology's pair-gain
        # lookup; minimal_power_assignment_vec accepts both and produces
        # bit-identical solves.
        gains = self._gains(observation)
        for band, positions in sorted(by_band.items()):
            noise = self._model.noise_power_w(observation.bands.bandwidth(band))
            idx = np.asarray(positions, dtype=np.intp)
            kept, powers, dropped = minimal_power_assignment_vec(
                static.link_tx[idx],
                static.link_rx[idx],
                gains,
                noise,
                self._model.params.sinr_threshold,
                static.max_power_tx[idx],
                h_arr[idx],
            )
            service = self._service_pkts(band, observation)
            for j, power in zip(kept.tolist(), powers.tolist()):
                link = links[positions[j]]
                decision.transmissions.append(
                    Transmission(tx=link[0], rx=link[1], band=band, power_w=power)
                )
                decision.link_service_pkts[link] = (
                    decision.link_service_pkts.get(link, 0.0) + service
                )
            for j in dropped:
                link = links[positions[j]]
                decision.dropped.append((link[0], link[1], band))
        return decision

    def _power_control(
        self,
        selected: List[LinkBand],
        observation: SlotObservation,
        h_backlogs: Mapping[Link, float],
    ) -> ScheduleDecision:
        """Assign minimal powers per band and drop infeasible links."""
        decision = ScheduleDecision()
        by_band: Dict[int, List[Link]] = {}
        for tx, rx, band in selected:
            by_band.setdefault(band, []).append((tx, rx))

        for band, links in sorted(by_band.items()):
            noise = self._model.noise_power_w(observation.bands.bandwidth(band))
            result = minimal_power_assignment(
                links=links,
                gains=self._gains(observation),
                noise_power_w=noise,
                sinr_threshold=self._model.params.sinr_threshold,
                max_power_w=self._model.max_power_w,
                priority={link: h_backlogs.get(link, 0.0) for link in links},  # noqa: R040 - reference object path; the array path passes the (L,) backlog vector to minimal_power_assignment_vec
            )
            service = self._service_pkts(band, observation)
            for link, power in result.powers.items():  # noqa: R006 - decision-sized LP output, not network-scaled state
                decision.transmissions.append(
                    Transmission(tx=link[0], rx=link[1], band=band, power_w=power)
                )
                decision.link_service_pkts[link] = (
                    decision.link_service_pkts.get(link, 0.0) + service
                )
            for link in result.dropped:
                decision.dropped.append((link[0], link[1], band))
        return decision

"""Decision and observation dataclasses exchanged by the control plane.

One slot of the online algorithm (Section IV-C) is: observe the random
state (:class:`SlotObservation` — the realised ``W_m(t)``, ``R_i(t)``
and ``omega_i(t)``), solve S1-S4, and emit a :class:`SlotDecision` that
the simulator applies to the queues and batteries.  The fields mirror
the paper's decision variables: ``a_ij^m`` / ``p_ij^m`` (Eqs. 20-24),
``k_s`` admission splits (Eq. 19), ``l_ij^s`` routing rates (Eq. 25),
and the per-node energy allocation of Eqs. 2-3 and 9-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.network.spectrum import BandState
from repro.types import Link, LinkBand, NodeId, SessionId, Transmission

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.model import NetworkModel


@dataclass(frozen=True)
class SlotObservation:
    """The realised random state at the start of a slot.

    Attributes:
        slot: slot index ``t``.
        bands: realised bandwidths ``W_m(t)``.
        renewable_j: harvested energy ``R_i(t)`` per node (J).
        grid_connected: realised ``omega_i(t)`` per node.
        gains: current propagation-gain matrix when mobility is
            enabled; None means the static topology gains apply.
        band_access: per-node accessible bands this slot when dynamic
            availability is enabled; None means the static ``M_i``
            sets apply.
    """

    slot: int
    bands: BandState
    renewable_j: Mapping[NodeId, float]
    grid_connected: Mapping[NodeId, bool]
    gains: Optional[np.ndarray] = None
    band_access: Optional[Mapping[NodeId, frozenset]] = None

    def common_bands(
        self, model: "NetworkModel", tx: NodeId, rx: NodeId
    ) -> frozenset:
        """``M_i(t) ∩ M_j(t)``: usable bands on link ``(tx, rx)`` now."""
        if self.band_access is not None:
            return self.band_access[tx] & self.band_access[rx]
        return model.spectrum.common_bands(tx, rx)


@dataclass
class ScheduleDecision:
    """S1 output: activated link-bands, powers, and service rates.

    Attributes:
        transmissions: scheduled transmissions with assigned powers.
        link_service_pkts: realised per-link service
            ``(1/delta) sum_m c_ij^m a_ij^m delta_t`` (packets).
        dropped: link-bands selected by the scheduler but dropped by
            power control (no feasible SINR) or energy curtailment.
    """

    transmissions: List[Transmission] = field(default_factory=list)
    link_service_pkts: Dict[Link, float] = field(default_factory=dict)
    dropped: List[LinkBand] = field(default_factory=list)

    def service_pkts(self, link: Link) -> float:
        """Service offered to ``link`` this slot (packets)."""
        return self.link_service_pkts.get(link, 0.0)


@dataclass(frozen=True)
class AdmissionDecision:
    """S2 output: per-session source base station and admitted packets.

    The integral algorithm admits at a single source (constraint 19);
    the relaxed LP bound may split admission across base stations, so
    ``split`` optionally carries per-source fractional amounts.
    """

    sources: Mapping[SessionId, NodeId]
    admitted: Mapping[SessionId, float]
    split: Mapping[SessionId, Tuple[Tuple[NodeId, float], ...]] = field(
        default_factory=dict
    )

    def as_queue_arrivals(
        self,
    ) -> Dict[SessionId, List[Tuple[NodeId, float]]]:
        """Per-session ``(source, packets)`` arrival lists."""
        arrivals: Dict[SessionId, List[Tuple[NodeId, float]]] = {}
        for s in self.sources:
            if s in self.split:
                arrivals[s] = [(b, float(k)) for b, k in self.split[s]]
            else:
                arrivals[s] = [(self.sources[s], float(self.admitted[s]))]
        return arrivals

    def total_admitted(self) -> float:
        """Network-wide admitted packets ``sum_s k_s`` this slot."""
        return float(sum(self.admitted.values()))


@dataclass(frozen=True)
class RoutingDecision:
    """S3 output: per-link per-session packet rates ``l_ij^s(t)``."""

    rates: Mapping[Tuple[NodeId, NodeId, SessionId], float]

    def link_totals(self) -> Dict[Link, float]:
        """``sum_s l_ij^s`` per link — the virtual-queue arrivals."""
        totals: Dict[Link, float] = {}
        for (tx, rx, _), rate in self.rates.items():
            totals[(tx, rx)] = totals.get((tx, rx), 0.0) + rate
        return totals


@dataclass(frozen=True)
class NodeEnergyAllocation:
    """S4 output for one node (all joules).

    Attributes:
        renewable_serve_j: ``r_i`` — renewable energy serving demand.
        renewable_charge_j: ``c^r_i`` — renewable energy charging.
        grid_serve_j: ``g_i`` — grid energy serving demand.
        grid_charge_j: ``c^g_i`` — grid energy charging.
        discharge_j: ``d_i`` — battery discharge serving demand.
        spill_j: harvested renewable energy left unused (our curtailment
            extension of Eq. (3); see DESIGN.md).
    """

    renewable_serve_j: float = 0.0
    renewable_charge_j: float = 0.0
    grid_serve_j: float = 0.0
    grid_charge_j: float = 0.0
    discharge_j: float = 0.0
    spill_j: float = 0.0

    @property
    def charge_j(self) -> float:
        """Total charging ``c_i = c^r_i + c^g_i``."""
        return self.renewable_charge_j + self.grid_charge_j

    @property
    def grid_draw_j(self) -> float:
        """Total grid draw ``g_i + c^g_i`` (constraint 14)."""
        return self.grid_serve_j + self.grid_charge_j

    @property
    def demand_served_j(self) -> float:
        """Energy delivered to the node's demand this slot."""
        return self.renewable_serve_j + self.grid_serve_j + self.discharge_j


@dataclass(frozen=True)
class EnergyManagementDecision:
    """S4 output: all node allocations plus the provider-level totals.

    Attributes:
        allocations: per-node energy splits.
        bs_grid_draw_j: ``P(t)`` — total base-station grid draw (J).
        cost: the slot's generation cost ``f(P(t))``.
    """

    allocations: Mapping[NodeId, NodeEnergyAllocation]
    bs_grid_draw_j: float
    cost: float


@dataclass
class SlotDecision:
    """Everything the controller decided for one slot."""

    schedule: ScheduleDecision
    admission: AdmissionDecision
    routing: RoutingDecision
    energy: EnergyManagementDecision
    #: Link-bands removed by the energy-feasibility curtailment pass.
    curtailed: List[LinkBand] = field(default_factory=list)

"""S2 — resource allocation (Section IV-C-2).

Minimises ``Psi-hat_2 = sum_s sum_b (Q_b^s - lambda V) k_s 1[b = s_s]``
subject to the single-source constraint (19).  The paper's rule: pick
the base station with the smallest backlog ``Q_b^s`` as the session's
source (ties broken uniformly at random), then admit

    k_s(t) = K_max  if  Q_{s_s}^s(t) - lambda V < 0,   else 0.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.contracts import ContractChecker
from repro.control.decisions import AdmissionDecision
from repro.model import NetworkModel
from repro.types import NodeId, SessionId

#: Signature for reading a data-queue backlog ``Q_i^s(t)``.
BacklogFn = Callable[[NodeId, SessionId], float]


class ResourceAllocator:
    """The S2 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        rng: np.random.Generator,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._rng = rng
        self._threshold = model.params.admission_lambda * model.params.control_v
        self._checker = checker

    @property
    def admission_threshold(self) -> float:
        """The backlog threshold ``lambda * V``."""
        return self._threshold

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every admission decision against Eq. 19."""
        self._checker = checker

    def allocate(
        self, backlog: BacklogFn, slot: Optional[int] = None
    ) -> AdmissionDecision:
        """Solve S2 for one slot.

        Args:
            backlog: accessor for the current ``Q_i^s(t)``.
            slot: slot index, carried into contract diagnostics.

        Returns:
            Per-session source base stations and admitted packet counts.
        """
        sources: Dict[SessionId, NodeId] = {}
        admitted: Dict[SessionId, int] = {}
        bs_ids = self._model.bs_ids
        for session in self._model.sessions:  # noqa: R040 - S2 is inherently per-session: each iteration is a scalar token-bucket decision with rng draws, not an axis-wide kernel
            backlogs = {bs: backlog(bs, session.session_id) for bs in bs_ids}
            smallest = min(backlogs.values())
            tied = [bs for bs, value in backlogs.items() if value == smallest]
            source = tied[0] if len(tied) == 1 else int(self._rng.choice(tied))
            sources[session.session_id] = source
            if backlogs[source] - self._threshold < 0:
                admitted[session.session_id] = session.k_max
            else:
                admitted[session.session_id] = 0
        decision = AdmissionDecision(sources=sources, admitted=admitted)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_admission(self._model, decision, slot)
        return decision

"""The drift-plus-penalty controller orchestrating S1-S4 per slot.

Order of operations within a slot (Section IV-C):

1. **S1** link scheduling from the current ``H_ij(t)``;
2. **energy-feasibility curtailment** (our documented extension): a
   node whose slot demand would exceed its maximum supply — renewable
   plus grid (if connected) plus battery discharge headroom — sheds
   its scheduled transmissions in increasing ``H`` order; base demand
   that still cannot be met is recorded as a deficit and shed;
3. **S2** source selection and admission control;
4. **S3** backpressure routing;
5. **S4** energy management over the realised demands.

The controller is pure decision logic: it reads the
:class:`~repro.state.NetworkState` but never mutates it — the
simulator applies the returned :class:`SlotDecision`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set, Union

import numpy as np

from repro.axes import NodeJoules
from repro.contracts import ContractChecker
from repro.control.admission import ResourceAllocator
from repro.control.decisions import (
    ScheduleDecision,
    SlotDecision,
    SlotObservation,
)
from repro.control.energy_manager import (
    EnergyManager,
    NodeEnergyBatch,
    NodeEnergyInputs,
)
from repro.control.router import BackpressureRouter, RouterMode
from repro.control.scheduler import LinkScheduler
from repro.core.arraystate import NodeArrayMapping
from repro.core.lyapunov import LyapunovConstants
from repro.energy.consumption import all_node_demands_array, all_node_demands_j
from repro.model import NetworkModel
from repro.types import (
    EnergySolverKind,
    Link,
    NodeId,
    NodeKind,
    SchedulerKind,
    Transmission,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see state.py)
    from repro.state import NetworkState

#: Numerical slack for supply/demand comparisons (J).
_ENERGY_TOL = 1e-6


class DriftPlusPenaltyController:
    """Online finite-queue-aware energy cost minimisation (P3)."""

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
        scheduler_kind: SchedulerKind = SchedulerKind.SEQUENTIAL_FIX,
        energy_solver: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        router_mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._constants = constants
        self.scheduler = LinkScheduler(model, constants, kind=scheduler_kind)
        self.allocator = ResourceAllocator(model, rng)
        self.router = BackpressureRouter(
            model, constants, rng, mode=router_mode
        )
        self.energy_manager = EnergyManager(model, kind=energy_solver)
        self._checker: Optional[ContractChecker] = None
        if checker is not None:
            self.attach_contracts(checker)
        self._allowed_links = self._compute_allowed_links()
        # Static per-node constants for the batched control path: fixed
        # slot energy, receive power, BS membership, and node ids in
        # node-id order.  None of these change mid-run.
        params = model.params
        self._fixed_energy_arr = np.fromiter(
            (n.radio.fixed_energy_j(params.slot_seconds) for n in model.nodes),
            dtype=float,
            count=model.num_nodes,
        )
        self._recv_power_arr = np.fromiter(
            (n.radio.recv_power_w for n in model.nodes),
            dtype=float,
            count=model.num_nodes,
        )
        self._bs_mask = np.zeros(model.num_nodes, dtype=bool)
        self._bs_mask[list(model.bs_ids)] = True
        self._node_ids = np.arange(model.num_nodes, dtype=np.intp)
        #: Energy demand shed because no supply could cover it (J),
        #: accumulated across slots for the metrics collector.
        self.last_deficit_j: Dict[NodeId, float] = {}
        #: Previous slot's total grid draw, seeding the marginal energy
        #: price used by energy-aware scheduling.
        self._last_grid_draw_j: float = 0.0

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Enable per-slot invariant checks in S1-S4 and the assembly.

        The checker also propagates to the four subproblem modules so
        each validates its own raw output (see ``docs/contracts.md``).
        """
        self._checker = checker
        self.scheduler.attach_contracts(checker)
        self.allocator.attach_contracts(checker)
        self.router.attach_contracts(checker)
        self.energy_manager.attach_contracts(checker)

    def _energy_prices(
        self, slot: int, use_arrays: bool = False
    ) -> Optional[Union[Dict[NodeId, float], np.ndarray]]:
        """Per-node marginal energy prices for the S1 weights.

        Base-station energy is priced at ``V * f'(P)`` under the
        current slot's tariff, evaluated at the previous slot's draw
        (a one-slot-lagged estimate of the S4 marginal price); user
        energy is renewable-funded and free from the provider's
        perspective, which is precisely the asymmetry that makes
        relaying through users worthwhile.

        With ``use_arrays`` the prices come back as an ``(N,)`` vector
        for the batched S1 kernel; otherwise as the reference dict.
        """
        if not self._model.params.energy_aware_scheduling:
            return None
        marginal = self._model.cost_at(slot).derivative(self._last_grid_draw_j)
        price = self._model.params.control_v * marginal
        if use_arrays:
            return np.where(self._bs_mask, price, 0.0)
        bs_set = set(self._model.bs_ids)
        return {
            node: (price if node in bs_set else 0.0)
            for node in range(self._model.num_nodes)  # noqa: R040 - reference object path; the array path emits the (N,) price vector above
        }

    def _compute_allowed_links(self) -> Optional[Dict[Link, bool]]:
        """Link filter implementing the one-hop architectures.

        Multi-hop: all candidate links.  One-hop: only direct base
        station -> user links (users never relay).
        """
        if self._model.params.multi_hop_enabled:
            return None
        bs_set = set(self._model.bs_ids)
        return {
            link: (link[0] in bs_set and link[1] not in bs_set)
            for link in self._model.topology.candidate_links
        }

    # ------------------------------------------------------------------
    # Energy-feasibility curtailment
    # ------------------------------------------------------------------

    def _max_supply_j(
        self, node: NodeId, observation: SlotObservation, state: NetworkState
    ) -> float:
        """Most energy ``node`` can spend this slot."""
        grid = state.grids[node]
        grid_j = grid.draw_cap_j if observation.grid_connected[node] else 0.0
        return (
            observation.renewable_j[node]
            + grid_j
            + state.batteries[node].max_deliverable_j()
        )

    def _curtail_arrays(
        self,
        schedule: ScheduleDecision,
        observation: SlotObservation,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
    ) -> NodeJoules:
        """Array-state curtailment: one vectorized supply/demand pass.

        Semantics (and every float64 result) match :meth:`_curtail`:
        supply adds renewable, gated grid cap, and battery discharge
        headroom in the same left-to-right order, demands accumulate in
        schedule order, and the first overloaded node id is handled
        each round exactly as the dict scan would.
        """
        params = self._model.params
        arrays = state.arrays
        supply = (
            observation.renewable_j.values_array
            + np.where(
                observation.grid_connected.values_array,
                state.grid_caps_array(),
                0.0,
            )
            + arrays.max_deliverable_j_array()
        )
        self.last_deficit_j = {}

        # The reference loop rescans all N nodes after every clamp,
        # which is O(N^2) when many nodes run an energy deficit (e.g.
        # renewables off).  Clamping a node's supply never changes any
        # demand and never overloads another node, so all deficit-only
        # nodes of one scan are clamped in a single ascending pass —
        # exactly the order the rescan would visit them — and demands
        # are rebuilt only when a transmission is actually removed.
        demands = all_node_demands_array(
            self._fixed_energy_arr,
            self._recv_power_arr,
            schedule.transmissions,
            params.slot_seconds,
        )
        while True:
            overloaded = np.flatnonzero(demands > supply + _ENERGY_TOL)
            if overloaded.size == 0:
                return demands

            involved_by_node: Dict[NodeId, List[Transmission]] = {}
            for t in schedule.transmissions:
                involved_by_node.setdefault(t.tx, []).append(t)
                involved_by_node.setdefault(t.rx, []).append(t)

            removed = False
            for node in map(int, overloaded):
                involved = involved_by_node.get(node, [])
                if involved:
                    victim = min(
                        involved, key=lambda t: h_backlogs.get(t.link, 0.0)
                    )
                    self._remove_transmission(schedule, victim)
                    demands = all_node_demands_array(
                        self._fixed_energy_arr,
                        self._recv_power_arr,
                        schedule.transmissions,
                        params.slot_seconds,
                    )
                    removed = True
                    break
                deficit = float(demands[node] - supply[node])
                self.last_deficit_j[node] = (
                    self.last_deficit_j.get(node, 0.0) + deficit
                )
                supply[node] = demands[node]
            if not removed:
                return demands

    def _curtail(
        self,
        schedule: ScheduleDecision,
        observation: SlotObservation,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
    ) -> Union[Dict[NodeId, float], NodeJoules]:
        """Shed transmissions until every node's demand is supplied.

        Mutates ``schedule`` in place (removing transmissions, reducing
        link service, recording the drops) and returns the per-node
        demands after curtailment, with unservable *base* demand
        (constant + idle energy) clamped off and recorded in
        ``last_deficit_j``.  On the array state the vectorized pass
        returns an ``(N,)`` array instead of a dict.
        """
        if getattr(state, "arrays", None) is not None:
            return self._curtail_arrays(schedule, observation, state, h_backlogs)
        params = self._model.params
        node_params = {n.node_id: n.radio for n in self._model.nodes}  # noqa: R040 - reference object path; the array path uses the precomputed per-node constants
        supply = {
            n: self._max_supply_j(n, observation, state)
            for n in range(self._model.num_nodes)  # noqa: R040 - reference object path; the array path builds supply as one vector expression
        }
        self.last_deficit_j = {}

        while True:
            demands = all_node_demands_j(
                node_params, schedule.transmissions, params.slot_seconds
            )
            overloaded = [
                n for n, demand in demands.items()
                if demand > supply[n] + _ENERGY_TOL
            ]
            if not overloaded:
                return demands

            node = overloaded[0]
            involved = [
                t for t in schedule.transmissions if node in (t.tx, t.rx)
            ]
            if not involved:
                # Base demand alone exceeds supply (e.g. a disconnected
                # user with an empty battery on a cloudy slot): record
                # the deficit and clamp the demand to what exists.
                deficit = demands[node] - supply[node]
                self.last_deficit_j[node] = (
                    self.last_deficit_j.get(node, 0.0) + deficit
                )
                supply[node] = demands[node]
                continue

            victim = min(
                involved, key=lambda t: h_backlogs.get(t.link, 0.0)
            )
            self._remove_transmission(schedule, victim)

    @staticmethod
    def _remove_transmission(
        schedule: ScheduleDecision, victim: Transmission
    ) -> None:
        """Drop one transmission from the schedule, fixing service."""
        schedule.transmissions.remove(victim)
        schedule.dropped.append(victim.link_band)
        remaining = sum(
            1 for t in schedule.transmissions if t.link == victim.link
        )
        if remaining == 0:
            schedule.link_service_pkts.pop(victim.link, None)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    #
    # decide() is split into phase methods so variant controllers (the
    # sharded loop in ``repro.sharding``) can replace how a phase
    # *computes* while the slot-level sequencing — S1, curtailment, S2,
    # S3, S4, contract checks — stays in one place.

    def _schedule_phase(
        self,
        observation: SlotObservation,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
        arrays,
    ) -> ScheduleDecision:
        """S1: link activation, band assignment, and power control."""
        forbidden = None
        if self._allowed_links is not None:
            forbidden = [
                link for link, ok in self._allowed_links.items() if not ok
            ]
        return self.scheduler.schedule(
            observation,
            h_backlogs,
            forbidden_links=forbidden,
            energy_prices=self._energy_prices(
                observation.slot, use_arrays=arrays is not None
            ),
        )

    def _routing_phase(
        self,
        observation: SlotObservation,
        schedule: ScheduleDecision,
        admission,
        state: NetworkState,
        h_backlogs: Mapping[Link, float],
        arrays,
    ):
        """S3: backpressure routing over the scheduled capacities."""
        return self.router.route(
            observation,
            schedule,
            admission,
            state.backlog,
            h_backlogs,
            allowed_links=self._allowed_links,
            arrays=arrays,
        )

    def decide(
        self, observation: SlotObservation, state: NetworkState
    ) -> SlotDecision:
        """Solve one slot of the online problem P3."""
        h_backlogs = state.h_backlogs()

        arrays = getattr(state, "arrays", None)
        schedule = self._schedule_phase(observation, state, h_backlogs, arrays)
        curtailed_before = len(schedule.dropped)
        demands = self._curtail(schedule, observation, state, h_backlogs)
        curtailed = schedule.dropped[curtailed_before:]

        admission = self.allocator.allocate(state.backlog, slot=observation.slot)
        routing = self._routing_phase(
            observation, schedule, admission, state, h_backlogs, arrays
        )

        if arrays is not None:
            deficit_arr = np.zeros(self._model.num_nodes)
            for node, value in self.last_deficit_j.items():
                deficit_arr[node] = value
            batch = NodeEnergyBatch(
                nodes=self._node_ids,
                is_base_station=self._bs_mask,
                demand_j=np.maximum(0.0, demands - deficit_arr),
                renewable_j=observation.renewable_j.values_array,
                grid_connected=observation.grid_connected.values_array,
                grid_cap_j=state.grid_caps_array(),
                charge_cap_j=arrays.max_charge_j_array(),
                discharge_cap_j=arrays.max_deliverable_j_array(),
                z=arrays.z_values_array(),
                charge_efficiency=arrays.charge_efficiency,
                discharge_efficiency=arrays.discharge_efficiency,
            )
            energy = self.energy_manager.manage(
                batch, cost=self._model.cost_at(observation.slot)
            )
        else:
            z_values = state.z_values()
            inputs: List[NodeEnergyInputs] = []
            bs_set: Set[NodeId] = set(self._model.bs_ids)
            for node_obj in self._model.nodes:  # noqa: R040 - reference object path; the array path assembles one NodeEnergyBatch instead
                node = node_obj.node_id
                battery = state.batteries[node]
                connected = observation.grid_connected[node]
                deficit = self.last_deficit_j.get(node, 0.0)
                inputs.append(
                    NodeEnergyInputs(
                        node=node,
                        is_base_station=node in bs_set,
                        demand_j=max(0.0, demands[node] - deficit),
                        renewable_j=observation.renewable_j[node],
                        grid_connected=connected,
                        grid_cap_j=state.grids[node].draw_cap_j,
                        charge_cap_j=battery.max_charge_j(),
                        discharge_cap_j=battery.max_deliverable_j(),
                        z=z_values[node],
                        charge_efficiency=battery.charge_efficiency,
                        discharge_efficiency=battery.discharge_efficiency,
                    )
                )
            energy = self.energy_manager.manage(
                inputs, cost=self._model.cost_at(observation.slot)
            )
        self._last_grid_draw_j = energy.bs_grid_draw_j

        if self._checker is not None and self._checker.enabled:
            # Re-validate the *post-curtailment* schedule (the S1 hook
            # saw the raw activation set) and the Eq. 2 coverage of the
            # realised demands, deficit included.
            self._checker.check_schedule(
                self._model, observation, schedule, observation.slot
            )
            demand_map = (
                NodeArrayMapping(demands)
                if isinstance(demands, np.ndarray)
                else demands
            )
            self._checker.check_demand_coverage(
                demand_map, self.last_deficit_j, energy, observation.slot
            )

        return SlotDecision(
            schedule=schedule,
            admission=admission,
            routing=routing,
            energy=energy,
            curtailed=list(curtailed),
        )

"""S3 — routing (Section IV-C-3).

Minimises ``sum_{s,i,j} (-Q_i^s + Q_j^s + beta H_ij) l_ij^s`` under the
flow constraints (16)-(18) and the link-capacity constraint (25).  The
paper's per-link greedy rule is optimal for the ILP: each link gives its
whole capacity to the session with the most negative coefficient (or
carries nothing if every coefficient is non-negative), and each
destination's required ``v_s(t)`` packets are forced onto its
smallest-coefficient incoming link (constraint 18).

Capacity modes (see DESIGN.md, "substitutions"):

* ``POTENTIAL_CAPACITY`` (default) — a link may be assigned up to the
  service it *would* receive if scheduled on its best common band this
  slot.  The assignment parks packets in the link-layer virtual queue
  ``G_ij``; backpressure through ``H_ij`` then attracts the scheduler.
  This is what makes the S1 <-> S3 feedback loop bootstrap: with the
  literal mode, an upstream link with ``H_ij = 0`` is never scheduled
  (its S1 weight is ``H_ij * c = 0``) and therefore never earns
  capacity to route over, so multi-hop flows starve.  The drift bound
  (29) still holds because assignments stay below ``c_max_ij dt/delta``.
* ``SCHEDULED_CAPACITY`` — the paper's literal Eq. (25) cap using the
  realised ``a_ij^m``; provided for the fidelity ablation.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.contracts import ContractChecker
from repro.control.decisions import (
    AdmissionDecision,
    RoutingDecision,
    ScheduleDecision,
    SlotObservation,
)
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.phy.capacity import max_link_capacity_bps
from repro.types import Link, NodeId, SessionId

#: Signature for reading a data-queue backlog ``Q_i^s(t)``.
BacklogFn = Callable[[NodeId, SessionId], float]


class RouterMode(enum.Enum):
    """Which capacity bound Eq. (25) applies per link (module docs)."""

    POTENTIAL_CAPACITY = "potential_capacity"
    SCHEDULED_CAPACITY = "scheduled_capacity"


class BackpressureRouter:
    """The S3 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
        mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._constants = constants
        self._rng = rng
        self._mode = mode
        self._checker = checker

    @property
    def mode(self) -> RouterMode:
        """The configured capacity mode."""
        return self._mode

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every routing decision against Eqs. 16-17 and 25."""
        self._checker = checker

    def _link_capacity_pkts(
        self, link: Link, observation: SlotObservation, schedule: ScheduleDecision
    ) -> float:
        """The Eq. (25) cap for ``link`` under the configured mode."""
        if self._mode is RouterMode.SCHEDULED_CAPACITY:
            return schedule.service_pkts(link)
        params = self._model.params
        tx, rx = link
        best_bps = max(
            (
                max_link_capacity_bps(
                    observation.bands.bandwidth(m), params.sinr_threshold
                )
                for m in observation.common_bands(self._model, tx, rx)
            ),
            default=0.0,
        )
        return best_bps * params.slot_seconds / params.sessions.packet_size_bits

    def _coefficient(
        self,
        backlog: BacklogFn,
        h_backlogs: Mapping[Link, float],
        link: Link,
        session: SessionId,
        destination: NodeId,
    ) -> float:
        """The S3 objective coefficient ``-Q_i^s + Q_j^s + beta H_ij``."""
        tx, rx = link
        q_tx = backlog(tx, session)
        q_rx = 0.0 if rx == destination else backlog(rx, session)
        return -q_tx + q_rx + self._constants.beta * h_backlogs.get(link, 0.0)

    def route(
        self,
        observation: SlotObservation,
        schedule: ScheduleDecision,
        admission: AdmissionDecision,
        backlog: BacklogFn,
        h_backlogs: Mapping[Link, float],
        allowed_links: Optional[Mapping[Link, bool]] = None,
    ) -> RoutingDecision:
        """Solve S3 for one slot.

        Args:
            observation: realised random state (potential capacities).
            schedule: the S1 decision (scheduled capacities).
            admission: the S2 decision (per-session sources).
            backlog: accessor for ``Q_i^s(t)``.
            h_backlogs: current ``H_ij(t)``.
            allowed_links: optional link filter (one-hop baselines).

        Returns:
            Per-link per-session rates ``l_ij^s(t)`` in packets.
        """
        rates: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        committed: set = set()
        topo = self._model.topology

        def link_allowed(link: Link) -> bool:
            return allowed_links is None or allowed_links.get(link, False)

        # Constraint (18): force v_s(t) onto the destination's
        # smallest-coefficient incoming candidate link.
        for session in self._model.sessions:
            dest = session.destination
            source = admission.sources[session.session_id]
            demand = session.demand(observation.slot)
            if demand <= 0:
                continue
            in_links = [
                (i, dest)
                for i in topo.in_neighbors.get(dest, ())
                if i != dest and link_allowed((i, dest))
            ]
            if not in_links:
                continue
            coefficients = {
                link: self._coefficient(
                    backlog, h_backlogs, link, session.session_id, dest
                )
                for link in in_links
                # Constraint (16): the source has no incoming traffic —
                # irrelevant here since dest != source for a live session.
                if link[0] != dest
            }
            best_value = min(coefficients.values())
            tied = [l for l, v in coefficients.items() if v == best_value]
            chosen = tied[0] if len(tied) == 1 else tied[self._rng.integers(len(tied))]
            rates[(chosen[0], chosen[1], session.session_id)] = float(demand)
            committed.add(chosen)

        # All other links: whole capacity to the most negative session.
        destinations = {s.session_id: s.destination for s in self._model.sessions}
        sources = dict(admission.sources)
        for link in topo.candidate_links:
            if link in committed or not link_allowed(link):
                continue
            tx, rx = link
            capacity = self._link_capacity_pkts(link, observation, schedule)
            if capacity <= 0:
                continue
            eligible: List[Tuple[float, SessionId]] = []
            for session in self._model.sessions:
                sid = session.session_id
                # (17): destinations emit nothing; (16): sources receive
                # nothing; destination in-links were handled above.
                if tx == destinations[sid] or rx == destinations[sid]:
                    continue
                if rx == sources[sid]:
                    continue
                coeff = self._coefficient(
                    backlog, h_backlogs, link, sid, destinations[sid]
                )
                if coeff < 0:
                    eligible.append((coeff, sid))
            if not eligible:
                continue
            best_value = min(c for c, _ in eligible)
            tied_sessions = [sid for c, sid in eligible if c == best_value]
            chosen_sid = (
                tied_sessions[0]
                if len(tied_sessions) == 1
                else int(self._rng.choice(tied_sessions))
            )
            rates[(tx, rx, chosen_sid)] = capacity

        decision = RoutingDecision(rates=rates)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_routing(
                self._model, decision, admission, observation.slot
            )
        return decision

"""S3 — routing (Section IV-C-3).

Minimises ``sum_{s,i,j} (-Q_i^s + Q_j^s + beta H_ij) l_ij^s`` under the
flow constraints (16)-(18) and the link-capacity constraint (25).  The
paper's per-link greedy rule is optimal for the ILP: each link gives its
whole capacity to the session with the most negative coefficient (or
carries nothing if every coefficient is non-negative), and each
destination's required ``v_s(t)`` packets are forced onto its
smallest-coefficient incoming link (constraint 18).

Capacity modes (see DESIGN.md, "substitutions"):

* ``POTENTIAL_CAPACITY`` (default) — a link may be assigned up to the
  service it *would* receive if scheduled on its best common band this
  slot.  The assignment parks packets in the link-layer virtual queue
  ``G_ij``; backpressure through ``H_ij`` then attracts the scheduler.
  This is what makes the S1 <-> S3 feedback loop bootstrap: with the
  literal mode, an upstream link with ``H_ij = 0`` is never scheduled
  (its S1 weight is ``H_ij * c = 0``) and therefore never earns
  capacity to route over, so multi-hop flows starve.  The drift bound
  (29) still holds because assignments stay below ``c_max_ij dt/delta``.
* ``SCHEDULED_CAPACITY`` — the paper's literal Eq. (25) cap using the
  realised ``a_ij^m``; provided for the fidelity ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.axes import (
    BandVec,
    LinkBandMat,
    LinkSessionMat,
    LinkVec,
    NodeBandMat,
    SessionToNode,
)
from repro.contracts import ContractChecker
from repro.control.decisions import (
    AdmissionDecision,
    RoutingDecision,
    ScheduleDecision,
    SlotObservation,
)
from repro.core.arraystate import ArrayState, LinkArrayMapping
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.phy.capacity import max_link_capacity_bps
from repro.types import Link, NodeId, SessionId

#: Signature for reading a data-queue backlog ``Q_i^s(t)``.
BacklogFn = Callable[[NodeId, SessionId], float]


@dataclass(frozen=True)
class _RouterStatic:
    """Frozen per-run routing tables over the link index.

    Attributes:
        eligible: ``(L, S)`` constraint-(17) mask — True where neither
            endpoint of link ``p`` is session ``c``'s destination.
        band_member: ``(L, M)`` bool form of the static common-band
            sets ``M_i ∩ M_j``.
    """

    eligible: LinkSessionMat
    band_member: LinkBandMat


class RouterMode(enum.Enum):
    """Which capacity bound Eq. (25) applies per link (module docs)."""

    POTENTIAL_CAPACITY = "potential_capacity"
    SCHEDULED_CAPACITY = "scheduled_capacity"


class BackpressureRouter:
    """The S3 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
        mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._constants = constants
        self._rng = rng
        self._mode = mode
        self._checker = checker
        self._static_cache: Optional[Tuple[ArrayState, "_RouterStatic"]] = None

    @property
    def mode(self) -> RouterMode:
        """The configured capacity mode."""
        return self._mode

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every routing decision against Eqs. 16-17 and 25."""
        self._checker = checker

    def _link_capacity_pkts(
        self, link: Link, observation: SlotObservation, schedule: ScheduleDecision
    ) -> float:
        """The Eq. (25) cap for ``link`` under the configured mode."""
        if self._mode is RouterMode.SCHEDULED_CAPACITY:
            return schedule.service_pkts(link)
        params = self._model.params
        tx, rx = link
        best_bps = max(
            (
                max_link_capacity_bps(
                    observation.bands.bandwidth(m), params.sinr_threshold
                )
                for m in observation.common_bands(self._model, tx, rx)
            ),
            default=0.0,
        )
        return best_bps * params.slot_seconds / params.sessions.packet_size_bits

    def _router_static(self, arrays: ArrayState) -> "_RouterStatic":
        """Per-``ArrayState`` link/session eligibility tables.

        Cold path: built once per simulation run (keyed by array-state
        identity) — the destination/source roles of constraints (16)/
        (17) and the static common-band sets never change mid-run.
        """
        cached = self._static_cache
        if cached is not None and cached[0] is arrays:
            return cached[1]
        sessions = self._model.sessions
        # (17): destinations emit nothing; destination in-links are
        # handled by the constraint-(18) pass.
        dests: SessionToNode = np.fromiter(
            (s.destination for s in sessions), dtype=np.intp, count=len(sessions)
        )
        eligible: LinkSessionMat = (arrays.link_tx[:, None] != dests[None, :]) & (
            arrays.link_rx[:, None] != dests[None, :]
        )
        spectrum = self._model.spectrum
        # (N, M) access table fancy-indexed by the link endpoints — the
        # O(N + L) numpy form of the per-link common-band set loop.
        access = np.zeros(
            (self._model.num_nodes, spectrum.num_bands), dtype=bool
        )
        for node, bands in spectrum.access_sets().items():
            for band in bands:
                access[node, band] = True
        band_member = access[arrays.link_tx] & access[arrays.link_rx]
        static = _RouterStatic(
            eligible=eligible,
            band_member=band_member,
        )
        self._static_cache = (arrays, static)
        return static

    def _coefficient(
        self,
        backlog: BacklogFn,
        h_backlogs: Mapping[Link, float],
        link: Link,
        session: SessionId,
        destination: NodeId,
    ) -> float:
        """The S3 objective coefficient ``-Q_i^s + Q_j^s + beta H_ij``."""
        tx, rx = link
        q_tx = backlog(tx, session)
        q_rx = 0.0 if rx == destination else backlog(rx, session)
        return -q_tx + q_rx + self._constants.beta * h_backlogs.get(link, 0.0)

    def route(
        self,
        observation: SlotObservation,
        schedule: ScheduleDecision,
        admission: AdmissionDecision,
        backlog: BacklogFn,
        h_backlogs: Mapping[Link, float],
        allowed_links: Optional[Mapping[Link, bool]] = None,
        arrays: Optional[ArrayState] = None,
        coeff: Optional[LinkSessionMat] = None,
    ) -> RoutingDecision:
        """Solve S3 for one slot.

        Args:
            observation: realised random state (potential capacities).
            schedule: the S1 decision (scheduled capacities).
            admission: the S2 decision (per-session sources).
            backlog: accessor for ``Q_i^s(t)``.
            h_backlogs: current ``H_ij(t)``.
            allowed_links: optional link filter (one-hop baselines).
            arrays: the state's ``ArrayState``, if array-backed.  When
                given (and ``h_backlogs`` is a view over the same link
                index) the objective coefficients are computed as one
                array expression over the link index; selection order,
                tie sets, and RNG draws are unchanged, so decisions are
                bit-identical to the scalar path.
            coeff: optional precomputed ``(L, S)`` objective-coefficient
                matrix (requires ``arrays``).  The sharded controller
                fills it shard by shard — each entry is an elementwise
                function of its own link row, so a sliced fill equals
                the global expression exactly — and passes it here so
                the selection/tie-break/RNG machinery stays global.

        Returns:
            Per-link per-session rates ``l_ij^s(t)`` in packets.
        """
        rates: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        committed: set = set()
        topo = self._model.topology

        def link_allowed(link: Link) -> bool:
            return allowed_links is None or allowed_links.get(link, False)

        # Vectorized coefficient matrix ``(-Q_i^s + Q_j^s + beta H_ij)``
        # over (link, session); destination columns of Q are pinned at
        # 0.0, matching the scalar rule's ``q_rx = 0`` at destinations.
        if coeff is None and (
            arrays is not None
            and isinstance(h_backlogs, LinkArrayMapping)
            and h_backlogs.links is arrays.links
        ):
            beta_h = self._constants.beta * h_backlogs.values_array
            q = arrays.q
            coeff = (-q[arrays.link_tx] + q[arrays.link_rx]) + beta_h[:, None]

        # Constraint (18): force v_s(t) onto the destination's
        # smallest-coefficient incoming candidate link.
        for session in self._model.sessions:  # noqa: R040 - reference object path; the array path routes via _route_remaining_links_vectorized
            dest = session.destination
            source = admission.sources[session.session_id]
            demand = session.demand(observation.slot)
            if demand <= 0:
                continue
            in_links = [
                (i, dest)
                for i in topo.in_neighbors.get(dest, ())
                if i != dest and link_allowed((i, dest))
            ]
            if not in_links:
                continue
            if coeff is not None:
                link_pos = arrays.link_pos
                col = arrays.session_col[session.session_id]
                coefficients = {
                    link: coeff[link_pos[link], col]
                    for link in in_links
                    if link[0] != dest
                }
            else:
                coefficients = {
                    link: self._coefficient(
                        backlog, h_backlogs, link, session.session_id, dest
                    )
                    for link in in_links
                    # Constraint (16): the source has no incoming traffic —
                    # irrelevant here since dest != source for a live session.
                    if link[0] != dest
                }
            best_value = min(coefficients.values())
            tied = [l for l, v in coefficients.items() if v == best_value]
            chosen = tied[0] if len(tied) == 1 else tied[self._rng.integers(len(tied))]
            rates[(chosen[0], chosen[1], session.session_id)] = float(demand)
            committed.add(chosen)

        # All other links: whole capacity to the most negative session.
        if coeff is not None:
            self._route_remaining_links_vectorized(
                coeff,
                arrays,
                observation,
                schedule,
                admission,
                rates,
                committed,
                allowed_links,
            )
            decision = RoutingDecision(rates=rates)
            if self._checker is not None and self._checker.enabled:
                self._checker.check_routing(
                    self._model, decision, admission, observation.slot
                )
            return decision

        destinations = {s.session_id: s.destination for s in self._model.sessions}  # noqa: R040 - reference object path; the array path reads session metadata from ArrayState
        sources = dict(admission.sources)
        for link in topo.candidate_links:  # noqa: R040 - reference object path; the array path scans links as (L,) index arrays
            if link in committed or not link_allowed(link):
                continue
            tx, rx = link
            capacity = self._link_capacity_pkts(link, observation, schedule)
            if capacity <= 0:
                continue
            eligible: List[Tuple[float, SessionId]] = []
            for session in self._model.sessions:  # noqa: R040 - reference object path; the array path argmaxes differentials per link row
                sid = session.session_id
                # (17): destinations emit nothing; (16): sources receive
                # nothing; destination in-links were handled above.
                if tx == destinations[sid] or rx == destinations[sid]:
                    continue
                if rx == sources[sid]:
                    continue
                coeff = self._coefficient(
                    backlog, h_backlogs, link, sid, destinations[sid]
                )
                if coeff < 0:
                    eligible.append((coeff, sid))
            if not eligible:
                continue
            best_value = min(c for c, _ in eligible)
            tied_sessions = [sid for c, sid in eligible if c == best_value]
            chosen_sid = (
                tied_sessions[0]
                if len(tied_sessions) == 1
                else int(self._rng.choice(tied_sessions))
            )
            rates[(tx, rx, chosen_sid)] = capacity

        decision = RoutingDecision(rates=rates)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_routing(
                self._model, decision, admission, observation.slot
            )
        return decision

    def _route_remaining_links_vectorized(
        self,
        coeff: LinkSessionMat,
        arrays: ArrayState,
        observation: SlotObservation,
        schedule: ScheduleDecision,
        admission: AdmissionDecision,
        rates: Dict[Tuple[NodeId, NodeId, SessionId], float],
        committed: set,
        allowed_links: Optional[Mapping[Link, bool]],
    ) -> None:
        """Array-path second pass: whole capacity to the best session.

        Eligibility, per-link capacity, the per-link minimum and the tie
        sets all come out of ``(L, S)`` / ``(L, M)`` array expressions;
        only the links that actually route are visited in Python, in
        frozen link-index order, so rate insertion order and the
        tie-break RNG draws replicate the scalar pass exactly.
        """
        params = self._model.params
        static = self._router_static(arrays)
        num_links = len(arrays.links)
        sessions = arrays.sessions

        # Per-link Eq.-(25) capacity, as one (L,) expression.
        if self._mode is RouterMode.POTENTIAL_CAPACITY:
            caps_bps: BandVec = np.fromiter(
                (
                    max_link_capacity_bps(
                        observation.bands.bandwidth(m), params.sinr_threshold
                    )
                    for m in range(self._model.spectrum.num_bands)
                ),
                dtype=np.float64,
                count=self._model.spectrum.num_bands,
            )
            if observation.band_access is not None:
                access: NodeBandMat = np.zeros(
                    (arrays.num_nodes, caps_bps.size), dtype=bool
                )
                for node, bands in observation.band_access.items():  # noqa: R006 - builds the (N, M) access mask feeding the vectorized pass
                    for band in bands:
                        access[node, band] = True
                member: LinkBandMat = access[arrays.link_tx] & access[arrays.link_rx]
            else:
                member = static.band_member
            best_bps: LinkVec = np.max(
                np.where(member, caps_bps[None, :], -np.inf),
                axis=1,
                initial=-np.inf,
            )
            best_bps[~member.any(axis=1)] = 0.0
            capacity: LinkVec = (
                best_bps * params.slot_seconds / params.sessions.packet_size_bits
            )
        else:
            capacity = np.fromiter(
                (schedule.service_pkts(link) for link in arrays.links),  # noqa: R040 - boundary conversion from the dict-shaped S1 decision into the (L,) service vector, one pass per slot
                dtype=np.float64,
                count=num_links,
            )

        active: LinkVec = capacity > 0.0
        for link in committed:  # noqa: R032 - order-independent: only clears mask bits, no results or RNG draws depend on visit order
            pos = arrays.link_pos.get(link)
            if pos is not None:
                active[pos] = False
        if allowed_links is not None:
            active &= np.fromiter(
                (allowed_links.get(link, False) for link in arrays.links),  # noqa: R040 - boundary conversion of the static allowed-links dict into an (L,) mask, one pass per slot
                dtype=bool,
                count=num_links,
            )

        src_by_col: SessionToNode = np.fromiter(
            (admission.sources[sid] for sid in sessions),  # noqa: R040 - boundary conversion from the dict-shaped S2 decision into the (S,) source vector, one pass per slot
            dtype=np.int64,
            count=len(sessions),
        )
        # (16): sources receive nothing; eligible coefficients are
        # strictly negative; (17) via the static mask.
        mask: LinkSessionMat = (
            static.eligible
            & (coeff < 0.0)
            & (src_by_col[None, :] != arrays.link_rx[:, None])
            & active[:, None]
        )
        routed: LinkVec = mask.any(axis=1)
        if not routed.any():
            return
        best_value: LinkVec = np.min(np.where(mask, coeff, np.inf), axis=1)
        ties: LinkSessionMat = mask & (coeff == best_value[:, None])
        tie_counts: LinkVec = ties.sum(axis=1)
        first_col: LinkVec = ties.argmax(axis=1)

        for pos in np.flatnonzero(routed):
            tx, rx = arrays.links[pos]
            if tie_counts[pos] == 1:
                chosen_sid = sessions[first_col[pos]]
            else:
                tied_sessions = [sessions[c] for c in np.flatnonzero(ties[pos])]
                chosen_sid = int(self._rng.choice(tied_sessions))
            rates[(tx, rx, chosen_sid)] = float(capacity[pos])

"""S4 — energy management (Section IV-C-4).

Minimises ``Psi-hat_4 = sum_i z_i (c_i - d_i) + V f(P)`` subject to the
energy constraints (9)-(14), where ``P = sum_{b in BS} (g_b + c^g_b)``
is the total base-station grid draw.  Three solvers:

* ``PRICE_DECOMPOSITION`` (default) — exact for the paper's strictly
  convex quadratic ``f``: nodes respond optimally to a marginal grid
  price ``mu``; bisection finds the fixed point ``mu = f'(P(mu))``;
  a marginal-node repair step handles the staircase discontinuity of
  ``P(mu)`` so interior optima (partial charging) are recovered.
* ``SLSQP`` — scipy general-purpose NLP over all node variables,
  used as a cross-check in the test suite.
* ``GRID_ONLY`` — a naive baseline: renewables serve demand, the grid
  covers the rest, the battery is never used.

Deviation from the paper noted in DESIGN.md: Eq. (3) forces the
renewable output to be fully consumed (``R = r + c^r``), which is
infeasible whenever the battery is full and demand is low; we allow
spilling (``r + c^r <= R``) and report the spilled energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import optimize

from repro.axes import NodeJoules, NodeVec
from repro.constants import FEASIBILITY_EPS
from repro.contracts import ContractChecker
from repro.core.arraystate import seq_sum
from repro.control.decisions import EnergyManagementDecision, NodeEnergyAllocation
from repro.energy.cost import QuadraticCost
from repro.exceptions import InfeasibleError, SolverError
from repro.model import NetworkModel
from repro.solvers.bisection import bisect_root, bisect_root_vec
from repro.types import EnergySolverKind, NodeId
from repro.units import DollarsPerJoule, Joules

#: Bisection bracket tolerance: must be far below the +/- probe offset
#: used by the marginal repair step, or both probes can land on the
#: same side of a response discontinuity and miss the interior optimum.
_PRICE_BISECT_TOL = 1e-10
#: Relative +/- probe offset around the fixed-point price.
_PRICE_PROBE_REL = 1e-3

#: Station-fleet size at or below which the batched solver prices base
#: stations through the scalar kernel: each vectorized residual step
#: costs ~30 numpy dispatches regardless of row count, so tiny fleets
#: are faster as Python floats (the float64 chains are identical).
_SCALAR_PRICING_MAX = 8
_ENERGY_TOL = 1e-6


@dataclass(frozen=True)
class NodeEnergyInputs:
    """Everything S4 needs to know about one node for one slot.

    All energies in joules.  ``charge_cap_j``/``discharge_cap_j`` are
    the *effective* caps — constraints (11)/(12) already intersected
    with the battery's current headroom and level.  Conventions with
    storage losses: ``charge`` amounts are *input* energy (the battery
    stores ``eta_c`` of them); ``discharge`` amounts are *delivered*
    energy (the battery drains ``1/eta_d`` of them), so
    ``discharge_cap_j`` is the deliverable cap.
    """

    node: NodeId
    is_base_station: bool
    demand_j: Joules
    renewable_j: Joules
    grid_connected: bool
    grid_cap_j: Joules
    charge_cap_j: Joules
    discharge_cap_j: Joules
    z: Joules
    charge_efficiency: float = 1.0
    discharge_efficiency: float = 1.0

    @property
    def usable_grid_j(self) -> Joules:
        """Grid supply available this slot (0 when disconnected)."""
        return self.grid_cap_j if self.grid_connected else 0.0

    @property
    def max_supply_j(self) -> Joules:
        """Most demand this node could possibly serve this slot."""
        return self.renewable_j + self.usable_grid_j + self.discharge_cap_j


@dataclass
class NodeEnergyBatch:
    """Struct-of-arrays form of a ``List[NodeEnergyInputs]``.

    Row ``i`` holds the same fields as ``inputs[i]`` would; the batched
    S4 kernels run one vectorized pass over these arrays instead of one
    convex program per node.  Rows keep the caller's input order (the
    controller passes nodes ``0..N-1``), which fixes the allocation
    dict's insertion order and every sequential reduction — both must
    match the scalar path bit for bit.
    """

    nodes: NodeVec
    is_base_station: NodeVec
    demand_j: NodeJoules
    renewable_j: NodeJoules
    grid_connected: NodeVec
    grid_cap_j: NodeJoules
    charge_cap_j: NodeJoules
    discharge_cap_j: NodeJoules
    z: NodeJoules
    charge_efficiency: NodeVec
    discharge_efficiency: NodeVec

    def __len__(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def usable_grid_j(self) -> NodeJoules:
        """Grid supply available this slot (0 where disconnected)."""
        return np.where(self.grid_connected, self.grid_cap_j, 0.0)

    @property
    def max_supply_j(self) -> NodeJoules:
        """Most demand each node could possibly serve this slot."""
        return self.renewable_j + self.usable_grid_j + self.discharge_cap_j

    @classmethod
    def from_inputs(cls, inputs: Sequence[NodeEnergyInputs]) -> "NodeEnergyBatch":
        """Pack per-node inputs into arrays (row order = input order)."""
        count = len(inputs)

        def farr(attr: str) -> np.ndarray:
            return np.fromiter(
                (getattr(n, attr) for n in inputs), dtype=float, count=count
            )

        return cls(
            nodes=np.fromiter(
                (n.node for n in inputs), dtype=np.intp, count=count
            ),
            is_base_station=np.fromiter(
                (n.is_base_station for n in inputs), dtype=bool, count=count
            ),
            demand_j=farr("demand_j"),
            renewable_j=farr("renewable_j"),
            grid_connected=np.fromiter(
                (n.grid_connected for n in inputs), dtype=bool, count=count
            ),
            grid_cap_j=farr("grid_cap_j"),
            charge_cap_j=farr("charge_cap_j"),
            discharge_cap_j=farr("discharge_cap_j"),
            z=farr("z"),
            charge_efficiency=farr("charge_efficiency"),
            discharge_efficiency=farr("discharge_efficiency"),
        )

    def row(self, i: int) -> NodeEnergyInputs:
        """Materialise row ``i`` as a scalar :class:`NodeEnergyInputs`."""
        return NodeEnergyInputs(
            node=int(self.nodes[i]),
            is_base_station=bool(self.is_base_station[i]),
            demand_j=float(self.demand_j[i]),
            renewable_j=float(self.renewable_j[i]),
            grid_connected=bool(self.grid_connected[i]),
            grid_cap_j=float(self.grid_cap_j[i]),
            charge_cap_j=float(self.charge_cap_j[i]),
            discharge_cap_j=float(self.discharge_cap_j[i]),
            z=float(self.z[i]),
            charge_efficiency=float(self.charge_efficiency[i]),
            discharge_efficiency=float(self.discharge_efficiency[i]),
        )

    def to_inputs(self) -> List[NodeEnergyInputs]:
        """Materialise the whole batch (scalar-solver fallback path)."""
        return [self.row(i) for i in range(len(self))]

    def take(self, rows: np.ndarray) -> "NodeEnergyBatch":
        """Sub-batch of ``rows`` (index array), preserving row order."""
        return NodeEnergyBatch(
            nodes=self.nodes[rows],
            is_base_station=self.is_base_station[rows],
            demand_j=self.demand_j[rows],
            renewable_j=self.renewable_j[rows],
            grid_connected=self.grid_connected[rows],
            grid_cap_j=self.grid_cap_j[rows],
            charge_cap_j=self.charge_cap_j[rows],
            discharge_cap_j=self.discharge_cap_j[rows],
            z=self.z[rows],
            charge_efficiency=self.charge_efficiency[rows],
            discharge_efficiency=self.discharge_efficiency[rows],
        )


@dataclass
class BatchAllocation:
    """Struct-of-arrays S4 allocation (one row per batch row)."""

    renewable_serve_j: NodeJoules
    renewable_charge_j: NodeJoules
    grid_serve_j: NodeJoules
    grid_charge_j: NodeJoules
    discharge_j: NodeJoules
    spill_j: NodeJoules

    @property
    def grid_draw_j(self) -> NodeJoules:
        """Total grid draw ``g_i + c^g_i`` per row (constraint 14)."""
        return self.grid_serve_j + self.grid_charge_j

    def row(self, i: int) -> NodeEnergyAllocation:
        """Materialise row ``i`` as a scalar allocation."""
        return NodeEnergyAllocation(
            renewable_serve_j=float(self.renewable_serve_j[i]),
            renewable_charge_j=float(self.renewable_charge_j[i]),
            grid_serve_j=float(self.grid_serve_j[i]),
            grid_charge_j=float(self.grid_charge_j[i]),
            discharge_j=float(self.discharge_j[i]),
            spill_j=float(self.spill_j[i]),
        )


def _batched_serve_mode(
    batch: NodeEnergyBatch, grid_price: NodeVec
) -> Tuple[BatchAllocation, NodeVec]:
    """Vectorized :func:`_quadratic_serve_mode` (exact-drift only).

    The per-node objective ``-z (d/eta_d) + (d/eta_d)^2/2 + price * g``
    is strictly convex in the delivered discharge ``d``, so its
    constrained minimiser is the stationary point clamped to the
    feasible box — exactly the candidate the scalar solver's
    evaluate-every-kink ``min`` selects, computed without the per-node
    Python loop.  Every elementwise float64 operation replicates the
    scalar chain, so allocations agree bit for bit.
    """
    demand, renewable = batch.demand_j, batch.renewable_j
    grid = batch.usable_grid_j
    z = batch.z
    eta_d = batch.discharge_efficiency
    r_serve = np.minimum(renewable, demand)
    residual = demand - r_serve

    d_min = np.maximum(0.0, residual - grid)
    d_max = np.minimum(batch.discharge_cap_j, residual)
    infeasible = d_min > d_max + _ENERGY_TOL
    if np.any(infeasible):
        i = int(np.argmax(infeasible))
        raise InfeasibleError(
            f"node {int(batch.nodes[i])}: demand {demand[i]} J exceeds max "
            f"supply {batch.max_supply_j[i]} J (curtailment missing upstream)"
        )
    d_max = np.maximum(d_min, d_max)

    stationary = eta_d * z + eta_d * eta_d * grid_price
    d = np.minimum(np.maximum(stationary, d_min), d_max)

    g_serve = residual - d
    drained = d / eta_d
    objective = -z * drained + 0.5 * drained * drained + grid_price * g_serve
    allocation = BatchAllocation(
        renewable_serve_j=r_serve,
        renewable_charge_j=np.zeros_like(d),
        grid_serve_j=g_serve,
        grid_charge_j=np.zeros_like(d),
        discharge_j=d,
        spill_j=renewable - r_serve,
    )
    return allocation, objective


def _batched_charge_mode(
    batch: NodeEnergyBatch, grid_price: NodeVec
) -> Tuple[BatchAllocation, NodeVec, NodeVec]:
    """Vectorized :func:`_quadratic_charge_mode` (exact-drift only).

    The objective is convex piecewise quadratic in the charge input
    ``c`` with one kink (where the grid starts funding the charge);
    its unconstrained minimiser is the kink clamped between the two
    stationary points, and the constrained minimiser clamps that to
    ``[0, hi]`` — again exactly the scalar candidate ``min``.  Returns
    ``(allocation, objective, feasible)``; rows with ``feasible`` False
    correspond to the scalar solver returning None (demand cannot be
    met without discharging) and carry unspecified values.
    """
    demand, renewable = batch.demand_j, batch.renewable_j
    grid = batch.usable_grid_j
    feasible = ~(demand > renewable + grid + _ENERGY_TOL)
    z = batch.z
    eta_c = batch.charge_efficiency
    hi = np.minimum(batch.charge_cap_j, renewable + grid - demand)
    hi = np.maximum(hi, 0.0)

    kink = renewable - demand  # beyond this, charging draws the grid
    stationary_free = -z / eta_c
    stationary_grid = -z / eta_c - grid_price / (eta_c * eta_c)
    # Unconstrained minimiser of the two-piece convex objective, then
    # clamped to the box (grid_price >= 0 makes the grid-funded
    # stationary point the smaller of the two).
    unconstrained = np.minimum(np.maximum(kink, stationary_grid), stationary_free)
    c = np.minimum(np.maximum(unconstrained, 0.0), hi)

    grid_draw = np.maximum(0.0, demand + c - renewable)
    stored = eta_c * c
    objective = z * stored + 0.5 * stored * stored + grid_price * grid_draw
    r_serve = np.minimum(renewable, demand)
    g_serve = demand - r_serve
    r_charge = np.minimum(renewable - r_serve, c)
    g_charge = c - r_charge
    allocation = BatchAllocation(
        renewable_serve_j=r_serve,
        renewable_charge_j=r_charge,
        grid_serve_j=g_serve,
        grid_charge_j=g_charge,
        discharge_j=np.zeros_like(c),
        spill_j=renewable - r_serve - r_charge,
    )
    return allocation, objective, feasible


def _batched_node_response(
    batch: NodeEnergyBatch, mu: float, control_v: float
) -> Tuple[BatchAllocation, NodeVec]:
    """Vectorized :func:`_node_response` for the exact-drift objective.

    Solves every row's closed-form KKT system at marginal grid price
    ``mu`` in one pass: both modes are evaluated batched and the
    per-row winner selected by the same ``serve <= charge`` comparison
    as the scalar solver.  Users never contribute to ``P(t)``, so their
    effective grid price is zero.
    """
    grid_price = np.where(batch.is_base_station, control_v * mu, 0.0)
    serve_alloc, serve_obj = _batched_serve_mode(batch, grid_price)
    charge_alloc, charge_obj, charge_ok = _batched_charge_mode(batch, grid_price)
    serve_wins = ~charge_ok | (serve_obj <= charge_obj)

    def pick(serve_field: np.ndarray, charge_field: np.ndarray) -> np.ndarray:
        return np.where(serve_wins, serve_field, charge_field)

    allocation = BatchAllocation(
        renewable_serve_j=pick(
            serve_alloc.renewable_serve_j, charge_alloc.renewable_serve_j
        ),
        renewable_charge_j=pick(
            serve_alloc.renewable_charge_j, charge_alloc.renewable_charge_j
        ),
        grid_serve_j=pick(serve_alloc.grid_serve_j, charge_alloc.grid_serve_j),
        grid_charge_j=pick(
            serve_alloc.grid_charge_j, charge_alloc.grid_charge_j
        ),
        discharge_j=pick(serve_alloc.discharge_j, charge_alloc.discharge_j),
        spill_j=pick(serve_alloc.spill_j, charge_alloc.spill_j),
    )
    return allocation, np.where(serve_wins, serve_obj, charge_obj)


def _batched_grid_draw_j(
    batch: NodeEnergyBatch, mu: float, control_v: float
) -> NodeVec:
    """Grid draw of :func:`_batched_node_response` without the allocation.

    The bisection residual only needs ``sum grid_draw_j(mu)``, so this
    re-derives exactly the picked ``grid_serve + grid_charge`` rows —
    every elementwise float64 operation is the same chain as the full
    kernel (mode objectives included), just skipping the six-field
    :class:`BatchAllocation` assembly and the infeasibility scan (the
    caller's pre-check already guarantees feasible serve boxes).
    """
    grid_price = np.where(batch.is_base_station, control_v * mu, 0.0)
    demand, renewable = batch.demand_j, batch.renewable_j
    grid = batch.usable_grid_j
    z = batch.z

    # Serve mode (same chain as _batched_serve_mode).
    eta_d = batch.discharge_efficiency
    r_serve = np.minimum(renewable, demand)
    residual = demand - r_serve
    d_min = np.maximum(0.0, residual - grid)
    d_max = np.minimum(batch.discharge_cap_j, residual)
    d_max = np.maximum(d_min, d_max)
    stationary = eta_d * z + eta_d * eta_d * grid_price
    d = np.minimum(np.maximum(stationary, d_min), d_max)
    g_serve = residual - d
    drained = d / eta_d
    serve_obj = -z * drained + 0.5 * drained * drained + grid_price * g_serve

    # Charge mode (same chain as _batched_charge_mode).
    eta_c = batch.charge_efficiency
    charge_ok = ~(demand > renewable + grid + _ENERGY_TOL)
    hi = np.minimum(batch.charge_cap_j, renewable + grid - demand)
    hi = np.maximum(hi, 0.0)
    kink = renewable - demand
    stationary_free = -z / eta_c
    stationary_grid = -z / eta_c - grid_price / (eta_c * eta_c)
    unconstrained = np.minimum(np.maximum(kink, stationary_grid), stationary_free)
    c = np.minimum(np.maximum(unconstrained, 0.0), hi)
    grid_draw = np.maximum(0.0, demand + c - renewable)
    stored = eta_c * c
    charge_obj = z * stored + 0.5 * stored * stored + grid_price * grid_draw
    g_charge = c - np.minimum(renewable - r_serve, c)

    # Winner rows: grid_serve + grid_charge exactly as the pick() sums.
    serve_wins = ~charge_ok | (serve_obj <= charge_obj)
    return np.where(serve_wins, g_serve + 0.0, (demand - r_serve) + g_charge)


def _serve_mode_allocation(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float]:
    """Discharge-mode optimum: serve demand, never charge.

    Fills demand from the three sources in ascending unit cost
    (renewable: 0, discharge: ``-z / eta_d`` per delivered joule, grid:
    ``grid_price``) and returns the allocation with its ``Psi-hat_4``
    contribution (minus the ``V f(P)`` coupling term).
    """
    sources = sorted(
        [
            ("r", 0.0, min(inputs.renewable_j, inputs.demand_j)),
            (
                "d",
                -inputs.z / inputs.discharge_efficiency,
                inputs.discharge_cap_j,
            ),
            ("g", grid_price, inputs.usable_grid_j),
        ],
        key=lambda item: item[1],
    )
    remaining = inputs.demand_j
    amounts = {"r": 0.0, "d": 0.0, "g": 0.0}
    objective = 0.0
    for name, unit_cost, cap in sources:
        take = min(remaining, cap)
        if take > 0:
            amounts[name] = take
            objective += unit_cost * take
            remaining -= take
    if remaining > _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: demand {inputs.demand_j} J exceeds max "
            f"supply {inputs.max_supply_j} J (curtailment missing upstream)"
        )
    allocation = NodeEnergyAllocation(
        renewable_serve_j=amounts["r"],
        grid_serve_j=amounts["g"],
        discharge_j=amounts["d"],
        spill_j=inputs.renewable_j - amounts["r"],
    )
    return allocation, objective


def _charge_mode_allocation(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float] | None:
    """Charge-mode optimum: serve demand without discharging, charge.

    The only free variable after eliminating the balance equations is
    ``rE`` (renewable energy serving demand); the objective is
    piecewise linear in ``rE``, so evaluating it at every kink and
    endpoint is exact.  Returns None when demand cannot be met without
    discharging.
    """
    supply = inputs.renewable_j + inputs.usable_grid_j
    if inputs.demand_j > supply + _ENERGY_TOL:
        return None

    lo = max(0.0, inputs.demand_j - inputs.usable_grid_j)
    hi = min(inputs.renewable_j, inputs.demand_j)
    if lo > hi + _ENERGY_TOL:
        return None
    hi = max(lo, hi)

    z = inputs.z
    ccap = inputs.charge_cap_j
    eta_c = inputs.charge_efficiency
    want_grid_charge = inputs.grid_connected and (z * eta_c + grid_price) < 0.0

    def evaluate(r_serve: float) -> Tuple[float, NodeEnergyAllocation]:
        g_serve = inputs.demand_j - r_serve
        r_charge = min(inputs.renewable_j - r_serve, ccap) if z < 0 else 0.0
        r_charge = max(0.0, r_charge)
        g_charge = 0.0
        if want_grid_charge:
            g_charge = max(
                0.0,
                min(inputs.usable_grid_j - g_serve, ccap - r_charge),
            )
        objective = (
            grid_price * g_serve
            + z * eta_c * r_charge
            + (z * eta_c + grid_price) * g_charge
        )
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            renewable_charge_j=r_charge,
            grid_serve_j=g_serve,
            grid_charge_j=g_charge,
            spill_j=inputs.renewable_j - r_serve - r_charge,
        )
        return objective, allocation

    candidates = {lo, hi}
    for kink in (
        inputs.renewable_j - ccap,  # renewable-charge cap switch
        inputs.demand_j - inputs.usable_grid_j + ccap,  # grid-charge room
    ):
        if lo < kink < hi:
            candidates.add(kink)

    best = min((evaluate(r) for r in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _quadratic_charge_mode(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float] | None:
    """Exact-drift charge mode.

    Minimises ``z (eta_c c) + (eta_c c)^2 / 2 + price * grid`` over the
    charge *input* ``c``.  With the quadratic self-term the objective
    is convex piecewise quadratic in ``c`` with one kink (where the
    grid starts funding the charge), so evaluating the clamped
    stationary points and the kink is exact.  Returns None when demand
    cannot be met without discharging.
    """
    demand, renewable = inputs.demand_j, inputs.renewable_j
    grid = inputs.usable_grid_j
    if demand > renewable + grid + _ENERGY_TOL:
        return None
    z = inputs.z
    eta_c = inputs.charge_efficiency
    hi = min(inputs.charge_cap_j, renewable + grid - demand)
    hi = max(hi, 0.0)

    candidates = {0.0, hi}
    kink = renewable - demand  # beyond this, charging draws the grid
    stationary_free = -z / eta_c
    stationary_grid = -z / eta_c - grid_price / (eta_c * eta_c)
    for point in (stationary_free, stationary_grid, kink):
        if 0.0 < point < hi:
            candidates.add(point)

    def evaluate(c: float) -> Tuple[float, NodeEnergyAllocation]:
        grid_draw = max(0.0, demand + c - renewable)
        stored = eta_c * c
        objective = z * stored + 0.5 * stored * stored + grid_price * grid_draw
        r_serve = min(renewable, demand)
        g_serve = demand - r_serve
        r_charge = min(renewable - r_serve, c)
        g_charge = c - r_charge
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            renewable_charge_j=r_charge,
            grid_serve_j=g_serve,
            grid_charge_j=g_charge,
            spill_j=renewable - r_serve - r_charge,
        )
        return objective, allocation

    best = min((evaluate(c) for c in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _quadratic_serve_mode(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float]:
    """Exact-drift discharge mode.

    Minimises ``-z (d/eta_d) + (d/eta_d)^2 / 2 + price * grid`` over
    the *delivered* discharge ``d`` (the battery drains ``d / eta_d``).
    Convex quadratic in ``d`` on the feasible interval, so the clamped
    stationary point is exact.
    """
    demand, renewable = inputs.demand_j, inputs.renewable_j
    grid = inputs.usable_grid_j
    z = inputs.z
    eta_d = inputs.discharge_efficiency
    r_serve = min(renewable, demand)
    residual = demand - r_serve

    d_min = max(0.0, residual - grid)
    d_max = min(inputs.discharge_cap_j, residual)
    if d_min > d_max + _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: demand {demand} J exceeds max supply "
            f"{inputs.max_supply_j} J (curtailment missing upstream)"
        )
    d_max = max(d_min, d_max)

    candidates = {d_min, d_max}
    stationary = eta_d * z + eta_d * eta_d * grid_price
    if d_min < stationary < d_max:
        candidates.add(stationary)

    def evaluate(d: float) -> Tuple[float, NodeEnergyAllocation]:
        g_serve = residual - d
        drained = d / eta_d
        objective = -z * drained + 0.5 * drained * drained + grid_price * g_serve
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            grid_serve_j=g_serve,
            discharge_j=d,
            spill_j=renewable - r_serve,
        )
        return objective, allocation

    best = min((evaluate(d) for d in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _quadratic_grid_draw_j(
    inputs: NodeEnergyInputs, mu: float, control_v: float
) -> float:
    """Grid draw of :func:`_node_response` (exact drift), allocation-free.

    Scalar transcription of :func:`_batched_grid_draw_j` for one row:
    the same closed-form KKT chain the quadratic modes evaluate, kept
    operation-for-operation identical so the bisection residual built
    on it reproduces the full solver's draws bit for bit — without
    constructing two candidate allocations per probe.
    """
    grid_price = control_v * mu if inputs.is_base_station else 0.0
    demand, renewable = inputs.demand_j, inputs.renewable_j
    grid = inputs.usable_grid_j
    z = inputs.z

    # Serve mode (chain of _quadratic_serve_mode at the clipped optimum).
    eta_d = inputs.discharge_efficiency
    r_serve = min(renewable, demand)
    residual = demand - r_serve
    d_min = max(0.0, residual - grid)
    d_max = max(d_min, min(inputs.discharge_cap_j, residual))
    stationary = eta_d * z + eta_d * eta_d * grid_price
    d = min(max(stationary, d_min), d_max)
    g_serve = residual - d
    drained = d / eta_d
    serve_obj = -z * drained + 0.5 * drained * drained + grid_price * g_serve

    # Charge mode (chain of _quadratic_charge_mode at the clipped optimum).
    eta_c = inputs.charge_efficiency
    charge_ok = not demand > renewable + grid + _ENERGY_TOL
    hi = max(min(inputs.charge_cap_j, renewable + grid - demand), 0.0)
    kink = renewable - demand
    stationary_free = -z / eta_c
    stationary_grid = -z / eta_c - grid_price / (eta_c * eta_c)
    c = min(max(min(max(kink, stationary_grid), stationary_free), 0.0), hi)
    grid_draw = max(0.0, demand + c - renewable)
    stored = eta_c * c
    charge_obj = z * stored + 0.5 * stored * stored + grid_price * grid_draw
    g_charge = c - min(renewable - r_serve, c)

    if not charge_ok or serve_obj <= charge_obj:
        return g_serve + 0.0
    return (demand - r_serve) + g_charge


def _node_response(
    inputs: NodeEnergyInputs,
    mu: float,
    control_v: float,
    exact_drift: bool = False,
) -> Tuple[NodeEnergyAllocation, float]:
    """Optimal allocation of one node facing marginal grid price ``mu``.

    Users never contribute to ``P(t)`` (the provider only pays for
    base-station draws), so their effective grid price is zero.
    """
    grid_price = control_v * mu if inputs.is_base_station else 0.0
    if exact_drift:
        serve = _quadratic_serve_mode(inputs, grid_price)
        charge = _quadratic_charge_mode(inputs, grid_price)
    else:
        serve = _serve_mode_allocation(inputs, grid_price)
        charge = _charge_mode_allocation(inputs, grid_price)
    if charge is None or serve[1] <= charge[1]:
        return serve
    return charge


def _allocation_given_grid(
    inputs: NodeEnergyInputs, grid_draw_j: Joules, exact_drift: bool = False
) -> NodeEnergyAllocation:
    """Node-optimal allocation with total grid draw pinned (``z < 0``).

    Used by the marginal-node repair step: for a node with ``z < 0``
    the optimum given a grid budget ``p`` maximises charging — demand
    is covered by renewable + grid first (discharging only to fill any
    gap), and all leftovers charge the battery up to its cap (in
    exact-drift mode additionally capped at ``-z``, where the quadratic
    drift term turns charging unprofitable).
    """
    p = min(grid_draw_j, inputs.usable_grid_j)
    shortfall = max(0.0, inputs.demand_j - inputs.renewable_j - p)
    discharge = min(shortfall, inputs.discharge_cap_j)
    if shortfall > discharge + _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: grid budget {p} J cannot meet demand"
        )
    r_serve = min(inputs.renewable_j, inputs.demand_j - discharge)
    g_serve = inputs.demand_j - discharge - r_serve
    headroom = inputs.charge_cap_j if discharge <= _ENERGY_TOL else 0.0
    if exact_drift:
        # The quadratic drift makes charging unprofitable past a
        # stored level of -z, i.e. an input of -z / eta_c.
        headroom = min(
            headroom, max(0.0, -inputs.z) / inputs.charge_efficiency
        )
    r_charge = min(inputs.renewable_j - r_serve, headroom)
    g_charge = min(p - g_serve, headroom - r_charge)
    r_charge = max(0.0, r_charge)
    g_charge = max(0.0, g_charge)
    return NodeEnergyAllocation(
        renewable_serve_j=r_serve,
        renewable_charge_j=r_charge,
        grid_serve_j=g_serve,
        grid_charge_j=g_charge,
        discharge_j=discharge,
        spill_j=inputs.renewable_j - r_serve - r_charge,
    )


class EnergyManager:
    """The S4 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        kind: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        exact_drift: Optional[bool] = None,
        checker: Optional[ContractChecker] = None,
        cross_check: bool = False,
        cross_check_tol: float = 1e-8,
    ) -> None:
        self._model = model
        self._kind = kind
        self._v = model.params.control_v
        if exact_drift is None:
            exact_drift = model.params.exact_battery_drift
        self._exact_drift = exact_drift
        self._checker = checker
        self._cross_check = cross_check
        self._cross_check_tol = cross_check_tol

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every S4 allocation against Eqs. 3 and 9-14."""
        self._checker = checker

    @property
    def exact_drift(self) -> bool:
        """Whether S4 minimises the exact quadratic battery drift."""
        return self._exact_drift

    @property
    def kind(self) -> EnergySolverKind:
        """The configured solver."""
        return self._kind

    def manage(
        self,
        inputs: Union[List[NodeEnergyInputs], NodeEnergyBatch],
        cost: Optional[QuadraticCost] = None,
    ) -> EnergyManagementDecision:
        """Solve S4 for one slot over all nodes.

        Args:
            inputs: per-node demand/supply state — either a list of
                scalar :class:`NodeEnergyInputs` (the preserved
                reference path) or a :class:`NodeEnergyBatch`
                struct-of-arrays, which unlocks the closed-form
                vectorized kernel for the exact-drift price
                decomposition (other solver/drift combinations fall
                back to the scalar path on materialised rows).
            cost: the slot's generation cost function; defaults to the
                model's flat tariff (time-of-use callers pass
                ``model.cost_at(slot)``).
        """
        if cost is None:
            cost = self._model.cost
        if isinstance(inputs, NodeEnergyBatch):
            if (
                self._kind is EnergySolverKind.PRICE_DECOMPOSITION
                and self._exact_drift
            ):
                return self._manage_batched(inputs, cost)
            inputs = inputs.to_inputs()
        for node_inputs in inputs:
            if node_inputs.demand_j > node_inputs.max_supply_j + _ENERGY_TOL:
                raise InfeasibleError(
                    f"node {node_inputs.node}: demand {node_inputs.demand_j} J "
                    f"exceeds max supply {node_inputs.max_supply_j} J; the "
                    "controller's curtailment pass must run first"
                )
        if self._kind is EnergySolverKind.PRICE_DECOMPOSITION:
            allocations = self._solve_price_decomposition(inputs, cost)
            if self._cross_check:
                self._cross_check_slsqp(inputs, allocations, cost)
        elif self._kind is EnergySolverKind.SLSQP:
            allocations = self._solve_slsqp(inputs, cost)
        else:
            allocations = self._solve_grid_only(inputs)
        bs_set = {n.node for n in inputs if n.is_base_station}
        decision = self._assemble(allocations, bs_set, cost)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_energy(inputs, decision)
        return decision

    def _manage_batched(
        self, batch: NodeEnergyBatch, cost: QuadraticCost
    ) -> EnergyManagementDecision:
        """Array fast path of :meth:`manage` (exact-drift KKT kernel)."""
        over = batch.demand_j > batch.max_supply_j + _ENERGY_TOL
        if np.any(over):
            i = int(np.argmax(over))
            raise InfeasibleError(
                f"node {int(batch.nodes[i])}: demand {batch.demand_j[i]} J "
                f"exceeds max supply {batch.max_supply_j[i]} J; the "
                "controller's curtailment pass must run first"
            )
        allocations = self._solve_price_decomposition_batched(batch, cost)
        if self._cross_check:
            self._cross_check_slsqp(batch.to_inputs(), allocations, cost)
        bs_set = {int(n) for n in batch.nodes[batch.is_base_station]}
        decision = self._assemble(allocations, bs_set, cost)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_energy(batch.to_inputs(), decision)
        return decision

    def _assemble(
        self,
        allocations: Dict[NodeId, NodeEnergyAllocation],
        bs_set: set,
        cost: QuadraticCost,
    ) -> EnergyManagementDecision:
        total_draw = sum(
            alloc.grid_draw_j for node, alloc in allocations.items() if node in bs_set
        )
        return EnergyManagementDecision(
            allocations=allocations,
            bs_grid_draw_j=total_draw,
            cost=cost.value(total_draw),
        )

    # ------------------------------------------------------------------
    # Price decomposition
    # ------------------------------------------------------------------

    def _solve_price_decomposition(
        self, inputs: List[NodeEnergyInputs], cost: QuadraticCost
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        users = [n for n in inputs if not n.is_base_station]
        stations = [n for n in inputs if n.is_base_station]

        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for node_inputs in users:  # noqa: R040 - reference object path; the array path batches users through _batched_node_response
            allocations[node_inputs.node], _ = _node_response(
                node_inputs, 0.0, self._v, self._exact_drift
            )
        if stations:
            self._price_stations(stations, cost, allocations)
        return allocations

    def _price_stations(
        self,
        stations: List[NodeEnergyInputs],
        cost: QuadraticCost,
        allocations: Dict[NodeId, NodeEnergyAllocation],
    ) -> None:
        """Scalar station-pricing fixed point ``mu = f'(P(mu))``.

        Shared by the reference solver and the batched solver's
        small-fleet fallback: with only a handful of base stations the
        per-iteration numpy dispatch of the vectorized residual costs
        more than pricing the rows as Python floats, and the float64
        chains are identical either way.  Appends the station rows to
        ``allocations`` in input order.
        """

        if self._exact_drift:
            # Closed-form residual: same float64 chain as the full
            # response, minus the per-probe allocation objects.
            def bs_total_draw(mu: float) -> float:
                return sum(
                    _quadratic_grid_draw_j(n, mu, self._v) for n in stations
                )
        else:
            def bs_total_draw(mu: float) -> float:
                return sum(
                    _node_response(n, mu, self._v, self._exact_drift)[
                        0
                    ].grid_draw_j
                    for n in stations
                )

        cap = sum(n.usable_grid_j for n in stations)
        mu_lo = cost.derivative(0.0)
        mu_hi = cost.derivative(cap) + max(1.0, cost.derivative(cap)) * 1e-6
        mu_star = bisect_root(
            lambda mu: mu - cost.derivative(bs_total_draw(mu)),
            mu_lo,
            mu_hi,
            tol=_PRICE_BISECT_TOL,
        )

        eps = max(abs(mu_star), mu_lo, 1e-9) * _PRICE_PROBE_REL
        high_side = {
            n.node: _node_response(n, mu_star + eps, self._v, self._exact_drift)[0]
            for n in stations
        }
        low_side = {
            n.node: _node_response(n, mu_star - eps, self._v, self._exact_drift)[0]
            for n in stations
        }
        p_plus = sum(a.grid_draw_j for a in high_side.values())
        p_minus = sum(a.grid_draw_j for a in low_side.values())

        if cost.a > 0:
            p_target = min(max(cost.inverse_derivative(mu_star), p_plus), p_minus)
        else:
            p_target = p_plus

        extra = p_target - p_plus
        for node_inputs in stations:
            allocations[node_inputs.node] = high_side[node_inputs.node]
        if extra > _ENERGY_TOL:
            # Marginal repair: nodes whose draw differs across mu* can
            # absorb the interior allocation (z < 0 handled exactly;
            # the z >= 0 corner cannot occur with the paper's huge
            # V*gamma_max shift, and falls back to the vertex solution).
            for node_inputs in stations:
                gap = (
                    low_side[node_inputs.node].grid_draw_j
                    - high_side[node_inputs.node].grid_draw_j
                )
                if gap <= _ENERGY_TOL or extra <= _ENERGY_TOL:
                    continue
                if node_inputs.z >= 0:
                    continue
                take = min(gap, extra)
                target_draw = high_side[node_inputs.node].grid_draw_j + take
                allocations[node_inputs.node] = _allocation_given_grid(
                    node_inputs, target_draw, self._exact_drift
                )
                extra -= take

    def _solve_price_decomposition_batched(
        self, batch: NodeEnergyBatch, cost: QuadraticCost
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        """Closed-form vectorized price decomposition (exact drift).

        One batched KKT pass replaces the per-node convex programs: the
        user rows respond at price zero in a single kernel call, and the
        base-station fixed point ``mu = f'(P(mu))`` is found by
        :func:`bisect_root_vec` where every residual evaluation prices
        *all* stations simultaneously.  The float64 operation chains
        replicate the scalar solver exactly, so the allocation dict is
        bit-identical to :meth:`_solve_price_decomposition` on the same
        rows — insertion order included (users first, then stations).
        """
        user_rows = np.flatnonzero(~batch.is_base_station)
        bs_rows = np.flatnonzero(batch.is_base_station)
        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        if user_rows.size:
            users = batch.take(user_rows)
            user_alloc, _ = _batched_node_response(users, 0.0, self._v)
            for j in range(len(users)):  # noqa: R040 - decision-dict materialisation from the batched kernel: one dataclass per node, no per-node solves
                allocations[int(users.nodes[j])] = user_alloc.row(j)
        if not bs_rows.size:
            return allocations
        stations = batch.take(bs_rows)
        if bs_rows.size <= _SCALAR_PRICING_MAX:
            # With a handful of stations the numpy dispatch per
            # bisection step dominates: price the rows as floats
            # through the shared scalar kernel (same bits).
            self._price_stations(stations.to_inputs(), cost, allocations)
            return allocations

        def residual(mu_vec: np.ndarray) -> np.ndarray:
            mu = float(mu_vec[0])
            draw = float(seq_sum(_batched_grid_draw_j(stations, mu, self._v)))
            return np.array([mu - cost.derivative(draw)])

        cap = float(seq_sum(stations.usable_grid_j))
        mu_lo = cost.derivative(0.0)
        mu_hi = cost.derivative(cap) + max(1.0, cost.derivative(cap)) * 1e-6
        mu_star = float(
            bisect_root_vec(
                residual,
                np.array([mu_lo]),
                np.array([mu_hi]),
                tol=_PRICE_BISECT_TOL,
            )[0]
        )

        eps = max(abs(mu_star), mu_lo, 1e-9) * _PRICE_PROBE_REL
        high_alloc, _ = _batched_node_response(stations, mu_star + eps, self._v)
        low_alloc, _ = _batched_node_response(stations, mu_star - eps, self._v)
        high_draw = high_alloc.grid_draw_j
        low_draw = low_alloc.grid_draw_j
        p_plus = float(seq_sum(high_draw))
        p_minus = float(seq_sum(low_draw))

        if cost.a > 0:
            p_target = min(max(cost.inverse_derivative(mu_star), p_plus), p_minus)
        else:
            p_target = p_plus

        extra = p_target - p_plus
        for j in range(len(stations)):  # noqa: R040 - decision-dict materialisation from the batched kernel: one dataclass per node, no per-node solves
            allocations[int(stations.nodes[j])] = high_alloc.row(j)
        if extra > _ENERGY_TOL:
            # Marginal repair (same staircase logic as the scalar
            # solver): only the few stations whose draw jumps across
            # mu* are touched, so the scalar helper is fine here.
            for j in range(len(stations)):
                gap = float(low_draw[j]) - float(high_draw[j])
                if gap <= _ENERGY_TOL or extra <= _ENERGY_TOL:
                    continue
                if stations.z[j] >= 0:
                    continue
                take = min(gap, extra)
                target_draw = float(high_draw[j]) + take
                allocations[int(stations.nodes[j])] = _allocation_given_grid(
                    stations.row(j), target_draw, self._exact_drift
                )
                extra -= take
        return allocations

    def _cross_check_slsqp(
        self,
        inputs: List[NodeEnergyInputs],
        allocations: Dict[NodeId, NodeEnergyAllocation],
        cost: QuadraticCost,
    ) -> None:
        """Opt-in audit: assert agreement with the SLSQP reference.

        Compares the physically determined per-node aggregates — grid
        draw ``g + c^g``, delivered discharge ``d``, and total charge
        input ``c^r + c^g`` — rather than the raw five-way split, which
        is degenerate (shifting grid energy between serve and charge
        with renewable compensating leaves the objective unchanged).
        Raises :class:`SolverError` on disagreement beyond
        ``cross_check_tol`` relative to the node's supply scale.

        SLSQP is warm-started *at the candidate allocation*: from a
        cold start its ``ftol`` termination only locates the argmin of
        a quadratic to ~sqrt(ftol), far looser than the 1e-8 default
        here.  Started at a true KKT point it stays put (bit-level
        agreement); started at a suboptimal point the line search walks
        away from it and the comparison fails — exactly the audit we
        want.
        """
        warm = np.zeros(len(inputs) * 5)
        for idx, node_inputs in enumerate(inputs):
            mine = allocations[node_inputs.node]
            warm[idx * 5 : idx * 5 + 5] = (
                mine.renewable_serve_j,
                mine.renewable_charge_j,
                mine.grid_serve_j,
                mine.grid_charge_j,
                mine.discharge_j,
            )
        reference = self._solve_slsqp(inputs, cost, warm_start=warm)
        tol = self._cross_check_tol
        for node_inputs in inputs:
            mine = allocations[node_inputs.node]
            ref = reference[node_inputs.node]
            denom = max(1.0, node_inputs.demand_j, node_inputs.max_supply_j)
            for name, a, b in (
                ("grid_draw_j", mine.grid_draw_j, ref.grid_draw_j),
                ("discharge_j", mine.discharge_j, ref.discharge_j),
                ("charge_j", mine.charge_j, ref.charge_j),
            ):
                if abs(a - b) > tol * denom:
                    raise SolverError(
                        f"S4 cross-check: node {node_inputs.node} {name} "
                        f"disagrees with SLSQP ({a} vs {b}, "
                        f"tol {tol * denom})"
                    )

    # ------------------------------------------------------------------
    # SLSQP cross-check solver
    # ------------------------------------------------------------------

    def _solve_slsqp(
        self,
        inputs: List[NodeEnergyInputs],
        cost: QuadraticCost,
        warm_start: Optional[np.ndarray] = None,
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        """General-purpose NLP: variables [r, c_r, g, c_g, d] per node.

        Complementarity (9) is omitted from the relaxation because an
        equal-objective complementary point always exists (module docs
        in DESIGN.md); the returned allocation nets charge against
        discharge where both are positive.

        Args:
            warm_start: optional ``(5 n,)`` starting point (a feasible
                candidate allocation); defaults to the greedy
                r -> g -> d serve split.
        """
        n = len(inputs)
        if n == 0:
            return {}
        v = self._v

        def unpack(x: np.ndarray) -> np.ndarray:
            return x.reshape(n, 5)

        bs_mask = np.array([i.is_base_station for i in inputs])

        def total_draw(x: np.ndarray) -> float:
            vars_ = unpack(x)
            return float(np.sum((vars_[:, 2] + vars_[:, 3])[bs_mask]))

        z = np.array([i.z for i in inputs])
        # Normalise the objective: drift terms scale like |z| * caps,
        # which can be 1e8+, and SLSQP's line search stalls on badly
        # scaled problems.  Scaling does not move the argmin.
        scale = max(float(np.abs(z).max()), v * cost.derivative(0.0), 1.0)

        exact_drift = self._exact_drift
        eta_c = np.array([i.charge_efficiency for i in inputs])
        eta_d = np.array([i.discharge_efficiency for i in inputs])

        def objective(x: np.ndarray) -> float:
            vars_ = unpack(x)
            charge = vars_[:, 1] + vars_[:, 3]
            discharge = vars_[:, 4]
            # Level delta: eta_c * input charge - delivered / eta_d.
            net = eta_c * charge - discharge / eta_d
            raw = float(np.dot(z, net)) + v * cost.value(
                max(total_draw(x), 0.0)
            )
            if exact_drift:
                raw += 0.5 * float(np.dot(net, net))
            return raw / scale

        constraints = []
        for idx, node_inputs in enumerate(inputs):
            base = idx * 5

            def demand_balance(x: np.ndarray, b: int = base, e: float = node_inputs.demand_j) -> float:
                return x[b] + x[b + 2] + x[b + 4] - e

            def renewable_cap(x: np.ndarray, b: int = base, r: float = node_inputs.renewable_j) -> float:
                return r - x[b] - x[b + 1]

            def charge_cap(x: np.ndarray, b: int = base, c: float = node_inputs.charge_cap_j) -> float:
                return c - x[b + 1] - x[b + 3]

            def grid_cap(x: np.ndarray, b: int = base, p: float = node_inputs.usable_grid_j) -> float:
                return p - x[b + 2] - x[b + 3]

            constraints.append({"type": "eq", "fun": demand_balance})
            constraints.append({"type": "ineq", "fun": renewable_cap})
            constraints.append({"type": "ineq", "fun": charge_cap})
            constraints.append({"type": "ineq", "fun": grid_cap})

        bounds = []
        x0 = np.zeros(n * 5)
        for idx, node_inputs in enumerate(inputs):
            grid = node_inputs.usable_grid_j
            bounds.extend(
                [
                    (0.0, node_inputs.renewable_j),
                    (0.0, min(node_inputs.charge_cap_j, node_inputs.renewable_j)),
                    (0.0, grid),
                    (0.0, min(node_inputs.charge_cap_j, grid)),
                    (0.0, node_inputs.discharge_cap_j),
                ]
            )
            # Feasible start: serve demand greedily r -> g -> d.
            r = min(node_inputs.renewable_j, node_inputs.demand_j)
            g = min(grid, node_inputs.demand_j - r)
            d = node_inputs.demand_j - r - g
            x0[idx * 5 + 0] = r
            x0[idx * 5 + 2] = g
            x0[idx * 5 + 4] = max(0.0, d)

        result = None
        start = x0 if warm_start is None else warm_start
        for attempt in range(3):
            result = optimize.minimize(
                objective,
                start,
                method="SLSQP",
                bounds=bounds,
                constraints=constraints,
                options={"maxiter": 500, "ftol": 1e-12},
            )
            if result.success:
                break
            # Restart from the stalled point nudged into the interior;
            # SLSQP line searches can stall at degenerate vertices.
            start = 0.99 * result.x + 0.01 * x0
        assert result is not None
        if not result.success:
            raise SolverError(f"SLSQP failed: {result.message}")

        vars_ = unpack(result.x)
        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for idx, node_inputs in enumerate(inputs):
            r, c_r, g, c_g, d = (max(0.0, float(x)) for x in vars_[idx])
            # Net simultaneous charge/discharge (equal-objective shift).
            overlap = min(c_r + c_g, d)
            if overlap > FEASIBILITY_EPS:
                from_renewable = min(overlap, c_r)
                c_r -= from_renewable
                c_g -= overlap - from_renewable
                d -= overlap
                r = min(node_inputs.renewable_j, r + from_renewable)
            allocations[node_inputs.node] = NodeEnergyAllocation(
                renewable_serve_j=r,
                renewable_charge_j=c_r,
                grid_serve_j=g,
                grid_charge_j=c_g,
                discharge_j=d,
                spill_j=max(0.0, node_inputs.renewable_j - r - c_r),
            )
        return allocations

    # ------------------------------------------------------------------
    # Naive baseline
    # ------------------------------------------------------------------

    def _solve_grid_only(
        self, inputs: List[NodeEnergyInputs]
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        """Renewables serve demand, grid covers the rest, no battery.

        Disconnected users with insufficient renewables fall back to
        the battery (forced discharge) so demand stays met.
        """
        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for node_inputs in inputs:
            r = min(node_inputs.renewable_j, node_inputs.demand_j)
            g = min(node_inputs.usable_grid_j, node_inputs.demand_j - r)
            d = min(node_inputs.discharge_cap_j, node_inputs.demand_j - r - g)
            if node_inputs.demand_j - r - g - d > _ENERGY_TOL:
                raise InfeasibleError(
                    f"node {node_inputs.node}: grid-only policy cannot meet demand"
                )
            allocations[node_inputs.node] = NodeEnergyAllocation(
                renewable_serve_j=r,
                grid_serve_j=g,
                discharge_j=d,
                spill_j=node_inputs.renewable_j - r,
            )
        return allocations

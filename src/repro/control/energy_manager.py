"""S4 — energy management (Section IV-C-4).

Minimises ``Psi-hat_4 = sum_i z_i (c_i - d_i) + V f(P)`` subject to the
energy constraints (9)-(14), where ``P = sum_{b in BS} (g_b + c^g_b)``
is the total base-station grid draw.  Three solvers:

* ``PRICE_DECOMPOSITION`` (default) — exact for the paper's strictly
  convex quadratic ``f``: nodes respond optimally to a marginal grid
  price ``mu``; bisection finds the fixed point ``mu = f'(P(mu))``;
  a marginal-node repair step handles the staircase discontinuity of
  ``P(mu)`` so interior optima (partial charging) are recovered.
* ``SLSQP`` — scipy general-purpose NLP over all node variables,
  used as a cross-check in the test suite.
* ``GRID_ONLY`` — a naive baseline: renewables serve demand, the grid
  covers the rest, the battery is never used.

Deviation from the paper noted in DESIGN.md: Eq. (3) forces the
renewable output to be fully consumed (``R = r + c^r``), which is
infeasible whenever the battery is full and demand is low; we allow
spilling (``r + c^r <= R``) and report the spilled energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.constants import FEASIBILITY_EPS
from repro.contracts import ContractChecker
from repro.control.decisions import EnergyManagementDecision, NodeEnergyAllocation
from repro.energy.cost import QuadraticCost
from repro.exceptions import InfeasibleError, SolverError
from repro.model import NetworkModel
from repro.solvers.bisection import bisect_root
from repro.types import EnergySolverKind, NodeId
from repro.units import DollarsPerJoule, Joules

#: Bisection bracket tolerance: must be far below the +/- probe offset
#: used by the marginal repair step, or both probes can land on the
#: same side of a response discontinuity and miss the interior optimum.
_PRICE_BISECT_TOL = 1e-10
#: Relative +/- probe offset around the fixed-point price.
_PRICE_PROBE_REL = 1e-3
_ENERGY_TOL = 1e-6


@dataclass(frozen=True)
class NodeEnergyInputs:
    """Everything S4 needs to know about one node for one slot.

    All energies in joules.  ``charge_cap_j``/``discharge_cap_j`` are
    the *effective* caps — constraints (11)/(12) already intersected
    with the battery's current headroom and level.  Conventions with
    storage losses: ``charge`` amounts are *input* energy (the battery
    stores ``eta_c`` of them); ``discharge`` amounts are *delivered*
    energy (the battery drains ``1/eta_d`` of them), so
    ``discharge_cap_j`` is the deliverable cap.
    """

    node: NodeId
    is_base_station: bool
    demand_j: Joules
    renewable_j: Joules
    grid_connected: bool
    grid_cap_j: Joules
    charge_cap_j: Joules
    discharge_cap_j: Joules
    z: Joules
    charge_efficiency: float = 1.0
    discharge_efficiency: float = 1.0

    @property
    def usable_grid_j(self) -> Joules:
        """Grid supply available this slot (0 when disconnected)."""
        return self.grid_cap_j if self.grid_connected else 0.0

    @property
    def max_supply_j(self) -> Joules:
        """Most demand this node could possibly serve this slot."""
        return self.renewable_j + self.usable_grid_j + self.discharge_cap_j


def _serve_mode_allocation(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float]:
    """Discharge-mode optimum: serve demand, never charge.

    Fills demand from the three sources in ascending unit cost
    (renewable: 0, discharge: ``-z / eta_d`` per delivered joule, grid:
    ``grid_price``) and returns the allocation with its ``Psi-hat_4``
    contribution (minus the ``V f(P)`` coupling term).
    """
    sources = sorted(
        [
            ("r", 0.0, min(inputs.renewable_j, inputs.demand_j)),
            (
                "d",
                -inputs.z / inputs.discharge_efficiency,
                inputs.discharge_cap_j,
            ),
            ("g", grid_price, inputs.usable_grid_j),
        ],
        key=lambda item: item[1],
    )
    remaining = inputs.demand_j
    amounts = {"r": 0.0, "d": 0.0, "g": 0.0}
    objective = 0.0
    for name, unit_cost, cap in sources:
        take = min(remaining, cap)
        if take > 0:
            amounts[name] = take
            objective += unit_cost * take
            remaining -= take
    if remaining > _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: demand {inputs.demand_j} J exceeds max "
            f"supply {inputs.max_supply_j} J (curtailment missing upstream)"
        )
    allocation = NodeEnergyAllocation(
        renewable_serve_j=amounts["r"],
        grid_serve_j=amounts["g"],
        discharge_j=amounts["d"],
        spill_j=inputs.renewable_j - amounts["r"],
    )
    return allocation, objective


def _charge_mode_allocation(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float] | None:
    """Charge-mode optimum: serve demand without discharging, charge.

    The only free variable after eliminating the balance equations is
    ``rE`` (renewable energy serving demand); the objective is
    piecewise linear in ``rE``, so evaluating it at every kink and
    endpoint is exact.  Returns None when demand cannot be met without
    discharging.
    """
    supply = inputs.renewable_j + inputs.usable_grid_j
    if inputs.demand_j > supply + _ENERGY_TOL:
        return None

    lo = max(0.0, inputs.demand_j - inputs.usable_grid_j)
    hi = min(inputs.renewable_j, inputs.demand_j)
    if lo > hi + _ENERGY_TOL:
        return None
    hi = max(lo, hi)

    z = inputs.z
    ccap = inputs.charge_cap_j
    eta_c = inputs.charge_efficiency
    want_grid_charge = inputs.grid_connected and (z * eta_c + grid_price) < 0.0

    def evaluate(r_serve: float) -> Tuple[float, NodeEnergyAllocation]:
        g_serve = inputs.demand_j - r_serve
        r_charge = min(inputs.renewable_j - r_serve, ccap) if z < 0 else 0.0
        r_charge = max(0.0, r_charge)
        g_charge = 0.0
        if want_grid_charge:
            g_charge = max(
                0.0,
                min(inputs.usable_grid_j - g_serve, ccap - r_charge),
            )
        objective = (
            grid_price * g_serve
            + z * eta_c * r_charge
            + (z * eta_c + grid_price) * g_charge
        )
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            renewable_charge_j=r_charge,
            grid_serve_j=g_serve,
            grid_charge_j=g_charge,
            spill_j=inputs.renewable_j - r_serve - r_charge,
        )
        return objective, allocation

    candidates = {lo, hi}
    for kink in (
        inputs.renewable_j - ccap,  # renewable-charge cap switch
        inputs.demand_j - inputs.usable_grid_j + ccap,  # grid-charge room
    ):
        if lo < kink < hi:
            candidates.add(kink)

    best = min((evaluate(r) for r in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _quadratic_charge_mode(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float] | None:
    """Exact-drift charge mode.

    Minimises ``z (eta_c c) + (eta_c c)^2 / 2 + price * grid`` over the
    charge *input* ``c``.  With the quadratic self-term the objective
    is convex piecewise quadratic in ``c`` with one kink (where the
    grid starts funding the charge), so evaluating the clamped
    stationary points and the kink is exact.  Returns None when demand
    cannot be met without discharging.
    """
    demand, renewable = inputs.demand_j, inputs.renewable_j
    grid = inputs.usable_grid_j
    if demand > renewable + grid + _ENERGY_TOL:
        return None
    z = inputs.z
    eta_c = inputs.charge_efficiency
    hi = min(inputs.charge_cap_j, renewable + grid - demand)
    hi = max(hi, 0.0)

    candidates = {0.0, hi}
    kink = renewable - demand  # beyond this, charging draws the grid
    stationary_free = -z / eta_c
    stationary_grid = -z / eta_c - grid_price / (eta_c * eta_c)
    for point in (stationary_free, stationary_grid, kink):
        if 0.0 < point < hi:
            candidates.add(point)

    def evaluate(c: float) -> Tuple[float, NodeEnergyAllocation]:
        grid_draw = max(0.0, demand + c - renewable)
        stored = eta_c * c
        objective = z * stored + 0.5 * stored * stored + grid_price * grid_draw
        r_serve = min(renewable, demand)
        g_serve = demand - r_serve
        r_charge = min(renewable - r_serve, c)
        g_charge = c - r_charge
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            renewable_charge_j=r_charge,
            grid_serve_j=g_serve,
            grid_charge_j=g_charge,
            spill_j=renewable - r_serve - r_charge,
        )
        return objective, allocation

    best = min((evaluate(c) for c in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _quadratic_serve_mode(
    inputs: NodeEnergyInputs, grid_price: DollarsPerJoule
) -> Tuple[NodeEnergyAllocation, float]:
    """Exact-drift discharge mode.

    Minimises ``-z (d/eta_d) + (d/eta_d)^2 / 2 + price * grid`` over
    the *delivered* discharge ``d`` (the battery drains ``d / eta_d``).
    Convex quadratic in ``d`` on the feasible interval, so the clamped
    stationary point is exact.
    """
    demand, renewable = inputs.demand_j, inputs.renewable_j
    grid = inputs.usable_grid_j
    z = inputs.z
    eta_d = inputs.discharge_efficiency
    r_serve = min(renewable, demand)
    residual = demand - r_serve

    d_min = max(0.0, residual - grid)
    d_max = min(inputs.discharge_cap_j, residual)
    if d_min > d_max + _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: demand {demand} J exceeds max supply "
            f"{inputs.max_supply_j} J (curtailment missing upstream)"
        )
    d_max = max(d_min, d_max)

    candidates = {d_min, d_max}
    stationary = eta_d * z + eta_d * eta_d * grid_price
    if d_min < stationary < d_max:
        candidates.add(stationary)

    def evaluate(d: float) -> Tuple[float, NodeEnergyAllocation]:
        g_serve = residual - d
        drained = d / eta_d
        objective = -z * drained + 0.5 * drained * drained + grid_price * g_serve
        allocation = NodeEnergyAllocation(
            renewable_serve_j=r_serve,
            grid_serve_j=g_serve,
            discharge_j=d,
            spill_j=renewable - r_serve,
        )
        return objective, allocation

    best = min((evaluate(d) for d in candidates), key=lambda pair: pair[0])
    return best[1], best[0]


def _node_response(
    inputs: NodeEnergyInputs,
    mu: float,
    control_v: float,
    exact_drift: bool = False,
) -> Tuple[NodeEnergyAllocation, float]:
    """Optimal allocation of one node facing marginal grid price ``mu``.

    Users never contribute to ``P(t)`` (the provider only pays for
    base-station draws), so their effective grid price is zero.
    """
    grid_price = control_v * mu if inputs.is_base_station else 0.0
    if exact_drift:
        serve = _quadratic_serve_mode(inputs, grid_price)
        charge = _quadratic_charge_mode(inputs, grid_price)
    else:
        serve = _serve_mode_allocation(inputs, grid_price)
        charge = _charge_mode_allocation(inputs, grid_price)
    if charge is None or serve[1] <= charge[1]:
        return serve
    return charge


def _allocation_given_grid(
    inputs: NodeEnergyInputs, grid_draw_j: Joules, exact_drift: bool = False
) -> NodeEnergyAllocation:
    """Node-optimal allocation with total grid draw pinned (``z < 0``).

    Used by the marginal-node repair step: for a node with ``z < 0``
    the optimum given a grid budget ``p`` maximises charging — demand
    is covered by renewable + grid first (discharging only to fill any
    gap), and all leftovers charge the battery up to its cap (in
    exact-drift mode additionally capped at ``-z``, where the quadratic
    drift term turns charging unprofitable).
    """
    p = min(grid_draw_j, inputs.usable_grid_j)
    shortfall = max(0.0, inputs.demand_j - inputs.renewable_j - p)
    discharge = min(shortfall, inputs.discharge_cap_j)
    if shortfall > discharge + _ENERGY_TOL:
        raise InfeasibleError(
            f"node {inputs.node}: grid budget {p} J cannot meet demand"
        )
    r_serve = min(inputs.renewable_j, inputs.demand_j - discharge)
    g_serve = inputs.demand_j - discharge - r_serve
    headroom = inputs.charge_cap_j if discharge <= _ENERGY_TOL else 0.0
    if exact_drift:
        # The quadratic drift makes charging unprofitable past a
        # stored level of -z, i.e. an input of -z / eta_c.
        headroom = min(
            headroom, max(0.0, -inputs.z) / inputs.charge_efficiency
        )
    r_charge = min(inputs.renewable_j - r_serve, headroom)
    g_charge = min(p - g_serve, headroom - r_charge)
    r_charge = max(0.0, r_charge)
    g_charge = max(0.0, g_charge)
    return NodeEnergyAllocation(
        renewable_serve_j=r_serve,
        renewable_charge_j=r_charge,
        grid_serve_j=g_serve,
        grid_charge_j=g_charge,
        discharge_j=discharge,
        spill_j=inputs.renewable_j - r_serve - r_charge,
    )


class EnergyManager:
    """The S4 subproblem solver."""

    def __init__(
        self,
        model: NetworkModel,
        kind: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        exact_drift: Optional[bool] = None,
        checker: Optional[ContractChecker] = None,
    ) -> None:
        self._model = model
        self._kind = kind
        self._v = model.params.control_v
        if exact_drift is None:
            exact_drift = model.params.exact_battery_drift
        self._exact_drift = exact_drift
        self._checker = checker

    def attach_contracts(self, checker: ContractChecker) -> None:
        """Validate every S4 allocation against Eqs. 3 and 9-14."""
        self._checker = checker

    @property
    def exact_drift(self) -> bool:
        """Whether S4 minimises the exact quadratic battery drift."""
        return self._exact_drift

    @property
    def kind(self) -> EnergySolverKind:
        """The configured solver."""
        return self._kind

    def manage(
        self,
        inputs: List[NodeEnergyInputs],
        cost: Optional[QuadraticCost] = None,
    ) -> EnergyManagementDecision:
        """Solve S4 for one slot over all nodes.

        Args:
            inputs: per-node demand/supply state.
            cost: the slot's generation cost function; defaults to the
                model's flat tariff (time-of-use callers pass
                ``model.cost_at(slot)``).
        """
        if cost is None:
            cost = self._model.cost
        for node_inputs in inputs:
            if node_inputs.demand_j > node_inputs.max_supply_j + _ENERGY_TOL:
                raise InfeasibleError(
                    f"node {node_inputs.node}: demand {node_inputs.demand_j} J "
                    f"exceeds max supply {node_inputs.max_supply_j} J; the "
                    "controller's curtailment pass must run first"
                )
        if self._kind is EnergySolverKind.PRICE_DECOMPOSITION:
            allocations = self._solve_price_decomposition(inputs, cost)
        elif self._kind is EnergySolverKind.SLSQP:
            allocations = self._solve_slsqp(inputs, cost)
        else:
            allocations = self._solve_grid_only(inputs)
        decision = self._assemble(allocations, inputs, cost)
        if self._checker is not None and self._checker.enabled:
            self._checker.check_energy(inputs, decision)
        return decision

    def _assemble(
        self,
        allocations: Dict[NodeId, NodeEnergyAllocation],
        inputs: List[NodeEnergyInputs],
        cost: QuadraticCost,
    ) -> EnergyManagementDecision:
        bs_set = {n.node for n in inputs if n.is_base_station}
        total_draw = sum(
            alloc.grid_draw_j for node, alloc in allocations.items() if node in bs_set
        )
        return EnergyManagementDecision(
            allocations=allocations,
            bs_grid_draw_j=total_draw,
            cost=cost.value(total_draw),
        )

    # ------------------------------------------------------------------
    # Price decomposition
    # ------------------------------------------------------------------

    def _solve_price_decomposition(
        self, inputs: List[NodeEnergyInputs], cost: QuadraticCost
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        users = [n for n in inputs if not n.is_base_station]
        stations = [n for n in inputs if n.is_base_station]

        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for node_inputs in users:  # noqa: R040 - per-item Python loop pending batched S1/S4 kernels (ROADMAP item 1)
            allocations[node_inputs.node], _ = _node_response(
                node_inputs, 0.0, self._v, self._exact_drift
            )
        if not stations:
            return allocations

        def bs_total_draw(mu: float) -> float:
            return sum(
                _node_response(n, mu, self._v, self._exact_drift)[0].grid_draw_j
                for n in stations
            )

        cap = sum(n.usable_grid_j for n in stations)
        mu_lo = cost.derivative(0.0)
        mu_hi = cost.derivative(cap) + max(1.0, cost.derivative(cap)) * 1e-6
        mu_star = bisect_root(
            lambda mu: mu - cost.derivative(bs_total_draw(mu)),
            mu_lo,
            mu_hi,
            tol=_PRICE_BISECT_TOL,
        )

        eps = max(abs(mu_star), mu_lo, 1e-9) * _PRICE_PROBE_REL
        high_side = {
            n.node: _node_response(n, mu_star + eps, self._v, self._exact_drift)[0]
            for n in stations
        }
        low_side = {
            n.node: _node_response(n, mu_star - eps, self._v, self._exact_drift)[0]
            for n in stations
        }
        p_plus = sum(a.grid_draw_j for a in high_side.values())
        p_minus = sum(a.grid_draw_j for a in low_side.values())

        if cost.a > 0:
            p_target = min(max(cost.inverse_derivative(mu_star), p_plus), p_minus)
        else:
            p_target = p_plus

        extra = p_target - p_plus
        for node_inputs in stations:
            allocations[node_inputs.node] = high_side[node_inputs.node]
        if extra > _ENERGY_TOL:
            # Marginal repair: nodes whose draw differs across mu* can
            # absorb the interior allocation (z < 0 handled exactly;
            # the z >= 0 corner cannot occur with the paper's huge
            # V*gamma_max shift, and falls back to the vertex solution).
            for node_inputs in stations:
                gap = (
                    low_side[node_inputs.node].grid_draw_j
                    - high_side[node_inputs.node].grid_draw_j
                )
                if gap <= _ENERGY_TOL or extra <= _ENERGY_TOL:
                    continue
                if node_inputs.z >= 0:
                    continue
                take = min(gap, extra)
                target_draw = high_side[node_inputs.node].grid_draw_j + take
                allocations[node_inputs.node] = _allocation_given_grid(
                    node_inputs, target_draw, self._exact_drift
                )
                extra -= take
        return allocations

    # ------------------------------------------------------------------
    # SLSQP cross-check solver
    # ------------------------------------------------------------------

    def _solve_slsqp(
        self, inputs: List[NodeEnergyInputs], cost: QuadraticCost
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        """General-purpose NLP: variables [r, c_r, g, c_g, d] per node.

        Complementarity (9) is omitted from the relaxation because an
        equal-objective complementary point always exists (module docs
        in DESIGN.md); the returned allocation nets charge against
        discharge where both are positive.
        """
        n = len(inputs)
        if n == 0:
            return {}
        v = self._v

        def unpack(x: np.ndarray) -> np.ndarray:
            return x.reshape(n, 5)

        bs_mask = np.array([i.is_base_station for i in inputs])

        def total_draw(x: np.ndarray) -> float:
            vars_ = unpack(x)
            return float(np.sum((vars_[:, 2] + vars_[:, 3])[bs_mask]))

        z = np.array([i.z for i in inputs])
        # Normalise the objective: drift terms scale like |z| * caps,
        # which can be 1e8+, and SLSQP's line search stalls on badly
        # scaled problems.  Scaling does not move the argmin.
        scale = max(float(np.abs(z).max()), v * cost.derivative(0.0), 1.0)

        exact_drift = self._exact_drift
        eta_c = np.array([i.charge_efficiency for i in inputs])
        eta_d = np.array([i.discharge_efficiency for i in inputs])

        def objective(x: np.ndarray) -> float:
            vars_ = unpack(x)
            charge = vars_[:, 1] + vars_[:, 3]
            discharge = vars_[:, 4]
            # Level delta: eta_c * input charge - delivered / eta_d.
            net = eta_c * charge - discharge / eta_d
            raw = float(np.dot(z, net)) + v * cost.value(
                max(total_draw(x), 0.0)
            )
            if exact_drift:
                raw += 0.5 * float(np.dot(net, net))
            return raw / scale

        constraints = []
        for idx, node_inputs in enumerate(inputs):
            base = idx * 5

            def demand_balance(x: np.ndarray, b: int = base, e: float = node_inputs.demand_j) -> float:
                return x[b] + x[b + 2] + x[b + 4] - e

            def renewable_cap(x: np.ndarray, b: int = base, r: float = node_inputs.renewable_j) -> float:
                return r - x[b] - x[b + 1]

            def charge_cap(x: np.ndarray, b: int = base, c: float = node_inputs.charge_cap_j) -> float:
                return c - x[b + 1] - x[b + 3]

            def grid_cap(x: np.ndarray, b: int = base, p: float = node_inputs.usable_grid_j) -> float:
                return p - x[b + 2] - x[b + 3]

            constraints.append({"type": "eq", "fun": demand_balance})
            constraints.append({"type": "ineq", "fun": renewable_cap})
            constraints.append({"type": "ineq", "fun": charge_cap})
            constraints.append({"type": "ineq", "fun": grid_cap})

        bounds = []
        x0 = np.zeros(n * 5)
        for idx, node_inputs in enumerate(inputs):
            grid = node_inputs.usable_grid_j
            bounds.extend(
                [
                    (0.0, node_inputs.renewable_j),
                    (0.0, min(node_inputs.charge_cap_j, node_inputs.renewable_j)),
                    (0.0, grid),
                    (0.0, min(node_inputs.charge_cap_j, grid)),
                    (0.0, node_inputs.discharge_cap_j),
                ]
            )
            # Feasible start: serve demand greedily r -> g -> d.
            r = min(node_inputs.renewable_j, node_inputs.demand_j)
            g = min(grid, node_inputs.demand_j - r)
            d = node_inputs.demand_j - r - g
            x0[idx * 5 + 0] = r
            x0[idx * 5 + 2] = g
            x0[idx * 5 + 4] = max(0.0, d)

        result = None
        start = x0
        for attempt in range(3):
            result = optimize.minimize(
                objective,
                start,
                method="SLSQP",
                bounds=bounds,
                constraints=constraints,
                options={"maxiter": 500, "ftol": 1e-12},
            )
            if result.success:
                break
            # Restart from the stalled point nudged into the interior;
            # SLSQP line searches can stall at degenerate vertices.
            start = 0.99 * result.x + 0.01 * x0
        assert result is not None
        if not result.success:
            raise SolverError(f"SLSQP failed: {result.message}")

        vars_ = unpack(result.x)
        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for idx, node_inputs in enumerate(inputs):
            r, c_r, g, c_g, d = (max(0.0, float(x)) for x in vars_[idx])
            # Net simultaneous charge/discharge (equal-objective shift).
            overlap = min(c_r + c_g, d)
            if overlap > FEASIBILITY_EPS:
                from_renewable = min(overlap, c_r)
                c_r -= from_renewable
                c_g -= overlap - from_renewable
                d -= overlap
                r = min(node_inputs.renewable_j, r + from_renewable)
            allocations[node_inputs.node] = NodeEnergyAllocation(
                renewable_serve_j=r,
                renewable_charge_j=c_r,
                grid_serve_j=g,
                grid_charge_j=c_g,
                discharge_j=d,
                spill_j=max(0.0, node_inputs.renewable_j - r - c_r),
            )
        return allocations

    # ------------------------------------------------------------------
    # Naive baseline
    # ------------------------------------------------------------------

    def _solve_grid_only(
        self, inputs: List[NodeEnergyInputs]
    ) -> Dict[NodeId, NodeEnergyAllocation]:
        """Renewables serve demand, grid covers the rest, no battery.

        Disconnected users with insufficient renewables fall back to
        the battery (forced discharge) so demand stays met.
        """
        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for node_inputs in inputs:
            r = min(node_inputs.renewable_j, node_inputs.demand_j)
            g = min(node_inputs.usable_grid_j, node_inputs.demand_j - r)
            d = min(node_inputs.discharge_cap_j, node_inputs.demand_j - r - g)
            if node_inputs.demand_j - r - g - d > _ENERGY_TOL:
                raise InfeasibleError(
                    f"node {node_inputs.node}: grid-only policy cannot meet demand"
                )
            allocations[node_inputs.node] = NodeEnergyAllocation(
                renewable_serve_j=r,
                grid_serve_j=g,
                discharge_j=d,
                spill_j=node_inputs.renewable_j - r,
            )
        return allocations

"""Queueing substrate: data/virtual/energy queues and stability tools."""

from repro.queueing.data_queue import DataQueue, DataQueueBank
from repro.queueing.virtual_queue import LinkVirtualQueue, VirtualQueueBank
from repro.queueing.energy_queue import ShiftedEnergyQueue
from repro.queueing.stability import (
    StabilityReport,
    StabilityVerdict,
    assess_strong_stability,
    is_rate_stable_sample_path,
)
from repro.queueing.backlog import BacklogSnapshot

__all__ = [
    "DataQueue",
    "DataQueueBank",
    "LinkVirtualQueue",
    "VirtualQueueBank",
    "ShiftedEnergyQueue",
    "StabilityReport",
    "StabilityVerdict",
    "assess_strong_stability",
    "is_rate_stable_sample_path",
    "BacklogSnapshot",
]

"""Shifted battery queues ``z_i(t)`` (Eq. 31).

The drift analysis replaces each battery level ``x_i(t)`` by the shifted
variable

    z_i(t) = x_i(t) - V * gamma_max - d_max_i,

which follows the same increments ``z(t+1) = z(t) + c(t) - d(t)`` but is
centred so that the drift-optimal policy automatically keeps
``0 <= x_i(t) <= x_max_i``.  The class tracks both views and asserts the
affine relation as an invariant.
"""

from __future__ import annotations

import numpy as np

from repro.axes import NodeJoules
from repro.constants import FEASIBILITY_EPS
from repro.exceptions import QueueError
from repro.types import NodeId
from repro.units import DollarsPerJoule, Joules


class ShiftedEnergyQueue:
    """The ``z_i``/``x_i`` pair for one node's battery."""

    def __init__(
        self,
        node: NodeId,
        control_v: float,
        gamma_max: DollarsPerJoule,
        discharge_cap_j: Joules,
        initial_level_j: Joules = 0.0,
    ) -> None:
        if control_v < 0:
            raise QueueError(f"V must be non-negative, got {control_v}")
        if gamma_max < 0:
            raise QueueError(f"gamma_max must be non-negative, got {gamma_max}")
        if discharge_cap_j < 0:
            raise QueueError(
                f"discharge cap must be non-negative, got {discharge_cap_j}"
            )
        self.node = node
        self.shift_j = control_v * gamma_max + discharge_cap_j
        # The level lives in a (possibly shared) numpy buffer; the
        # array-backed NetworkState binds it to the same slot as the
        # node's Battery, so mirroring the battery level is free.
        self._storage = np.zeros(1)
        self._index = 0
        self._level_j = initial_level_j

    @property
    def _level_j(self) -> Joules:
        return float(self._storage[self._index])

    @_level_j.setter
    def _level_j(self, value: Joules) -> None:
        self._storage[self._index] = value

    def bind_storage(self, buffer: NodeJoules, index: int) -> None:
        """Re-home the level into slot ``index`` of a shared array.

        Cold path: called once per node by the array-backed
        ``NetworkState``.  The current level is written into the shared
        buffer, so binding never changes the observable state.
        """
        buffer[index] = self._storage[self._index]
        self._storage = buffer
        self._index = int(index)

    @property
    def level_j(self) -> Joules:
        """The physical battery level ``x_i(t)`` (J)."""
        return self._level_j

    @property
    def z(self) -> Joules:
        """The shifted level ``z_i(t) = x_i(t) - shift`` (J)."""
        return self._level_j - self.shift_j

    def step(self, charge_j: Joules, discharge_j: Joules) -> Joules:
        """Advance Eq. (31) one slot; returns the new ``z_i``."""
        if charge_j < 0 or discharge_j < 0:
            raise QueueError(
                f"negative battery action at node {self.node}: "
                f"charge={charge_j}, discharge={discharge_j}"
            )
        if charge_j > FEASIBILITY_EPS and discharge_j > FEASIBILITY_EPS:
            raise QueueError(
                f"constraint (9) violated at node {self.node}: "
                "simultaneous charge and discharge"
            )
        self._level_j += charge_j - discharge_j
        return self.z

    def observe_level(self, level_j: Joules) -> None:
        """Adopt the battery's authoritative post-update level.

        Used by the simulator: the battery applies the (possibly
        lossy, Eq.-4-with-efficiencies) update and this queue mirrors
        it, so ``z`` always equals ``x - shift`` exactly.  Constraint
        (9) is enforced upstream by :class:`BatteryAction`.
        """
        if level_j < -1e-9:
            raise QueueError(
                f"negative battery level {level_j} at node {self.node}"
            )
        self._level_j = max(level_j, 0.0)

    def sync_level(self, level_j: Joules) -> None:
        """Re-anchor to the battery's authoritative level.

        The :class:`~repro.energy.battery.Battery` clamps round-off at
        its bounds; calling this after ``Battery.apply`` keeps the two
        views bit-identical.
        """
        if abs(level_j - self._level_j) > 1e-3:
            raise QueueError(
                f"energy-queue divergence at node {self.node}: "
                f"battery={level_j} J, queue={self._level_j} J"
            )
        self._level_j = level_j

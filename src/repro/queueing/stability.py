"""Empirical stability assessment (Definitions 1-2, Theorems 1-2).

A process is *rate stable* when ``Q(t)/t -> 0`` and *strongly stable*
when its running mean ``(1/T) sum E|Q(t)|`` stays bounded.  On a finite
sample path neither limit is observable, so these estimators apply the
standard finite-horizon proxies: the tail growth rate of ``Q(t)/t`` for
rate stability, and boundedness + flattening of the running mean for
strong stability.  They are diagnostics, not proofs — the proofs live in
the paper's Theorem 3; the simulator uses these to *check* that the
implementation delivers what the theorem promises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class StabilityVerdict(enum.Enum):
    """Outcome of an empirical stability check."""

    STABLE = "stable"
    UNSTABLE = "unstable"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class StabilityReport:
    """Evidence behind a stability verdict.

    Attributes:
        verdict: the overall call.
        max_backlog: peak of the sample path.
        final_running_mean: ``(1/T) sum_t Q(t)`` at the horizon.
        tail_slope: least-squares slope of ``Q(t)`` over the last third
            of the horizon, in backlog units per slot.
        growth_fraction: ``tail_slope * T / mean`` — how much the path
            would grow over one more horizon, as a fraction of its
            current mean level; the decision statistic.  A saturating
            path has ~0, a linearly growing path has ~2 regardless of
            its rate.
    """

    verdict: StabilityVerdict
    max_backlog: float
    final_running_mean: float
    tail_slope: float
    growth_fraction: float


def is_rate_stable_sample_path(
    path: Sequence[float], tol_rel: float = 0.1, tol_abs: float = 1e-2
) -> bool:
    """Finite-horizon proxy for rate stability: is ``Q(T)/T`` small?

    ``Q(T)/T`` is compared against the path's mean absolute increment
    (its natural per-slot activity scale): a bounded path has terminal
    rate far below its churn, a linearly growing one has terminal rate
    equal to it.  ``tol_abs`` covers frozen paths with zero churn.

    This is a diagnostic proxy: growth much slower than the per-slot
    churn is indistinguishable from boundedness on a finite horizon.
    """
    arr = np.asarray(path, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample path")
    if arr.size == 1:
        return True
    terminal_rate = arr[-1] / (arr.size - 1)
    churn = float(np.abs(np.diff(arr)).mean())
    return terminal_rate <= max(tol_rel * churn, tol_abs)


def assess_strong_stability(
    path: Sequence[float],
    growth_tol: float = 0.25,
    min_horizon: int = 10,
) -> StabilityReport:
    """Empirical strong-stability check on one backlog sample path.

    The decision statistic is the *growth fraction*: the least-squares
    slope over the final third of the horizon, multiplied by the
    horizon, relative to the path mean — i.e. how much the backlog
    would grow over one more horizon if the tail trend continued.  A
    path that has flattened scores ~0 and is called stable below
    ``growth_tol``; a persistently growing path scores ~2 (linear
    growth) and is called unstable above ``4 * growth_tol``; in
    between the horizon is too short to tell.

    Args:
        path: the backlog sample path ``Q(0..T-1)``.
        growth_tol: growth-fraction threshold for stability.
        min_horizon: below this length the verdict is inconclusive.
    """
    arr = np.asarray(path, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample path")
    if np.any(arr < 0):
        raise ValueError("backlogs must be non-negative")

    running_mean = float(arr.mean())
    max_backlog = float(arr.max())

    if arr.size < min_horizon:
        return StabilityReport(
            verdict=StabilityVerdict.INCONCLUSIVE,
            max_backlog=max_backlog,
            final_running_mean=running_mean,
            tail_slope=float("nan"),
            growth_fraction=float("nan"),
        )

    tail_start = (2 * arr.size) // 3
    tail = arr[tail_start:]
    slots = np.arange(tail.size, dtype=float)
    slope = float(np.polyfit(slots, tail, 1)[0]) if tail.size > 1 else 0.0
    growth = slope * arr.size / max(running_mean, 1.0)

    if growth <= growth_tol:
        verdict = StabilityVerdict.STABLE
    elif growth >= 4 * growth_tol:
        verdict = StabilityVerdict.UNSTABLE
    else:
        verdict = StabilityVerdict.INCONCLUSIVE

    return StabilityReport(
        verdict=verdict,
        max_backlog=max_backlog,
        final_running_mean=running_mean,
        tail_slope=slope,
        growth_fraction=growth,
    )

"""Reference dict-of-objects queue banks (pre-vectorization, R006-exempt).

These are the historical per-key implementations of
:class:`~repro.queueing.data_queue.DataQueueBank` and
:class:`~repro.queueing.virtual_queue.VirtualQueueBank`, kept verbatim
as the *object path*: ``ReferenceNetworkState`` builds its banks from
this module, and the equivalence suite + ``benchmarks/bench_slotloop.py``
pin the vectorized array path against it bit for bit.

This module is intentionally full of per-item dict loops — that is the
thing it preserves — so it is exempt from lint rule R006.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.exceptions import QueueError
from repro.queueing.data_queue import DataQueue, DataQueueBank
from repro.queueing.virtual_queue import LinkVirtualQueue, VirtualQueueBank
from repro.types import Link, NodeId, QueueSemantics, SessionId
from repro.units import Packets


class ReferenceDataQueueBank(DataQueueBank):
    """Dict-of-:class:`DataQueue` bank with per-key update loops."""

    def __init__(
        self,
        nodes: Iterable[NodeId],
        session_destinations: Mapping[SessionId, NodeId],
        semantics: QueueSemantics = QueueSemantics.PAPER,
    ) -> None:
        self._destinations = dict(session_destinations)
        self._semantics = semantics
        self._queues: Dict[Tuple[NodeId, SessionId], DataQueue] = {}
        for node in nodes:
            for session, dest in self._destinations.items():
                if node != dest:
                    self._queues[(node, session)] = DataQueue(node, session)

    def backlog(self, node: NodeId, session: SessionId) -> Packets:
        """``Q_i^s(t)``; destinations report a permanent 0."""
        if self._destinations.get(session) == node:
            return 0.0
        try:
            return self._queues[(node, session)].backlog
        except KeyError:
            raise QueueError(f"no queue for node {node}, session {session}") from None

    def has_queue(self, node: NodeId, session: SessionId) -> bool:
        """True unless ``node`` is the destination of ``session``."""
        return (node, session) in self._queues

    def total_backlog(self, nodes: Iterable[NodeId]) -> Packets:
        """Sum of backlogs over ``nodes`` and all sessions."""
        node_set = set(nodes)
        return sum(
            q.backlog for (node, _), q in self._queues.items() if node in node_set
        )

    def snapshot(self) -> Dict[Tuple[NodeId, SessionId], Packets]:
        """A copy of every backlog, keyed by ``(node, session)``."""
        return {key: q.backlog for key, q in self._queues.items()}

    def step(
        self,
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets],
        admissions: Mapping[SessionId, Iterable[Tuple[NodeId, Packets]]],
    ) -> None:
        """Advance every queue one slot (per-key Eq. 15 loops)."""
        transfer = self.effective_rates(rates)

        service: Dict[Tuple[NodeId, SessionId], float] = {}
        arrivals: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in transfer.items():
            service[(tx, session)] = service.get((tx, session), 0.0) + rate
            arrivals[(rx, session)] = arrivals.get((rx, session), 0.0) + rate
        for session, pairs in admissions.items():
            for source, admitted in pairs:
                if admitted < 0:
                    raise QueueError(
                        f"negative admission {admitted} for session {session}"
                    )
                arrivals[(source, session)] = (
                    arrivals.get((source, session), 0.0) + admitted
                )

        for key, queue in self._queues.items():
            queue.step(service.get(key, 0.0), arrivals.get(key, 0.0))


class ReferenceVirtualQueueBank(VirtualQueueBank):
    """Dict-of-:class:`LinkVirtualQueue` bank with per-key loops."""

    def __init__(self, links: Iterable[Link], beta: float) -> None:
        if beta <= 0:
            raise QueueError(f"beta must be positive, got {beta}")
        self.beta = beta
        self._queues: Dict[Link, LinkVirtualQueue] = {
            link: LinkVirtualQueue(link=link, beta=beta) for link in links
        }

    def g(self, link: Link) -> Packets:
        """``G_ij(t)`` for one link."""
        try:
            return self._queues[link].g_backlog
        except KeyError:
            raise QueueError(f"no virtual queue for link {link}") from None

    def h(self, link: Link) -> Packets:
        """``H_ij(t)`` for one link."""
        try:
            return self._queues[link].h_backlog
        except KeyError:
            raise QueueError(f"no virtual queue for link {link}") from None

    def total_g(self) -> Packets:
        """Sum of all ``G_ij(t)`` backlogs."""
        return sum(q.g_backlog for q in self._queues.values())

    def total_h(self) -> Packets:
        """Sum of all ``H_ij(t)`` backlogs."""
        return sum(q.h_backlog for q in self._queues.values())

    def snapshot(self) -> Dict[Link, Packets]:
        """A copy of every ``G_ij`` backlog."""
        return {link: q.g_backlog for link, q in self._queues.items()}

    def step(
        self,
        arrivals_pkts: Mapping[Link, Packets],
        service_pkts: Mapping[Link, Packets],
    ) -> None:
        """Advance every virtual queue one slot (per-key Eq. 28 loops)."""
        for link, queue in self._queues.items():
            queue.step(arrivals_pkts.get(link, 0.0), service_pkts.get(link, 0.0))

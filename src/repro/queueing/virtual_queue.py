"""Link-layer virtual queues ``G_ij`` and ``H_ij`` (Eqs. 28 and 30).

``G_ij`` buffers packets committed to link ``(i, j)`` by the router and
drains at the link's realised service rate; because the router commits
at most a link's capacity, per-slot arrivals stay bounded (Eq. 29),
which is all the drift argument needs.  ``H_ij = beta * G_ij``
with ``beta = max_ij (c_max_ij * delta_t / delta)`` is the scaled copy
whose strong stability the drift analysis tracks; keeping both updated
in lock-step (rather than deriving one from the other at read time)
mirrors the paper's formulation and keeps the invariant testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.exceptions import QueueError
from repro.types import Link
from repro.units import Packets


@dataclass
class LinkVirtualQueue:
    """The ``G_ij``/``H_ij`` pair for one directed link."""

    link: Link
    beta: float
    g_backlog: Packets = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise QueueError(f"beta must be positive, got {self.beta}")

    @property
    def h_backlog(self) -> Packets:
        """``H_ij(t) = beta * G_ij(t)`` (Eq. 30)."""
        return self.beta * self.g_backlog

    def step(self, arrivals_pkts: Packets, service_pkts: Packets) -> Packets:
        """Advance Eq. (28) one slot; returns the new ``G_ij``."""
        if arrivals_pkts < 0:
            raise QueueError(f"negative arrivals {arrivals_pkts} at G{self.link}")
        if service_pkts < 0:
            raise QueueError(f"negative service {service_pkts} at G{self.link}")
        self.g_backlog = max(self.g_backlog - service_pkts, 0.0) + arrivals_pkts
        return self.g_backlog


class VirtualQueueBank:
    """All per-link virtual queues of the network."""

    def __init__(self, links: Iterable[Link], beta: float) -> None:
        if beta <= 0:
            raise QueueError(f"beta must be positive, got {beta}")
        self.beta = beta
        self._queues: Dict[Link, LinkVirtualQueue] = {
            link: LinkVirtualQueue(link=link, beta=beta) for link in links
        }

    def g(self, link: Link) -> Packets:
        """``G_ij(t)`` for one link."""
        try:
            return self._queues[link].g_backlog
        except KeyError:
            raise QueueError(f"no virtual queue for link {link}") from None

    def h(self, link: Link) -> Packets:
        """``H_ij(t)`` for one link."""
        try:
            return self._queues[link].h_backlog
        except KeyError:
            raise QueueError(f"no virtual queue for link {link}") from None

    def total_g(self) -> Packets:
        """Sum of all ``G_ij(t)`` backlogs."""
        return sum(q.g_backlog for q in self._queues.values())

    def total_h(self) -> Packets:
        """Sum of all ``H_ij(t)`` backlogs."""
        return sum(q.h_backlog for q in self._queues.values())

    def snapshot(self) -> Dict[Link, Packets]:
        """A copy of every ``G_ij`` backlog."""
        return {link: q.g_backlog for link, q in self._queues.items()}

    def step(
        self,
        arrivals_pkts: Mapping[Link, Packets],
        service_pkts: Mapping[Link, Packets],
    ) -> Dict[Link, Packets]:
        """Advance every virtual queue one slot.

        Args:
            arrivals_pkts: per-link routed packets ``sum_s l_ij^s(t)``.
            service_pkts: per-link service
                ``(1/delta) sum_m c_ij^m(t) a_ij^m(t) delta_t``.

        Returns:
            The new ``G`` backlogs.
        """
        for link, queue in self._queues.items():
            queue.step(arrivals_pkts.get(link, 0.0), service_pkts.get(link, 0.0))
        return self.snapshot()

"""Link-layer virtual queues ``G_ij`` and ``H_ij`` (Eqs. 28 and 30).

``G_ij`` buffers packets committed to link ``(i, j)`` by the router and
drains at the link's realised service rate; because the router commits
at most a link's capacity, per-slot arrivals stay bounded (Eq. 29),
which is all the drift argument needs.  ``H_ij = beta * G_ij``
with ``beta = max_ij (c_max_ij * delta_t / delta)`` is the scaled copy
whose strong stability the drift analysis tracks.

The bank stores every ``G_ij`` in one dense ``(num_links,)`` array over
the frozen link index (optionally shared with an
:class:`~repro.core.arraystate.ArrayState`) and advances Eq. 28 with a
single vectorized update.  ``H`` is derived as ``beta * G`` at read
time — scalar ``beta * g`` and elementwise ``beta * g_array`` produce
identical IEEE-754 results, so the lock-step invariant of the
per-object :class:`LinkVirtualQueue` (kept for standalone use and the
reference object path) is preserved bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.axes import LinkPackets, LinkVec
from repro.core.arraystate import ArrayState, seq_sum
from repro.exceptions import QueueError
from repro.types import Link
from repro.units import Packets


@dataclass
class LinkVirtualQueue:
    """The ``G_ij``/``H_ij`` pair for one directed link."""

    link: Link
    beta: float
    g_backlog: Packets = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise QueueError(f"beta must be positive, got {self.beta}")

    @property
    def h_backlog(self) -> Packets:
        """``H_ij(t) = beta * G_ij(t)`` (Eq. 30)."""
        return self.beta * self.g_backlog

    def step(self, arrivals_pkts: Packets, service_pkts: Packets) -> Packets:
        """Advance Eq. (28) one slot; returns the new ``G_ij``."""
        if arrivals_pkts < 0:
            raise QueueError(f"negative arrivals {arrivals_pkts} at G{self.link}")
        if service_pkts < 0:
            raise QueueError(f"negative service {service_pkts} at G{self.link}")
        self.g_backlog = max(self.g_backlog - service_pkts, 0.0) + arrivals_pkts
        return self.g_backlog


class VirtualQueueBank:
    """All per-link virtual queues of the network.

    ``G`` backlogs live in ``self._g[pos]`` with positions in ``links``
    order.  When ``storage`` is given the bank adopts the
    ``ArrayState``'s ``g`` buffer and frozen link index.
    """

    # Axis declaration feeding the R020-R023 analyzer.
    _g: LinkPackets

    def __init__(
        self,
        links: Iterable[Link],
        beta: float,
        storage: Optional[ArrayState] = None,
    ) -> None:
        """Freeze the link index and allocate (or adopt) ``g``.

        Cold path: runs once, before the slot loop.
        """
        if beta <= 0:
            raise QueueError(f"beta must be positive, got {beta}")
        self.beta = beta
        if storage is not None:
            self._links = storage.links
            self._pos = storage.link_pos
            self._g = storage.g
        else:
            self._links = tuple(links)
            self._pos = {link: pos for pos, link in enumerate(self._links)}
            self._g = np.zeros(len(self._links))

    def g(self, link: Link) -> Packets:
        """``G_ij(t)`` for one link."""
        try:
            return float(self._g[self._pos[link]])
        except KeyError:
            raise QueueError(f"no virtual queue for link {link}") from None

    def h(self, link: Link) -> Packets:
        """``H_ij(t)`` for one link."""
        return self.beta * self.g(link)

    def h_array(self) -> LinkPackets:
        """A fresh ``(num_links,)`` array of ``H_ij(t) = beta * G_ij(t)``."""
        return self.beta * self._g

    def total_g(self) -> Packets:
        """Sum of all ``G_ij(t)`` backlogs."""
        return seq_sum(self._g)

    def total_h(self) -> Packets:
        """Sum of all ``H_ij(t)`` backlogs."""
        return seq_sum(self.beta * self._g)

    def snapshot(self) -> Dict[Link, Packets]:
        """A copy of every ``G_ij`` backlog.

        Cold path: used by diagnostics and the contracts checker, not
        the per-slot update.
        """
        return {link: float(g) for link, g in zip(self._links, self._g)}

    def step(
        self,
        arrivals_pkts: Mapping[Link, Packets],
        service_pkts: Mapping[Link, Packets],
    ) -> None:
        """Advance every virtual queue one slot (vectorized Eq. 28).

        Args:
            arrivals_pkts: per-link routed packets ``sum_s l_ij^s(t)``.
            service_pkts: per-link service
                ``(1/delta) sum_m c_ij^m(t) a_ij^m(t) delta_t``.
        """
        arrivals, service = self.build_buffers(arrivals_pkts, service_pkts)
        self.apply_buffers(arrivals, service)

    def build_buffers(
        self,
        arrivals_pkts: Mapping[Link, Packets],
        service_pkts: Mapping[Link, Packets],
    ) -> "tuple[LinkVec, LinkVec]":
        """Scatter one slot's decisions into ``(arrivals, service)``.

        The exchange half of Eq. 28 (see
        :meth:`repro.queueing.data_queue.DataQueueBank.build_buffers`):
        the decision dicts are walked once in global order into dense
        ``(L,)`` buffers, which the sharded loop then applies per shard.
        """
        num_links = len(self._links)
        arrivals: LinkVec = np.zeros(num_links)
        service: LinkVec = np.zeros(num_links)
        pos_of = self._pos
        for link, pkts in arrivals_pkts.items():  # noqa: R006 - decision-sized mapping feeding the vectorized buffers
            pos = pos_of.get(link)
            if pos is not None:
                arrivals[pos] = pkts
        for link, pkts in service_pkts.items():  # noqa: R006 - decision-sized mapping feeding the vectorized buffers
            pos = pos_of.get(link)
            if pos is not None:
                service[pos] = pkts

        bad = (arrivals < 0.0) | (service < 0.0)
        if bad.any():
            pos = int(np.argmax(bad))
            link = self._links[pos]
            if arrivals[pos] < 0:
                raise QueueError(f"negative arrivals {arrivals[pos]} at G{link}")
            raise QueueError(f"negative service {service[pos]} at G{link}")
        return arrivals, service

    def apply_buffers(
        self,
        arrivals: LinkVec,
        service: LinkVec,
        positions: Optional[np.ndarray] = None,
    ) -> None:
        """Advance Eq. 28 from prebuilt buffers, optionally sliced.

        ``positions`` restricts the update to a subset of the frozen
        link index (a shard's owned links plus its halo); the update is
        elementwise per link, so the per-shard applies compose to the
        same result as the full-bank update.
        """
        if positions is None:
            np.subtract(self._g, service, out=self._g)
            np.maximum(self._g, 0.0, out=self._g)
            np.add(self._g, arrivals, out=self._g)
            return
        take = self._g[positions]
        np.subtract(take, service[positions], out=take)
        np.maximum(take, 0.0, out=take)
        np.add(take, arrivals[positions], out=take)
        self._g[positions] = take

"""Aggregated backlog snapshots used by the metrics collector.

The evaluation figures plot four aggregates per slot: total data-queue
backlog of base stations and of users (Figs. 2b/2c), and total battery
energy of base stations and of users (Figs. 2d/2e).  A
:class:`BacklogSnapshot` freezes those aggregates, plus the virtual-
queue total, for one slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Tuple

from repro.core.arraystate import seq_sum
from repro.types import Link, NodeId, SessionId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see state.py)
    from repro.core.arraystate import ArrayState


@dataclass(frozen=True)
class BacklogSnapshot:
    """All queue aggregates of one slot.

    Attributes:
        slot: slot index ``t``.
        bs_data_packets: total ``Q_i^s`` over base stations (Fig. 2b).
        user_data_packets: total ``Q_i^s`` over users (Fig. 2c).
        bs_energy_j: total battery level over base stations (Fig. 2d).
        user_energy_j: total battery level over users (Fig. 2e).
        virtual_packets: total ``G_ij`` over links.
    """

    slot: int
    bs_data_packets: float
    user_data_packets: float
    bs_energy_j: float
    user_energy_j: float
    virtual_packets: float

    @property
    def total_data_packets(self) -> float:
        """Network-wide data backlog."""
        return self.bs_data_packets + self.user_data_packets

    @property
    def total_energy_j(self) -> float:
        """Network-wide stored energy."""
        return self.bs_energy_j + self.user_energy_j


def make_snapshot(
    slot: int,
    data_backlogs: Mapping[Tuple[NodeId, SessionId], float],
    battery_levels: Mapping[NodeId, float],
    virtual_backlogs: Mapping[Link, float],
    bs_ids: Iterable[NodeId],
) -> BacklogSnapshot:
    """Aggregate raw backlogs into one :class:`BacklogSnapshot`."""
    bs_set = set(bs_ids)
    bs_data = sum(v for (node, _), v in data_backlogs.items() if node in bs_set)
    user_data = sum(v for (node, _), v in data_backlogs.items() if node not in bs_set)
    bs_energy = sum(v for node, v in battery_levels.items() if node in bs_set)
    user_energy = sum(v for node, v in battery_levels.items() if node not in bs_set)
    return BacklogSnapshot(
        slot=slot,
        bs_data_packets=bs_data,
        user_data_packets=user_data,
        bs_energy_j=bs_energy,
        user_energy_j=user_energy,
        virtual_packets=sum(virtual_backlogs.values()),
    )


def make_snapshot_from_arrays(slot: int, arrays: "ArrayState") -> BacklogSnapshot:
    """Aggregate an :class:`~repro.core.arraystate.ArrayState` directly.

    Node ids are dense, so the bs/user row splits are contiguous index
    sets; destination cells of ``q`` hold exactly ``0.0``, so summing
    whole rows with :func:`seq_sum` matches the valid-cells-only
    sequential sums of :func:`make_snapshot` bit for bit.
    """
    return BacklogSnapshot(
        slot=slot,
        bs_data_packets=seq_sum(arrays.q[arrays.bs_rows]),
        user_data_packets=seq_sum(arrays.q[arrays.user_rows]),
        bs_energy_j=seq_sum(arrays.battery_level[arrays.bs_rows]),
        user_energy_j=seq_sum(arrays.battery_level[arrays.user_rows]),
        virtual_packets=seq_sum(arrays.g),
    )

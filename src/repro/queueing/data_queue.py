"""Per-node per-session data queues ``Q_i^s`` (Eq. 15).

The queueing law is

    Q_i^s(t+1) = max(Q_i^s(t) - sum_j l_ij^s(t), 0)
                 + sum_j l_ji^s(t) + k_s(t) * 1[i = s_s(t)],

with the destination node keeping no queue (delivered packets leave the
network immediately).  Two transfer semantics are supported (see
``QueueSemantics``): the paper's null-packet idealisation credits the
receiver with the full scheduled rate; the packet-accurate mode credits
only what the transmitter really held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.exceptions import QueueError
from repro.types import NodeId, QueueSemantics, SessionId
from repro.units import Packets


@dataclass
class DataQueue:
    """One ``Q_i^s`` backlog counter (packets)."""

    node: NodeId
    session: SessionId
    backlog: Packets = 0.0

    def step(self, service: Packets, arrivals: Packets) -> Packets:
        """Advance Eq. (15) by one slot and return the new backlog."""
        if service < 0:
            raise QueueError(
                f"negative service {service} at Q[{self.node}][{self.session}]"
            )
        if arrivals < 0:
            raise QueueError(
                f"negative arrivals {arrivals} at Q[{self.node}][{self.session}]"
            )
        self.backlog = max(self.backlog - service, 0.0) + arrivals
        return self.backlog


class DataQueueBank:
    """All data queues of the network, with the slot-update logic.

    Destinations are excluded: the paper's destination node ``d_s``
    passes packets straight to the upper layers.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        session_destinations: Mapping[SessionId, NodeId],
        semantics: QueueSemantics = QueueSemantics.PAPER,
    ) -> None:
        self._destinations = dict(session_destinations)
        self._semantics = semantics
        self._queues: Dict[Tuple[NodeId, SessionId], DataQueue] = {}
        for node in nodes:
            for session, dest in self._destinations.items():
                if node != dest:
                    self._queues[(node, session)] = DataQueue(node, session)

    @property
    def semantics(self) -> QueueSemantics:
        """The transfer-accounting mode in force."""
        return self._semantics

    def backlog(self, node: NodeId, session: SessionId) -> Packets:
        """``Q_i^s(t)``; destinations report a permanent 0."""
        if self._destinations.get(session) == node:
            return 0.0
        try:
            return self._queues[(node, session)].backlog
        except KeyError:
            raise QueueError(f"no queue for node {node}, session {session}") from None

    def has_queue(self, node: NodeId, session: SessionId) -> bool:
        """True unless ``node`` is the destination of ``session``."""
        return (node, session) in self._queues

    def total_backlog(self, nodes: Iterable[NodeId]) -> Packets:
        """Sum of backlogs over ``nodes`` and all sessions."""
        node_set = set(nodes)
        return sum(
            q.backlog for (node, _), q in self._queues.items() if node in node_set
        )

    def snapshot(self) -> Dict[Tuple[NodeId, SessionId], Packets]:
        """A copy of every backlog, keyed by ``(node, session)``."""
        return {key: q.backlog for key, q in self._queues.items()}

    def effective_rates(
        self, rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets]
    ) -> Dict[Tuple[NodeId, NodeId, SessionId], Packets]:
        """Transfer rates after applying the configured semantics.

        In ``PAPER`` mode the scheduled rates pass through unchanged.
        In ``PACKET_ACCURATE`` mode each transmitter's outgoing rates
        for a session are scaled down proportionally so their sum never
        exceeds its backlog.
        """
        if self._semantics is QueueSemantics.PAPER:
            return dict(rates)

        outgoing: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, _rx, session), rate in rates.items():
            key = (tx, session)
            outgoing[key] = outgoing.get(key, 0.0) + rate

        effective: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in rates.items():
            total = outgoing[(tx, session)]
            if total <= 0:
                effective[(tx, rx, session)] = 0.0
                continue
            available = self.backlog(tx, session)
            scale = min(1.0, available / total)
            effective[(tx, rx, session)] = rate * scale
        return effective

    def step(
        self,
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets],
        admissions: Mapping[SessionId, Iterable[Tuple[NodeId, Packets]]],
    ) -> Dict[Tuple[NodeId, SessionId], Packets]:
        """Advance every queue one slot.

        Args:
            rates: scheduled per-link per-session rates
                ``l_ij^s(t)`` keyed by ``(tx, rx, session)`` (packets).
            admissions: per-session lists of ``(source_bs, k)`` arrival
                pairs (a single pair for the integral algorithm; the
                relaxed LP bound may split across base stations).

        Returns:
            The new backlogs, keyed like :meth:`snapshot`.
        """
        transfer = self.effective_rates(rates)

        service: Dict[Tuple[NodeId, SessionId], float] = {}
        arrivals: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in transfer.items():
            service[(tx, session)] = service.get((tx, session), 0.0) + rate
            arrivals[(rx, session)] = arrivals.get((rx, session), 0.0) + rate
        for session, pairs in admissions.items():
            for source, admitted in pairs:
                if admitted < 0:
                    raise QueueError(
                        f"negative admission {admitted} for session {session}"
                    )
                arrivals[(source, session)] = (
                    arrivals.get((source, session), 0.0) + admitted
                )

        for key, queue in self._queues.items():
            queue.step(service.get(key, 0.0), arrivals.get(key, 0.0))
        return self.snapshot()

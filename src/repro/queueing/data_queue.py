"""Per-node per-session data queues ``Q_i^s`` (Eq. 15).

The queueing law is

    Q_i^s(t+1) = max(Q_i^s(t) - sum_j l_ij^s(t), 0)
                 + sum_j l_ji^s(t) + k_s(t) * 1[i = s_s(t)],

with the destination node keeping no queue (delivered packets leave the
network immediately).  Two transfer semantics are supported (see
``QueueSemantics``): the paper's null-packet idealisation credits the
receiver with the full scheduled rate; the packet-accurate mode credits
only what the transmitter really held.

The bank stores every backlog in one dense ``(num_nodes, num_sessions)``
array (optionally shared with an
:class:`~repro.core.arraystate.ArrayState`) and advances Eq. 15 with a
single vectorized update; elementwise numpy float64 arithmetic is
bit-identical to the scalar chain it replaced.  The per-object
:class:`DataQueue` remains for standalone use and for the reference
object path in :mod:`repro.queueing.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.axes import NodeSessionMat, QueueMask, QueuePackets
from repro.core.arraystate import ArrayState, seq_sum
from repro.exceptions import QueueError
from repro.types import NodeId, QueueSemantics, SessionId
from repro.units import Packets


@dataclass
class DataQueue:
    """One ``Q_i^s`` backlog counter (packets)."""

    node: NodeId
    session: SessionId
    backlog: Packets = 0.0

    def step(self, service: Packets, arrivals: Packets) -> Packets:
        """Advance Eq. (15) by one slot and return the new backlog."""
        if service < 0:
            raise QueueError(
                f"negative service {service} at Q[{self.node}][{self.session}]"
            )
        if arrivals < 0:
            raise QueueError(
                f"negative arrivals {arrivals} at Q[{self.node}][{self.session}]"
            )
        self.backlog = max(self.backlog - service, 0.0) + arrivals
        return self.backlog


class DataQueueBank:
    """All data queues of the network, with the slot-update logic.

    Destinations are excluded: the paper's destination node ``d_s``
    passes packets straight to the upper layers.

    Backlogs live in ``self._q[row, col]`` with rows in ``nodes`` order
    and columns in ``session_destinations`` key order; destination cells
    exist in the array but are masked invalid and pinned at ``0.0``.
    When ``storage`` is given the bank adopts the ``ArrayState``'s ``q``
    buffer (and its frozen indices) instead of allocating its own.
    """

    # Axis declarations feeding the R020-R023 analyzer.
    _q: QueuePackets
    _valid: QueueMask
    _invalid: QueueMask

    def __init__(
        self,
        nodes: Iterable[NodeId],
        session_destinations: Mapping[SessionId, NodeId],
        semantics: QueueSemantics = QueueSemantics.PAPER,
        storage: Optional[ArrayState] = None,
    ) -> None:
        """Freeze the node/session index and allocate (or adopt) ``q``.

        Cold path: runs once, before the slot loop.
        """
        self._destinations = dict(session_destinations)
        self._semantics = semantics
        if storage is not None:
            self._node_order: Tuple[NodeId, ...] = tuple(range(storage.num_nodes))
            self._rows: Dict[NodeId, int] = {i: i for i in self._node_order}
            self._session_order: Tuple[SessionId, ...] = storage.sessions
            self._cols: Dict[SessionId, int] = storage.session_col
            self._q = storage.q
            self._valid = storage.q_valid
            self._invalid = storage.q_invalid
        else:
            self._node_order = tuple(nodes)
            self._rows = {node: row for row, node in enumerate(self._node_order)}
            self._session_order = tuple(self._destinations)
            self._cols = {sid: col for col, sid in enumerate(self._session_order)}
            shape = (len(self._node_order), len(self._session_order))
            self._q = np.zeros(shape)
            valid = np.ones(shape, dtype=bool)
            for session, dest in self._destinations.items():
                row = self._rows.get(dest)
                if row is not None:
                    valid[row, self._cols[session]] = False
            self._valid = valid
            self._invalid = ~valid
        self._has_invalid = bool(self._invalid.any())

    @property
    def semantics(self) -> QueueSemantics:
        """The transfer-accounting mode in force."""
        return self._semantics

    def backlog(self, node: NodeId, session: SessionId) -> Packets:
        """``Q_i^s(t)``; destinations report a permanent 0."""
        if self._destinations.get(session) == node:
            return 0.0
        row = self._rows.get(node)
        col = self._cols.get(session)
        if row is None or col is None:
            raise QueueError(f"no queue for node {node}, session {session}")
        return float(self._q[row, col])

    def has_queue(self, node: NodeId, session: SessionId) -> bool:
        """True unless ``node`` is the destination of ``session``."""
        row = self._rows.get(node)
        col = self._cols.get(session)
        return row is not None and col is not None and bool(self._valid[row, col])

    def total_backlog(self, nodes: Iterable[NodeId]) -> Packets:
        """Sum of backlogs over ``nodes`` and all sessions."""
        node_set = set(nodes)
        rows = [row for node, row in self._rows.items() if node in node_set]  # noqa: R006 - node-count row filter in front of the vectorized sum
        # Invalid cells hold exactly 0.0, so summing whole rows matches
        # the valid-cells-only sequential sum bit for bit.
        return seq_sum(self._q[rows])

    def snapshot(self) -> Dict[Tuple[NodeId, SessionId], Packets]:
        """A copy of every backlog, keyed by ``(node, session)``.

        Cold path: used by diagnostics and the contracts checker, not
        the per-slot update.
        """
        q = self._q
        valid = self._valid
        return {
            (node, session): float(q[row, col])
            for row, node in enumerate(self._node_order)
            for col, session in enumerate(self._session_order)
            if valid[row, col]
        }

    def effective_rates(
        self, rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets]
    ) -> Dict[Tuple[NodeId, NodeId, SessionId], Packets]:
        """Transfer rates after applying the configured semantics.

        In ``PAPER`` mode the scheduled rates pass through unchanged.
        In ``PACKET_ACCURATE`` mode each transmitter's outgoing rates
        for a session are scaled down proportionally so their sum never
        exceeds its backlog.
        """
        if self._semantics is QueueSemantics.PAPER:
            return dict(rates)

        outgoing: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, _rx, session), rate in rates.items():
            key = (tx, session)
            outgoing[key] = outgoing.get(key, 0.0) + rate

        effective: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in rates.items():
            total = outgoing[(tx, session)]
            if total <= 0:
                effective[(tx, rx, session)] = 0.0
                continue
            available = self.backlog(tx, session)
            scale = min(1.0, available / total)
            effective[(tx, rx, session)] = rate * scale
        return effective

    def step(
        self,
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets],
        admissions: Mapping[SessionId, Iterable[Tuple[NodeId, Packets]]],
    ) -> None:
        """Advance every queue one slot (vectorized Eq. 15).

        Args:
            rates: scheduled per-link per-session rates
                ``l_ij^s(t)`` keyed by ``(tx, rx, session)`` (packets).
            admissions: per-session lists of ``(source_bs, k)`` arrival
                pairs (a single pair for the integral algorithm; the
                relaxed LP bound may split across base stations).
        """
        service, arrivals = self.build_buffers(rates, admissions)
        self.apply_buffers(service, arrivals)

    def build_buffers(
        self,
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], Packets],
        admissions: Mapping[SessionId, Iterable[Tuple[NodeId, Packets]]],
    ) -> Tuple[NodeSessionMat, NodeSessionMat]:
        """Scatter one slot's decisions into ``(service, arrivals)``.

        This is the *exchange* half of Eq. 15: the decision dicts are
        walked once, in their (global, deterministic) insertion order,
        producing dense ``(N, S)`` buffers.  The sharded loop builds
        these globally — a boundary link's rate lands in the service
        buffer at its transmitter's row and in the arrival buffer at
        its receiver's row, whichever shards own them — and then applies
        them shard by shard via :meth:`apply_buffers`.
        """
        transfer = self.effective_rates(rates)

        service: NodeSessionMat = np.zeros(self._q.shape)
        arrivals: NodeSessionMat = np.zeros(self._q.shape)
        rows = self._rows
        cols = self._cols
        for (tx, rx, session), rate in transfer.items():  # noqa: R006 - decision-sized mapping feeding the vectorized buffers
            col = cols.get(session)
            if col is None:
                continue
            row = rows.get(tx)
            if row is not None:
                service[row, col] += rate
            row = rows.get(rx)
            if row is not None:
                arrivals[row, col] += rate
        for session, pairs in admissions.items():  # noqa: R006 - decision-sized mapping feeding the vectorized buffers
            col = cols.get(session)
            for source, admitted in pairs:
                if admitted < 0:
                    raise QueueError(
                        f"negative admission {admitted} for session {session}"
                    )
                row = rows.get(source)
                if col is not None and row is not None:
                    arrivals[row, col] += admitted

        bad = ((service < 0.0) | (arrivals < 0.0)) & self._valid
        if bad.any():
            row, col = (int(i) for i in np.argwhere(bad)[0])
            node = self._node_order[row]
            session = self._session_order[col]
            if service[row, col] < 0:
                raise QueueError(
                    f"negative service {service[row, col]} at Q[{node}][{session}]"
                )
            raise QueueError(
                f"negative arrivals {arrivals[row, col]} at Q[{node}][{session}]"
            )
        return service, arrivals

    def apply_buffers(
        self,
        service: NodeSessionMat,
        arrivals: NodeSessionMat,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        """Advance Eq. 15 from prebuilt buffers, optionally row-sliced.

        The update is elementwise per queue cell, so applying it to any
        row subset (``rows``, a shard's node rows) touches exactly the
        values the full-bank update would — the sharded per-region
        applies compose to a bit-identical whole.
        """
        if rows is None:
            np.subtract(self._q, service, out=self._q)
            np.maximum(self._q, 0.0, out=self._q)
            np.add(self._q, arrivals, out=self._q)
            if self._has_invalid:
                # Destination cells take no arrivals; re-pin them at 0.0.
                self._q[self._invalid] = 0.0
            return
        # Fancy indexing copies, so the slice is updated out of place
        # and written back in one assignment.
        take = self._q[rows]
        np.subtract(take, service[rows], out=take)
        np.maximum(take, 0.0, out=take)
        np.add(take, arrivals[rows], out=take)
        if self._has_invalid:
            take[self._invalid[rows]] = 0.0
        self._q[rows] = take

"""Incremental result cache for the lint and analysis CLIs.

Both CLIs re-run on every pre-commit invocation; almost always the
tree is unchanged since the last run.  This module memoizes findings
on disk under ``.cache/analysis/``, keyed by a digest of

* the tool name and a cache-format version salt,
* the rule-selection spec (``--select``/``--ignore``),
* every analyzed file's display path and content hash.

Per-file rules (``repro.lint``) cache one entry per file, so editing
one module re-lints only that module.  The interprocedural analysis
caches one entry for the whole tree — a single edited module can
change findings in *other* modules through the call graph, so
per-module reuse would be unsound; the tree key still makes the
no-change case (the common pre-commit path) near-instant.

All cache failures — unreadable entries, corrupt JSON, read-only
filesystems — degrade silently to re-running the analysis; the cache
can never change results, only skip work.  ``--no-cache`` bypasses it
entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lint.rules import Finding

#: Bump when the cached payload layout or any rule semantics change
#: in a way the spec string does not capture.
CACHE_VERSION = "1"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".cache") / "analysis"


def content_digest(source: str) -> str:
    """Stable hash of one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FindingsCache:
    """A keyed findings store under ``directory``.

    ``spec`` folds every result-affecting option (selected rule ids,
    tool version) into the key so stale entries are simply never
    looked up; old files are harmless and small.
    """

    def __init__(self, directory: Path, tool: str, spec: str) -> None:
        self._directory = directory
        self._prefix = f"{tool}:{CACHE_VERSION}:{spec}"

    def key(self, items: Sequence[Tuple[str, str]]) -> str:
        """Digest of the spec plus (display_path, content_hash) pairs."""
        hasher = hashlib.sha256(self._prefix.encode("utf-8"))
        for display, digest in items:
            hasher.update(b"\x00")
            hasher.update(display.encode("utf-8"))
            hasher.update(b"\x01")
            hasher.update(digest.encode("utf-8"))
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self._directory / f"{key}.json"

    def load(self, key: str) -> Optional[List[Finding]]:
        """The cached findings for ``key``, or None on any failure."""
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            return [
                Finding(
                    path=entry["path"],
                    line=int(entry["line"]),
                    col=int(entry["col"]),
                    rule_id=entry["rule"],
                    message=entry["message"],
                )
                for entry in payload["findings"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, findings: Sequence[Finding]) -> None:
        """Persist ``findings`` under ``key``; failures are ignored."""
        payload = {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule_id,
                    "message": f.message,
                }
                for f in findings
            ]
        }
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, indent=None, sort_keys=False),
                encoding="utf-8",
            )
            os.replace(tmp, self._path(key))
        except OSError:
            pass

"""Command-line front end for the project lint rules.

Usage::

    python -m repro.lint [PATH ...] [--select R001,R005] [--ignore R006]
                         [--explain [RULE]]
                         [--format text|json|github|sarif] [--no-cache]

Paths may be files or directories; directories are walked recursively
for ``*.py``, skipping VCS/build/cache trees.  Findings print as
``path:line:col: R00X message``.  Exit status: 0 clean, 1 findings
(or unparsable files), 2 internal/usage error — so the command slots
directly into ``scripts/check.sh``, pre-commit and CI.  Per-file
results are memoized under ``.cache/analysis/`` keyed by content
hash, so unchanged files are never re-linted (``--no-cache`` bypasses).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.cache import DEFAULT_CACHE_DIR, FindingsCache, content_digest
from repro.lint.emitter import FORMATS, emit
from repro.lint.rules import ALL_RULES, RULES_BY_ID, FileContext, Finding, Rule

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".hypothesis",
        ".pytest_cache",
        ".mypy_cache",
        ".ruff_cache",
        "build",
        "dist",
        ".venv",
        "venv",
    }
)


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand the CLI path arguments into a sorted list of .py files."""
    found: List[Path] = []
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for path in candidates:
            if any(
                part in SKIP_DIRS or part.endswith(".egg-info")
                for part in path.parts
            ):
                continue
            key = path.resolve()
            if key not in seen:
                seen.add(key)
                found.append(path)
    return found


def lint_source(
    source: str,
    display_path: str,
    rules: Sequence[Rule],
    path: Optional[Path] = None,
) -> List[Finding]:
    """Lint one file's source text; raises SyntaxError on bad input."""
    tree = ast.parse(source, filename=display_path)
    ctx = FileContext.build(
        path=path if path is not None else Path(display_path),
        display_path=display_path,
        source=source,
        tree=tree,
    )
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> Iterator[Finding]:
    """Lint every file under ``paths``, yielding findings in order."""
    for path in discover_files(paths):
        display = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            yield from sorted(
                lint_source(source, display, rules, path=path),
                key=lambda f: (f.line, f.col, f.rule_id),
            )
        except SyntaxError as exc:
            yield Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id="E999",
                message=f"syntax error: {exc.msg}",
            )


def _lint_paths_cached(
    paths: Sequence[str], rules: Sequence[Rule], use_cache: bool
) -> Iterator[Finding]:
    """Like :func:`lint_paths`, memoizing per-file results on disk.

    Every lint rule is per-file, so each file's findings depend only
    on its own content and the selected rule set — the cache key is
    exactly (rule ids, display path, content hash), and editing one
    module re-lints only that module.
    """
    if not use_cache:
        yield from lint_paths(paths, rules)
        return
    spec = ",".join(sorted(rule.rule_id for rule in rules))
    cache = FindingsCache(DEFAULT_CACHE_DIR, "repro.lint", spec)
    for path in discover_files(paths):
        display = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            yield from lint_paths([display], rules)
            continue
        key = cache.key([(display, content_digest(source))])
        cached = cache.load(key)
        if cached is not None:
            yield from cached
            continue
        try:
            findings = sorted(
                lint_source(source, display, rules, path=path),
                key=lambda f: (f.line, f.col, f.rule_id),
            )
        except SyntaxError as exc:
            findings = [
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    rule_id="E999",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        cache.store(key, findings)
        yield from findings


def _explain(rule_id: Optional[str]) -> int:
    """Print the rule catalogue (or one rule's full rationale)."""
    if rule_id is None:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        print()
        print("Use --explain RULE_ID for the full rationale of one rule.")
        return 0
    rule = RULES_BY_ID.get(rule_id.upper())
    if rule is None:
        print(f"unknown rule id: {rule_id}", file=sys.stderr)
        return 2
    print(f"{rule.rule_id} — {rule.title}")
    print()
    print(rule.explain)
    return 0


def _parse_ids(spec: Optional[str], option: str) -> Optional[List[str]]:
    """Validate a comma-separated id list against the catalogue."""
    if spec is None:
        return None
    ids: List[str] = []
    for token in spec.split(","):
        token = token.strip().upper()
        if not token:
            continue
        if token not in RULES_BY_ID:
            print(f"repro.lint: unknown rule id in {option}: {token}", file=sys.stderr)
            raise SystemExit(2)
        ids.append(token)
    return ids


def _select_rules(select: Optional[str], ignore: Optional[str] = None) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` into rule instances."""
    chosen_ids = _parse_ids(select, "--select")
    ignored_ids = set(_parse_ids(ignore, "--ignore") or ())
    if chosen_ids is None:
        chosen = list(ALL_RULES)
    else:
        chosen = [RULES_BY_ID[rid] for rid in chosen_ids]
    return [rule for rule in chosen if rule.rule_id not in ignored_ids]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status.

    0 clean, 1 findings, 2 internal or usage error.  Tolerates a
    downstream pipe closing early (``... | head``) by exiting 141
    (128 + SIGPIPE) instead of tracebacking.
    """
    try:
        return _run(argv)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except SystemExit:
        raise
    except Exception as exc:  # pragma: no cover - defensive
        print(f"repro.lint: internal error: {exc!r}", file=sys.stderr)
        return 2


def _run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Paper-reproduction lint rules (R001-R006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--explain",
        nargs="?",
        const="",
        default=None,
        metavar="RULE",
        help="print the rule catalogue, or one rule's full rationale",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip (complement of --select)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=FORMATS,
        default="text",
        help="output encoding: text lines, a json object, GitHub "
        "Actions ::error annotations, or a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the .cache/analysis/ per-file findings cache",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain or None)

    paths = args.paths or ["src", "tests", "benchmarks"]
    rules = _select_rules(args.select, args.ignore)
    try:
        findings = list(
            _lint_paths_cached(paths, rules, use_cache=not args.no_cache)
        )
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    emit(
        findings,
        args.output_format,
        tool_name="repro.lint",
        rule_titles={rule.rule_id: rule.title for rule in ALL_RULES},
    )
    if findings:
        files = len({f.path for f in findings})
        print(
            f"repro.lint: {len(findings)} finding(s) in {files} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Shared finding emitters for the lint and analysis CLIs.

Both ``python -m repro.lint`` and ``python -m repro.analysis`` accept
``--format {text,json,github}`` and route their findings through this
module so the three encodings stay byte-identical across the two
tools:

* ``text`` — one ``path:line:col: RULE message`` line per finding
  (the historical default, unchanged);
* ``json`` — a single object ``{"findings": [...], "count": N}`` for
  editor integrations and scripted triage;
* ``github`` — ``::error`` workflow commands, which GitHub Actions
  renders as inline PR annotations;
* ``sarif`` — a SARIF 2.1.0 log, the interchange format GitHub code
  scanning ingests via ``github/codeql-action/upload-sarif``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.lint.rules import Finding

#: The accepted ``--format`` values, in help-text order.
FORMATS: Sequence[str] = ("text", "json", "github", "sarif")

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_JsonFinding = Dict[str, Union[str, int]]


def finding_to_dict(finding: Finding) -> _JsonFinding:
    """The JSON object for one finding."""
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
    }


def render_text(findings: Sequence[Finding]) -> List[str]:
    """``text`` format: one rendered line per finding."""
    return [finding.render() for finding in findings]


def render_json(findings: Sequence[Finding]) -> List[str]:
    """``json`` format: a single pretty-printed object."""
    payload = {
        "findings": [finding_to_dict(f) for f in findings],
        "count": len(findings),
    }
    return [json.dumps(payload, indent=2, sort_keys=False)]


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (GitHub's own rules)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: Sequence[Finding]) -> List[str]:
    """``github`` format: one ``::error`` workflow command per finding."""
    lines: List[str] = []
    for finding in findings:
        properties = (
            f"file={_escape_property(finding.path)}"
            f",line={finding.line}"
            f",col={finding.col}"
            f",title={_escape_property(finding.rule_id)}"
        )
        lines.append(f"::error {properties}::{_escape_data(finding.message)}")
    return lines


def render_sarif(
    findings: Sequence[Finding],
    tool_name: str = "repro.lint",
    rule_titles: Optional[Mapping[str, str]] = None,
) -> List[str]:
    """``sarif`` format: one SARIF 2.1.0 log object.

    ``rule_titles`` (id -> short description) populates the driver's
    rule metadata; ids seen only in findings still get a bare entry so
    the log validates against the schema either way.
    """
    titles = dict(rule_titles or {})
    seen_ids = sorted({f.rule_id for f in findings} | set(titles))
    rules = []
    for rule_id in seen_ids:
        entry: Dict[str, object] = {"id": rule_id}
        title = titles.get(rule_id)
        if title:
            entry["shortDescription"] = {"text": title}
        rules.append(entry)
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": tool_name, "rules": rules}},
                "results": results,
            }
        ],
    }
    return [json.dumps(log, indent=2, sort_keys=False)]


def render(
    findings: Sequence[Finding],
    output_format: str,
    tool_name: str = "repro.lint",
    rule_titles: Optional[Mapping[str, str]] = None,
) -> List[str]:
    """Dispatch on ``output_format`` (one of :data:`FORMATS`)."""
    if output_format == "text":
        return render_text(findings)
    if output_format == "json":
        return render_json(findings)
    if output_format == "github":
        return render_github(findings)
    if output_format == "sarif":
        return render_sarif(findings, tool_name, rule_titles)
    raise ValueError(f"unknown output format: {output_format!r}")


def emit(
    findings: Sequence[Finding],
    output_format: str,
    tool_name: str = "repro.lint",
    rule_titles: Optional[Mapping[str, str]] = None,
) -> None:
    """Print the findings in ``output_format`` to stdout."""
    for line in render(findings, output_format, tool_name, rule_titles):
        print(line)

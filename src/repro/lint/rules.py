"""The project lint rules (R001-R006), implemented over ``ast``.

Each rule is a small class with an id, a one-line title, a long
``explain`` text (surfaced by ``python -m repro.lint --explain R00x``)
and a ``check`` method yielding :class:`Finding` objects.  Rules see a
:class:`FileContext` describing where the file sits in the repo (library
vs. test code), because several rules are scoped: the RNG discipline is
strict in library code but allows explicitly seeded generators in
tests; float-equality and annotation rules do not apply to test code
at all.

Suppression: a trailing ``# noqa`` comment silences every rule on that
line; ``# noqa: R002`` silences only the listed rule ids.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Legacy ``numpy.random`` module-level functions that mutate or read
#: the hidden global RandomState — forbidden everywhere (R001).
LEGACY_GLOBAL_RANDOM_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "exponential",
        "binomial",
        "beta",
        "gamma",
        "lognormal",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Builtin/collections constructors that produce mutable objects (R003).
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)

_EQUATION_RE = re.compile(
    r"(?:Eq|Eqs|Equation|Constraint)s?\.?\s*\(?\s*\d+"
    r"|\(\d+\)"
    r"|Section\s+[IVXLC]+",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: R00X message`` — the CLI output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being checked."""

    path: Path
    display_path: str
    source: str
    tree: ast.AST
    #: Lines carrying a ``# noqa`` comment: line number -> suppressed
    #: rule ids (empty set means "suppress everything on this line").
    noqa: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, display_path: str, source: str, tree: ast.AST) -> "FileContext":
        """Parse the noqa comments and assemble the context."""
        noqa: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                noqa[lineno] = set()
            else:
                noqa[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            noqa=noqa,
        )

    @property
    def is_test(self) -> bool:
        """True for test and benchmark code (rules relax there)."""
        parts = set(self.path.parts)
        if "tests" in parts or "benchmarks" in parts:
            return True
        name = self.path.name
        return name.startswith(("test_", "bench_")) or name == "conftest.py"

    @property
    def is_rng_module(self) -> bool:
        """True for ``sim/rng.py`` — the one home of generator creation."""
        return self.path.name == "rng.py" and self.path.parent.name == "sim"

    @property
    def is_library(self) -> bool:
        """True for files inside the installed ``repro`` package."""
        return "repro" in self.path.parts and not self.is_test

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True when a ``# noqa`` comment silences ``rule_id`` here."""
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return not codes or rule_id in codes

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Optional[Finding]:
        """A :class:`Finding` at ``node``, unless noqa-suppressed."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if self.suppressed(line, rule_id):
            return None
        return Finding(
            path=self.display_path,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
        )


def _numpy_aliases(tree: ast.AST) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Resolve the module's numpy import aliases.

    Returns:
        ``(modules, names)`` where ``modules`` maps local module
        aliases to canonical dotted paths (``np`` -> ``numpy``) and
        ``names`` maps directly imported attribute names
        (``default_rng`` -> ``numpy.random.default_rng``).
    """
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        modules[alias.asname or "random"] = "numpy.random"
            elif node.module == "numpy.random":
                for alias in node.names:
                    names[alias.asname or alias.name] = f"numpy.random.{alias.name}"
    return modules, names


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _canonical_call_target(
    node: ast.Call, modules: Dict[str, str], names: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted path of a call's target, numpy-resolved."""
    if isinstance(node.func, ast.Name):
        return names.get(node.func.id)
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    if root in modules:
        return f"{modules[root]}.{rest}" if rest else modules[root]
    return dotted


class Rule:
    """Base class: id, title, explain text, and the check hook."""

    rule_id: str = ""
    title: str = ""
    explain: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


class RngDisciplineRule(Rule):
    """R001 — RNG streams are created in one place only."""

    rule_id = "R001"
    title = "no numpy global randomness / stray default_rng outside sim/rng.py"
    explain = """\
The repo's reproducibility contract (sim/rng.py) fans a single scenario
seed into named, independent streams so bound/architecture comparisons
stay *paired*: two runs sharing a seed see the identical environment
sample path.  Any code that creates its own generator or touches
numpy's hidden global RandomState breaks that pairing silently.

Forbidden:
  * the legacy global API anywhere: np.random.seed(...),
    np.random.uniform(...), np.random.RandomState(...), ...
  * np.random.default_rng(...) in library code outside sim/rng.py —
    accept an np.random.Generator argument and thread it explicitly;
  * np.random.default_rng() *without an explicit seed* in test or
    benchmark code (a seeded default_rng(123) fixture is fine there).

Fix: accept a Generator parameter, or derive a child stream via
RngStreams / SeedSequence.spawn in sim/rng.py.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        modules, names = _numpy_aliases(ctx.tree)
        if not modules and not names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical_call_target(node, modules, names)
            if target is None or not target.startswith("numpy.random."):
                continue
            attr = target.rsplit(".", 1)[1]
            finding: Optional[Finding] = None
            if attr == "default_rng":
                if not ctx.is_test:
                    finding = ctx.finding(
                        node,
                        self.rule_id,
                        "default_rng() outside sim/rng.py: thread an "
                        "np.random.Generator explicitly instead",
                    )
                elif not node.args and not any(
                    kw.arg == "seed" for kw in node.keywords
                ):
                    finding = ctx.finding(
                        node,
                        self.rule_id,
                        "unseeded default_rng() in test code is "
                        "non-deterministic: pass an explicit seed",
                    )
            elif attr in LEGACY_GLOBAL_RANDOM_FNS:
                finding = ctx.finding(
                    node,
                    self.rule_id,
                    f"numpy global-state randomness np.random.{attr}() "
                    "is forbidden: use an explicit np.random.Generator",
                )
            if finding is not None:
                yield finding


class FloatEqualityRule(Rule):
    """R002 — no exact float equality on computed quantities."""

    rule_id = "R002"
    title = "no float == / != against float literals (use tolerance helpers)"
    explain = """\
Energy balances, queue backlogs and distances are accumulated floats;
comparing them to a float literal with == or != is a latent bug that
round-off turns into a missed branch (see the mobility waypoint check
that motivated this rule).  Comparisons between two computed values
(e.g. tie-detection against min() of the same collection) are exact by
construction and stay allowed; only literal comparands are flagged.

Fix: use repro.constants.approx_eq / approx_zero, or restructure the
comparison as an inequality with an explicit tolerance.  Intentional
exact comparisons (e.g. dropping exactly-zero LP coefficients) carry a
`# noqa: R002` with a justification.

Test code is exempt: asserting exact deterministic outputs is the
point of a regression test.
"""

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            involved = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, involved[:-1], involved[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    finding = ctx.finding(
                        node,
                        self.rule_id,
                        f"exact float {symbol} against a literal: use "
                        "repro.constants.approx_eq/approx_zero",
                    )
                    if finding is not None:
                        yield finding
                    break


class MutableDefaultRule(Rule):
    """R003 — no mutable default arguments."""

    rule_id = "R003"
    title = "no mutable default arguments"
    explain = """\
A mutable default ([], {}, set(), defaultdict(...)) is evaluated once
at definition time and shared across every call; state leaks between
calls, which in this codebase means state leaks between *slots* or
between *simulation runs* — exactly the class of bug the paired-seed
reproducibility setup cannot tolerate.

Fix: default to None and construct inside the body, or use
dataclasses.field(default_factory=...) in dataclass definitions.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    finding = ctx.finding(
                        default,
                        self.rule_id,
                        f"mutable default argument in {name}(): use "
                        "None and construct in the body",
                    )
                    if finding is not None:
                        yield finding

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            return name in MUTABLE_CONSTRUCTORS
        return False


class PublicAnnotationRule(Rule):
    """R004 — public library functions carry full type annotations."""

    rule_id = "R004"
    title = "public functions in src/repro must be fully type-annotated"
    explain = """\
mypy runs strict only on the foundation modules (repro.types,
repro.constants, repro.contracts, repro.lint); this rule extends one
strict guarantee — annotated public surfaces — to the whole library so
call-site errors surface at review time rather than inside a 10k-slot
run.  Every parameter (except self/cls) and the return type of every
public function or public-class method defined in src/repro must be
annotated.

Private helpers (leading underscore), dunders, nested functions and
test code are exempt; @overload stubs are exempt.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library:
            return
        module = ctx.tree
        if not isinstance(module, ast.Module):
            return
        for node in module.body:
            yield from self._check_scope(ctx, node, is_method=False)

    def _check_scope(
        self, ctx: FileContext, node: ast.stmt, is_method: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_function(ctx, node, is_method)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for member in node.body:
                yield from self._check_scope(ctx, member, is_method=True)

    def _check_function(
        self,
        ctx: FileContext,
        node: ast.stmt,
        is_method: bool,
    ) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        for decorator in node.decorator_list:
            dotted = _dotted_name(decorator) or ""
            if dotted.split(".")[-1] == "overload":
                return
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            a.arg
            for a in positional + list(args.kwonlyargs)
            if a.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            finding = ctx.finding(
                node,
                self.rule_id,
                f"public function {node.name}() has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
            if finding is not None:
                yield finding
        if node.returns is None:
            finding = ctx.finding(
                node,
                self.rule_id,
                f"public function {node.name}() has no return annotation",
            )
            if finding is not None:
                yield finding


class EquationCitationRule(Rule):
    """R005 — control/solver modules cite their paper equations."""

    rule_id = "R005"
    title = "control and solver modules must cite paper equation numbers"
    explain = """\
The control plane (repro/control/*) and the numerical solvers
(repro/solvers/*) each implement a specific piece of the paper's
Section IV decomposition; the mapping from module to equations is the
primary navigation aid when auditing the reproduction against the
paper.  Every such module's docstring must cite at least one equation,
constraint, or section number — e.g. "Eq. 15", "(22)", "Eqs. 9-14",
or "Section IV-C-1".

__init__.py re-export shims and test code are exempt.
"""

    _SCOPED_DIRS = ("control", "solvers")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test or ctx.path.name == "__init__.py":
            return
        if ctx.path.parent.name not in self._SCOPED_DIRS:
            return
        if "repro" not in ctx.path.parts:
            return
        module = ctx.tree
        if not isinstance(module, ast.Module):
            return
        docstring = ast.get_docstring(module)
        if docstring is None:
            finding = ctx.finding(
                module,
                self.rule_id,
                "control/solver module has no docstring (must cite its "
                "paper equations)",
            )
            if finding is not None:
                yield finding
            return
        if not _EQUATION_RE.search(docstring):
            finding = ctx.finding(
                module,
                self.rule_id,
                "module docstring cites no paper equation/constraint/"
                "section number",
            )
            if finding is not None:
                yield finding


class HotPathDictLoopRule(Rule):
    """R006 — hot-path modules stay vectorized over state containers."""

    rule_id = "R006"
    title = "no per-item dict iteration over state containers in hot-path modules"
    explain = """\
PR 5 moved the per-slot state — data queues Q_i^s (Eq. 15), virtual
queues G_ij/H_ij (Eqs. 28/30), battery levels and z_i (Eq. 31) — into
the struct-of-arrays core (repro/core/arraystate.py).  The hot per-slot
modules (repro/queueing/*, repro/state.py, repro/control/router.py,
repro/control/scheduler.py) now update that state through vectorized
numpy kernels; a `for key, value in self.<container>.items()` loop over
nodes, links, or sessions in those modules silently reintroduces the
interpreter-bound path the refactor removed.

Flagged: for-loops and comprehensions iterating `.items()` /
`.values()` / `.keys()` of an *attribute-chain* receiver (e.g.
`self._queues.items()`, `decision.energy.allocations.items()`) — those
are the persistent containers that scale with network size.

Exempt by design:
  * bare-name receivers (`transfer.items()`): local working dicts are
    decision-sized, not network-sized;
  * functions whose docstring marks them "cold path" (constructors,
    snapshot/diagnostic pretty-printing that runs outside the slot
    loop);
  * modules whose docstring contains "R006-exempt" (the reference
    object-path banks in repro/queueing/reference.py keep their loops
    on purpose — they are the equivalence baseline);
  * anything carrying `# noqa: R006` with a justification.

Fix: index through the frozen ArrayState layout (q, g, battery_level
and the link_tx/link_rx index arrays) instead of looping per key, or
document why the loop is not hot.
"""

    _DICT_METHODS = frozenset({"items", "values", "keys"})
    _HOT_CONTROL_FILES = frozenset({"router.py", "scheduler.py"})

    def _in_scope(self, ctx: FileContext) -> bool:
        if not ctx.is_library:
            return False
        parent = ctx.path.parent.name
        if parent == "queueing":
            return True
        if ctx.path.name == "state.py" and parent == "repro":
            return True
        return parent == "control" and ctx.path.name in self._HOT_CONTROL_FILES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        module = ctx.tree
        if isinstance(module, ast.Module):
            docstring = ast.get_docstring(module)
            if docstring is not None and "R006-exempt" in docstring:
                return
        yield from self._walk(ctx, module, exempt=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, exempt: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_exempt = exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                docstring = ast.get_docstring(child) or ""
                if "cold path" in docstring.lower():
                    child_exempt = True
            if not child_exempt:
                if isinstance(child, ast.For):
                    iterables = [child.iter]
                elif isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    iterables = [gen.iter for gen in child.generators]
                else:
                    iterables = []
                for iterable in iterables:
                    receiver = self._state_dict_receiver(iterable)
                    if receiver is None:
                        continue
                    finding = ctx.finding(
                        iterable,
                        self.rule_id,
                        f"per-item iteration over {receiver} in a hot-path "
                        "module: use the ArrayState vectorized kernels, or "
                        'mark the enclosing function "cold path"',
                    )
                    if finding is not None:
                        yield finding
            yield from self._walk(ctx, child, child_exempt)

    def _state_dict_receiver(self, node: ast.AST) -> Optional[str]:
        """The dotted receiver of ``<attr-chain>.items()``-style iterables."""
        if not isinstance(node, ast.Call) or node.args or node.keywords:
            return None
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._DICT_METHODS:
            return None
        # Bare-name receivers (local working dicts) are exempt; only
        # attribute chains — persistent state containers — are hot.
        if not isinstance(func.value, ast.Attribute):
            return None
        return _dotted_name(func.value) or "a state container"


#: Every rule, in id order — the CLI's default selection.
ALL_RULES: Sequence[Rule] = (
    RngDisciplineRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    PublicAnnotationRule(),
    EquationCitationRule(),
    HotPathDictLoopRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}

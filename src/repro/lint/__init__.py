"""Project-specific AST lint suite (rules R001-R006).

Run as ``python -m repro.lint src tests benchmarks``; see
``python -m repro.lint --explain`` for the rule catalogue and
``docs/contracts.md`` for the rationale.  The rules guard the
reproduction's paper-facing conventions — RNG stream discipline,
tolerant float comparison on energy/queue quantities, no mutable
defaults, annotated public surfaces, and equation citations in the
control/solver modules.
"""

from __future__ import annotations

from repro.lint.rules import ALL_RULES, RULES_BY_ID, FileContext, Finding, Rule

__all__ = ["ALL_RULES", "RULES_BY_ID", "FileContext", "Finding", "Rule"]

"""``python -m repro.lint`` entry point (see cli.py)."""

from __future__ import annotations

from repro.lint.cli import main

raise SystemExit(main())

"""Node-placement geometry helpers and the uniform-grid spatial index.

The paper places users uniformly at random in a square; the grid and
clustered variants support the example scenarios and tests that need
reproducible or structured layouts.  :class:`UniformGridIndex` is the
cell-bucket neighbor index (the classic WSN trick) that makes link
enumeration sub-quadratic: with the bucket edge at least the query
radius, every neighbor of a point lies in the 3x3 block of buckets
around it, so radius queries touch O(density * r^2) candidates instead
of all N points.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

import numpy as np

from repro.types import Point

#: Cap on grid cells per axis so a tiny cell size over a huge area can
#: never allocate an unbounded bucket table; the index stays exact (the
#: covering-cell computation adapts), only bucket occupancy grows.
MAX_CELLS_PER_AXIS: int = 4096


class UniformGridIndex:
    """Uniform-grid (cell-bucket) spatial index over 2-D positions.

    Points are hashed into square buckets of edge ``cell_size_m``; each
    bucket stores its member indices in ascending order.  Queries are
    *exact*: candidate buckets always cover the query disc (the cover
    widens automatically when the radius exceeds the bucket edge), and
    the final distance filter uses the same elementwise float64 chain
    ``sqrt((dx^2 + dy^2))`` as a brute-force scan, so results match a
    dense all-pairs computation bit for bit.
    """

    def __init__(self, positions: np.ndarray, cell_size_m: float) -> None:
        """Bucket ``positions`` (an ``(N, 2)`` array) once, up front.

        Args:
            positions: node coordinates in metres.
            cell_size_m: bucket edge; clamped to a positive floor and
                widened if needed to respect :data:`MAX_CELLS_PER_AXIS`.
        """
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or (pos.size and pos.shape[1] != 2):
            raise ValueError(f"positions must be (N, 2), got {pos.shape}")
        if not cell_size_m > 0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m}")
        self._pos = pos
        count = pos.shape[0]
        if count == 0:
            self._origin = np.zeros(2)
            self._cell = float(cell_size_m)
            self._shape = (1, 1)
            self._order = np.zeros(0, dtype=np.intp)
            self._starts = np.zeros(2, dtype=np.intp)
            return
        origin = pos.min(axis=0)
        extent = pos.max(axis=0) - origin
        cell = max(
            float(cell_size_m), float(extent.max()) / MAX_CELLS_PER_AXIS
        )
        cols = min(int(extent[0] // cell) + 1, MAX_CELLS_PER_AXIS)
        rows = min(int(extent[1] // cell) + 1, MAX_CELLS_PER_AXIS)
        cx = np.clip(((pos[:, 0] - origin[0]) // cell).astype(np.intp), 0, cols - 1)
        cy = np.clip(((pos[:, 1] - origin[1]) // cell).astype(np.intp), 0, rows - 1)
        cell_id = cy * cols + cx
        # Stable sort keeps members of each bucket in ascending node
        # order — the enumeration order the topology builder relies on.
        order = np.argsort(cell_id, kind="stable")
        counts = np.bincount(cell_id, minlength=rows * cols)
        starts = np.zeros(rows * cols + 1, dtype=np.intp)
        np.cumsum(counts, out=starts[1:])
        self._origin = origin
        self._cell = cell
        self._shape = (rows, cols)
        self._order = order
        self._starts = starts

    @property
    def cell_size_m(self) -> float:
        """The effective bucket edge after clamping (m)."""
        return self._cell

    @property
    def shape(self) -> Tuple[int, int]:
        """Bucket-table shape ``(rows, cols)``."""
        return self._shape

    def cell_members(self, row: int, col: int) -> np.ndarray:
        """Member indices of one bucket, ascending."""
        rows, cols = self._shape
        if not (0 <= row < rows and 0 <= col < cols):
            return np.zeros(0, dtype=np.intp)
        cell_id = row * cols + col
        return self._order[self._starts[cell_id] : self._starts[cell_id + 1]]

    def block_members(
        self, row: int, col: int, reach: int = 1
    ) -> np.ndarray:
        """Members of the ``(2 reach + 1)^2`` bucket block, ascending.

        With ``reach = 1`` and a bucket edge >= the query radius this is
        a superset of every point within the radius of *any* point in
        bucket ``(row, col)``.
        """
        rows, cols = self._shape
        chunks = [
            self.cell_members(r, c)
            for r in range(max(row - reach, 0), min(row + reach + 1, rows))
            for c in range(max(col - reach, 0), min(col + reach + 1, cols))
        ]
        merged = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.intp)
        merged.sort()
        return merged

    def nonempty_cells(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(row, col, members)`` for every occupied bucket."""
        rows, cols = self._shape
        starts = self._starts
        for cell_id in np.flatnonzero(np.diff(starts)):
            row, col = divmod(int(cell_id), cols)
            yield row, col, self._order[starts[cell_id] : starts[cell_id + 1]]

    def query_radius(self, x: float, y: float, radius_m: float) -> np.ndarray:
        """Indices of all points within ``radius_m`` of ``(x, y)``, ascending.

        Exact (closed ball, ``d <= radius``): candidate buckets are the
        ones intersecting the disc's bounding square, then the distance
        filter applies the brute-force float64 chain.
        """
        if radius_m < 0:
            raise ValueError(f"radius_m must be non-negative, got {radius_m}")
        if self._pos.shape[0] == 0:
            return np.zeros(0, dtype=np.intp)
        rows, cols = self._shape
        col_lo = max(int((x - radius_m - self._origin[0]) // self._cell), 0)
        col_hi = min(int((x + radius_m - self._origin[0]) // self._cell), cols - 1)
        row_lo = max(int((y - radius_m - self._origin[1]) // self._cell), 0)
        row_hi = min(int((y + radius_m - self._origin[1]) // self._cell), rows - 1)
        if col_hi < col_lo or row_hi < row_lo:
            return np.zeros(0, dtype=np.intp)
        # Cells of one row are contiguous in cell id and the member
        # table is sorted by cell id, so the whole covering block
        # gathers as one slice per row — O(rows), not O(cells).
        chunks = [
            self._order[
                self._starts[r * cols + col_lo] : self._starts[
                    r * cols + col_hi + 1
                ]
            ]
            for r in range(row_lo, row_hi + 1)
        ]
        candidates = np.concatenate(chunks)
        if candidates.size == 0:
            return candidates
        candidates.sort()
        diffs = self._pos[candidates] - np.array([x, y])
        dist = np.sqrt((diffs**2).sum(axis=1))
        return candidates[dist <= radius_m]


def brute_force_radius_query(
    positions: np.ndarray, x: float, y: float, radius_m: float
) -> np.ndarray:
    """O(N) reference for :meth:`UniformGridIndex.query_radius`.

    Applies the identical elementwise float64 chain over *all* points;
    the property suite asserts exact equality against the grid index.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    diffs = pos - np.array([x, y])
    dist = np.sqrt((diffs**2).sum(axis=1))
    return np.flatnonzero(dist <= radius_m).astype(np.intp)


def uniform_random_placement(
    count: int, side_m: float, rng: np.random.Generator
) -> List[Point]:
    """``count`` points i.i.d. uniform on the ``side_m`` square."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    coords = rng.uniform(0.0, side_m, size=(count, 2))
    return [Point(float(x), float(y)) for x, y in coords]


def grid_placement(count: int, side_m: float) -> List[Point]:
    """``count`` points on a near-square grid with half-cell margins.

    Deterministic; useful for tests that need known pairwise distances.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    cols = int(math.ceil(math.sqrt(count)))
    rows = int(math.ceil(count / cols))
    dx = side_m / cols
    dy = side_m / rows
    points: List[Point] = []
    for k in range(count):
        row, col = divmod(k, cols)
        points.append(Point((col + 0.5) * dx, (row + 0.5) * dy))
    return points


def clustered_placement(
    count: int,
    side_m: float,
    rng: np.random.Generator,
    num_clusters: int = 3,
    cluster_std_m: float = 150.0,
) -> List[Point]:
    """Points drawn around random cluster centres (hot-spot traffic).

    Cluster centres are uniform in the area; each point picks a centre
    uniformly and adds Gaussian jitter, clipped to the area.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    centres = rng.uniform(0.0, side_m, size=(num_clusters, 2))
    assignments = rng.integers(0, num_clusters, size=count)
    jitter = rng.normal(0.0, cluster_std_m, size=(count, 2))
    coords = np.clip(centres[assignments] + jitter, 0.0, side_m)
    return [Point(float(x), float(y)) for x, y in coords]

"""Node-placement geometry helpers.

The paper places users uniformly at random in a square; the grid and
clustered variants support the example scenarios and tests that need
reproducible or structured layouts.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.types import Point


def uniform_random_placement(
    count: int, side_m: float, rng: np.random.Generator
) -> List[Point]:
    """``count`` points i.i.d. uniform on the ``side_m`` square."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    coords = rng.uniform(0.0, side_m, size=(count, 2))
    return [Point(float(x), float(y)) for x, y in coords]


def grid_placement(count: int, side_m: float) -> List[Point]:
    """``count`` points on a near-square grid with half-cell margins.

    Deterministic; useful for tests that need known pairwise distances.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    cols = int(math.ceil(math.sqrt(count)))
    rows = int(math.ceil(count / cols))
    dx = side_m / cols
    dy = side_m / rows
    points: List[Point] = []
    for k in range(count):
        row, col = divmod(k, cols)
        points.append(Point((col + 0.5) * dx, (row + 0.5) * dy))
    return points


def clustered_placement(
    count: int,
    side_m: float,
    rng: np.random.Generator,
    num_clusters: int = 3,
    cluster_std_m: float = 150.0,
) -> List[Point]:
    """Points drawn around random cluster centres (hot-spot traffic).

    Cluster centres are uniform in the area; each point picks a centre
    uniformly and adds Gaussian jitter, clipped to the area.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    centres = rng.uniform(0.0, side_m, size=(num_clusters, 2))
    assignments = rng.integers(0, num_clusters, size=count)
    jitter = rng.normal(0.0, cluster_std_m, size=(count, 2))
    coords = np.clip(centres[assignments] + jitter, 0.0, side_m)
    return [Point(float(x), float(y)) for x, y in coords]

"""Node objects: identity, kind, position, and static parameters.

Node ids are dense integers: base stations occupy ``0 .. B-1`` and
mobile users ``B .. N-1``, matching ``ScenarioParameters.node_kind``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.config.parameters import (
    EnergyParameters,
    NodeParameters,
    ScenarioParameters,
)
from repro.network.geometry import uniform_random_placement
from repro.types import NodeId, NodeKind, Point


@dataclass(frozen=True)
class Node:
    """A network node (base station or mobile user).

    Attributes:
        node_id: dense integer id.
        kind: base station or mobile user.
        position: deployment-plane coordinates (m).
        radio: radio/platform parameters.
        energy: energy-subsystem parameters.
    """

    node_id: NodeId
    kind: NodeKind
    position: Point
    radio: NodeParameters
    energy: EnergyParameters

    @property
    def is_base_station(self) -> bool:
        """True if this node is a base station."""
        return self.kind is NodeKind.BASE_STATION

    @property
    def is_user(self) -> bool:
        """True if this node is a mobile user."""
        return self.kind is NodeKind.MOBILE_USER

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "BS" if self.is_base_station else "UE"
        return f"Node({self.node_id}, {tag}, ({self.position.x:.0f}, {self.position.y:.0f}))"


def build_nodes(
    params: ScenarioParameters, rng: np.random.Generator
) -> List[Node]:
    """Instantiate all nodes of a scenario.

    Base stations take the configured fixed positions; users are placed
    uniformly at random in the square area using ``rng``.

    Args:
        params: validated scenario parameters.
        rng: generator used for user placement.

    Returns:
        Nodes ordered by id (base stations first).
    """
    nodes: List[Node] = []
    for bs_id, position in enumerate(params.base_station_positions):
        nodes.append(
            Node(
                node_id=bs_id,
                kind=NodeKind.BASE_STATION,
                position=position,
                radio=params.bs_node,
                energy=params.bs_energy,
            )
        )
    user_positions: Sequence[Point]
    if params.user_positions is not None:
        user_positions = list(params.user_positions)
    else:
        user_positions = uniform_random_placement(
            params.num_users, params.area_side_m, rng
        )
    for offset, position in enumerate(user_positions):
        nodes.append(
            Node(
                node_id=params.num_base_stations + offset,
                kind=NodeKind.MOBILE_USER,
                position=position,
                radio=params.user_node,
                energy=params.user_energy,
            )
        )
    return nodes

"""Downlink service sessions.

Each session ``s`` is a tuple ``{d_s, v_s(t), s_s(t)}``: a fixed
destination user, a per-slot throughput requirement in packets, and a
per-slot source base station chosen by the S2 resource-allocation
subproblem (the source may move between base stations each slot).

The paper's demand is constant-rate; :class:`~repro.types.TrafficPattern`
adds mean-preserving on/off and diurnal profiles for the example
scenarios, and :class:`~repro.types.DestinationStrategy` optionally
places destinations at the cell edge (the regime where multi-hop
relaying matters most).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config.parameters import ScenarioParameters
from repro.exceptions import ConfigurationError
from repro.network.node import Node
from repro.types import DestinationStrategy, NodeId, SessionId, TrafficPattern


@dataclass(frozen=True)
class Session:
    """A downlink Internet service session.

    Attributes:
        session_id: dense integer id.
        destination: destination user node id ``d_s``.
        demand_packets: mean throughput ``v_s(t)`` in packets/slot.
        k_max: admission cap ``K_max`` in packets/slot.
        pattern: the demand profile shape.
        period_slots: period of the non-constant profiles.
    """

    session_id: SessionId
    destination: NodeId
    demand_packets: int
    k_max: int
    pattern: TrafficPattern = TrafficPattern.CONSTANT
    period_slots: int = 20

    def demand(self, slot: int) -> int:
        """``v_s(t)``: per-slot demand under the configured profile.

        All profiles have mean ``demand_packets`` over one period:
        on/off doubles the rate for the first half-period and is silent
        for the second; diurnal follows ``1 + sin`` scaled to the mean.
        """
        if self.pattern is TrafficPattern.CONSTANT:
            return self.demand_packets
        phase = slot % self.period_slots
        if self.pattern is TrafficPattern.ON_OFF:
            if phase < self.period_slots / 2:
                return 2 * self.demand_packets
            return 0
        # DIURNAL: rate in [0, 2*mean], sinusoidal over the period.
        factor = 1.0 + math.sin(2.0 * math.pi * phase / self.period_slots)
        return int(round(self.demand_packets * factor))

    def max_demand(self) -> int:
        """The largest ``v_s(t)`` the profile can emit (for bounds)."""
        if self.pattern is TrafficPattern.CONSTANT:
            return self.demand_packets
        return 2 * self.demand_packets


def _cell_edge_destinations(
    params: ScenarioParameters, nodes: Sequence[Node], count: int
) -> List[NodeId]:
    """The ``count`` users farthest from every base station."""
    bs_positions = [nodes[b].position for b in params.base_station_ids()]
    users = sorted(
        params.user_ids(),
        key=lambda u: -min(
            nodes[u].position.distance_to(p) for p in bs_positions
        ),
    )
    return list(users[:count])


def build_sessions(
    params: ScenarioParameters,
    rng: np.random.Generator,
    nodes: Optional[Sequence[Node]] = None,
) -> List[Session]:
    """Create the scenario's sessions with distinct user destinations.

    ``RANDOM`` draws destinations without replacement from the users
    (the paper's setup); ``CELL_EDGE`` picks the users farthest from
    every base station and requires ``nodes``.

    Raises:
        ConfigurationError: more sessions than users, or a cell-edge
            strategy without node positions.
    """
    num_sessions = params.sessions.num_sessions
    users = list(params.user_ids())
    if num_sessions > len(users):
        raise ConfigurationError(
            f"cannot pick {num_sessions} distinct destinations from "
            f"{len(users)} users"
        )

    strategy = params.sessions.destination_strategy
    if strategy is DestinationStrategy.CELL_EDGE:
        if nodes is None:
            raise ConfigurationError(
                "cell-edge destinations need node positions; pass nodes="
            )
        destinations = _cell_edge_destinations(params, nodes, num_sessions)
    else:
        destinations = [
            int(d) for d in rng.choice(users, size=num_sessions, replace=False)
        ]

    demand = params.sessions.demand_packets_per_slot(params.slot_seconds)
    k_max = params.sessions.k_max(params.slot_seconds)
    return [
        Session(
            session_id=s,
            destination=destinations[s],
            demand_packets=demand,
            k_max=k_max,
            pattern=params.sessions.traffic_pattern,
            period_slots=params.sessions.pattern_period_slots,
        )
        for s in range(num_sessions)
    ]

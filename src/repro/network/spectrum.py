"""Spectrum bands: static access sets and stochastic bandwidths.

The paper models each band's bandwidth ``W_m(t)`` as a random process
observed at the start of every slot.  Band 0 is the fixed-bandwidth
cellular band that every node can access; the remaining bands have
i.i.d. uniform bandwidths, and each mobile user is granted access to a
random (static) subset of them, while base stations access all bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.config.parameters import ScenarioParameters
from repro.exceptions import SpectrumError
from repro.types import BandId, NodeId


@dataclass(frozen=True)
class SpectrumBand:
    """Static description of one spectrum band.

    Attributes:
        band_id: dense integer id; 0 is the cellular band.
        fixed_bandwidth_hz: bandwidth if deterministic, else None.
        bandwidth_range_hz: (low, high) of the uniform draw if random.
    """

    band_id: BandId
    fixed_bandwidth_hz: float = 0.0
    bandwidth_range_hz: Tuple[float, float] = (0.0, 0.0)

    @property
    def is_random(self) -> bool:
        """True when the bandwidth is redrawn every slot."""
        return self.fixed_bandwidth_hz <= 0.0

    @property
    def max_bandwidth_hz(self) -> float:
        """Largest bandwidth this band can take in any slot."""
        if self.is_random:
            return self.bandwidth_range_hz[1]
        return self.fixed_bandwidth_hz


@dataclass(frozen=True)
class BandState:
    """Realised bandwidths ``W_m(t)`` for one slot."""

    slot: int
    bandwidths_hz: Tuple[float, ...]

    def bandwidth(self, band: BandId) -> float:
        """Bandwidth of ``band`` in this slot (Hz)."""
        if not 0 <= band < len(self.bandwidths_hz):
            raise SpectrumError(f"unknown band id {band}")
        return self.bandwidths_hz[band]


class MarkovBandAvailability:
    """Per-(user, band) Markov on/off availability (extension).

    The paper keeps each node's accessible set ``M_i`` static; its
    cognitive-radio references model primary-user activity that
    blocks a band at a location for stretches of time.  Each (user,
    random band) pair carries a two-state Markov chain: with
    probability ``persistence`` the state survives a slot, otherwise
    it resamples to "on" with probability ``on_prob``.  Base stations
    and the cellular band are never blocked.
    """

    def __init__(
        self,
        users: Iterable[NodeId],
        random_bands: Iterable[BandId],
        rng: np.random.Generator,
        on_prob: float = 0.7,
        persistence: float = 0.9,
    ) -> None:
        if not 0.0 <= on_prob <= 1.0:
            raise SpectrumError(f"on_prob must be in [0, 1], got {on_prob}")
        if not 0.0 <= persistence <= 1.0:
            raise SpectrumError(
                f"persistence must be in [0, 1], got {persistence}"
            )
        self._users = list(users)
        self._bands = list(random_bands)
        self._rng = rng
        self._on_prob = on_prob
        self._persistence = persistence
        self._state: Dict[Tuple[NodeId, BandId], bool] = {
            (user, band): bool(rng.random() < on_prob)
            for user in self._users
            for band in self._bands
        }
        self._last_slot = 0

    def advance_to(self, slot: int) -> None:
        """Step every chain forward to ``slot`` (monotone slots only)."""
        if slot < self._last_slot:
            raise SpectrumError(
                f"availability cannot rewind: slot {slot} after {self._last_slot}"
            )
        while self._last_slot < slot:
            self._last_slot += 1
            for key in self._state:
                if self._rng.random() >= self._persistence:
                    self._state[key] = bool(self._rng.random() < self._on_prob)

    def blocked(self, user: NodeId, band: BandId) -> bool:
        """True when the primary user currently occupies the band."""
        return not self._state.get((user, band), True)

    def mask(self, access: Dict[NodeId, FrozenSet[BandId]]) -> Dict[NodeId, FrozenSet[BandId]]:
        """Apply the current blocks to static access sets."""
        out: Dict[NodeId, FrozenSet[BandId]] = {}
        for node, bands in access.items():
            if node in set(self._users):
                out[node] = frozenset(
                    b for b in bands if not self.blocked(node, b)
                )
            else:
                out[node] = bands
        return out


class SpectrumModel:
    """Band population, per-node access sets, and the bandwidth process.

    Access sets are drawn once at construction (geography is static in
    the paper's model); bandwidths are redrawn from ``rng`` each slot.
    """

    def __init__(
        self,
        bands: List[SpectrumBand],
        access: Dict[NodeId, FrozenSet[BandId]],
        rng: np.random.Generator,
    ) -> None:
        if not bands:
            raise SpectrumError("at least one band is required")
        self._bands = tuple(bands)
        self._access = dict(access)
        self._rng = rng

    @property
    def bands(self) -> Tuple[SpectrumBand, ...]:
        """All bands ordered by id."""
        return self._bands

    @property
    def num_bands(self) -> int:
        """Number of bands ``M``."""
        return len(self._bands)

    def accessible_bands(self, node: NodeId) -> FrozenSet[BandId]:
        """``M_i``: bands node ``node`` may use."""
        try:
            return self._access[node]
        except KeyError:
            raise SpectrumError(f"node {node} has no spectrum access set") from None

    def access_sets(self) -> Dict[NodeId, FrozenSet[BandId]]:
        """A copy of every node's static access set."""
        return dict(self._access)

    def common_bands(self, tx: NodeId, rx: NodeId) -> FrozenSet[BandId]:
        """``M_i ∩ M_j``: bands usable on link ``(tx, rx)``."""
        return self.accessible_bands(tx) & self.accessible_bands(rx)

    def max_bandwidth_hz(self) -> float:
        """The largest bandwidth any band can realise (for ``beta``)."""
        return max(band.max_bandwidth_hz for band in self._bands)

    def reseed(self, rng: np.random.Generator) -> None:
        """Swap the generator driving the per-slot bandwidth draws.

        The model is built with the topology stream (which also draws
        the static access sets); the simulator re-seeds it with a
        dedicated environment child stream so band realisations stay
        aligned across configuration variants.
        """
        self._rng = rng

    def sample(self, slot: int) -> BandState:
        """Draw ``W_m(t)`` for one slot."""
        bandwidths = []
        for band in self._bands:
            if band.is_random:
                low, high = band.bandwidth_range_hz
                bandwidths.append(float(self._rng.uniform(low, high)))
            else:
                bandwidths.append(band.fixed_bandwidth_hz)
        return BandState(slot=slot, bandwidths_hz=tuple(bandwidths))


def build_spectrum_model(
    params: ScenarioParameters, rng: np.random.Generator
) -> SpectrumModel:
    """Construct the paper's spectrum population.

    Band 0 is the always-available cellular band; bands 1..M-1 are the
    random bands.  Base stations access every band; each user draws an
    independent Bernoulli(``user_band_access_prob``) access indicator
    per random band.
    """
    spectrum = params.spectrum
    bands: List[SpectrumBand] = [
        SpectrumBand(band_id=0, fixed_bandwidth_hz=spectrum.cellular_bandwidth_hz)
    ]
    for k in range(spectrum.num_random_bands):
        bands.append(
            SpectrumBand(
                band_id=1 + k,
                bandwidth_range_hz=spectrum.random_bandwidth_range_hz,
            )
        )

    all_bands = frozenset(band.band_id for band in bands)
    access: Dict[NodeId, FrozenSet[BandId]] = {}
    for bs in params.base_station_ids():
        access[bs] = all_bands
    for user in params.user_ids():
        granted = {0}
        for band in bands[1:]:
            if rng.random() < spectrum.user_band_access_prob:
                granted.add(band.band_id)
        access[user] = frozenset(granted)

    return SpectrumModel(bands=bands, access=access, rng=rng)

"""Topology: propagation gains, candidate links, and the spatial index.

The per-slot optimization works over a pruned set of *candidate*
directed links rather than all ``N(N-1)`` pairs: a link is a candidate
when its SINR at maximum transmit power and zero interference clears the
decoding threshold, and (optionally) when the receiver is among the
transmitter's ``neighbor_limit`` nearest feasible neighbours.  Pruning
never removes a link the physical model could actually use, because a
link that fails the zero-interference check can never be scheduled.

Two builders produce the same candidate set:

* the **dense** builder materialises the ``(N, N)`` distance/gain
  matrices and scans all pairs — the bit-exact reference (the same
  pattern as ``queueing/reference.py``);
* the **grid** builder buckets nodes into a
  :class:`~repro.network.geometry.UniformGridIndex` whose cell edge is
  the propagation-feasible radius, so each transmitter only examines
  the 3x3 block of buckets around it — O(N * density * r^2) instead of
  O(N^2).  The radius is conservative (derived from inverting the
  path-loss law, then inflated by a relative slack) and every surviving
  pair re-runs the *exact* dense feasibility comparison on gains
  computed with the identical elementwise float64 chain, so the link
  set, link order, and per-link gains are bit-identical to the dense
  reference.

``ScenarioParameters.topology_mode`` selects the builder: ``"dense"``,
``"sparse"`` (grid builder, no O(N^2) matrices), or ``"auto"`` (the
default: grid builder everywhere, with the dense matrices additionally
materialised below :data:`DENSE_MATERIALIZE_MAX` nodes for small-N
consumers such as the SINR contract checker and mobility tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.config.parameters import ScenarioParameters
from repro.exceptions import TopologyError
from repro.network.geometry import UniformGridIndex
from repro.network.node import Node
from repro.phy.propagation import (
    MIN_DISTANCE_M,
    ComputedPairGains,
    DensePairGains,
    gain_matrix,
)
from repro.types import Link, NodeId, NodeKind

if TYPE_CHECKING:
    from scipy.sparse import csr_matrix

#: The "auto" topology mode materialises the dense distance/gain
#: matrices only below this node count; above it they would dominate
#: memory (8 GB at N=32k) while every hot path reads per-link gains.
DENSE_MATERIALIZE_MAX: int = 2048

#: Relative inflation of the inverted propagation radius.  The exact
#: feasibility comparison decides candidacy either way; the slack only
#: guarantees the bucket prefilter never *excludes* a pair that the
#: comparison would accept (the ``pow`` round-off is ~1e-16 relative,
#: seven orders below this margin).
_RADIUS_SLACK: float = 1e-9

PairGains = Union[DensePairGains, ComputedPairGains]


@dataclass(frozen=True)
class Topology:
    """Immutable topology snapshot for one scenario.

    Attributes:
        nodes: all nodes ordered by id.
        distances: ``(N, N)`` Euclidean distance matrix (m), or None
            when the topology skips the dense matrices (sparse mode, or
            auto mode above the materialisation cutoff).
        gains: ``(N, N)`` power propagation gains ``g_ij``, or None
            (same condition as ``distances``).
        candidate_links: pruned directed links usable by the scheduler.
        out_neighbors: candidate receivers per transmitter.
        in_neighbors: candidate transmitters per receiver.
        positions: ``(N, 2)`` node coordinates (m).
        link_tx / link_rx: ``(L,)`` endpoint indices over the frozen
            link index (``candidate_links`` positions).
        link_gains: ``(L,)`` propagation gain per candidate link —
            bitwise equal to ``gains[link_tx, link_rx]`` when the dense
            matrix exists.
        pair_gains: uniform pair-gain view (dense-matrix-backed or
            position-computed) for arbitrary ``g(tx, rx)`` queries.
        grid: the uniform-grid spatial index the sparse builder used
            (None for the dense reference builder).
        mode: the builder that produced this topology.
    """

    nodes: Tuple[Node, ...]
    distances: Optional[np.ndarray]
    gains: Optional[np.ndarray]
    candidate_links: Tuple[Link, ...]
    out_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = field(repr=False)
    in_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = field(repr=False)
    positions: Optional[np.ndarray] = field(default=None, repr=False)
    link_tx: Optional[np.ndarray] = field(default=None, repr=False)
    link_rx: Optional[np.ndarray] = field(default=None, repr=False)
    link_gains: Optional[np.ndarray] = field(default=None, repr=False)
    pair_gains: Optional[PairGains] = field(default=None, repr=False)
    grid: Optional[UniformGridIndex] = field(default=None, repr=False)
    mode: str = "dense"

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self.nodes)

    def node(self, node_id: NodeId) -> Node:
        """Node by id, with range checking."""
        if not 0 <= node_id < len(self.nodes):
            raise TopologyError(f"unknown node id {node_id}")
        return self.nodes[node_id]

    def gain(self, tx: NodeId, rx: NodeId) -> float:
        """Propagation gain ``g_ij`` between two nodes."""
        if self.gains is not None:
            return float(self.gains[tx, rx])
        return self.gains_lookup()[tx, rx]

    def gains_lookup(self) -> PairGains:
        """Scalar-indexable gains: the matrix view or the computed view.

        Consumers that only read ``g[tx, rx]`` pairs (power control,
        SINR checks, the relaxed bound) use this so they work
        identically whether the dense matrix was materialised or not.
        """
        view = self.__dict__.get("_pair_view")
        if view is None:
            view = (
                self.pair_gains
                if self.pair_gains is not None
                else DensePairGains(self.gains)
            )
            object.__setattr__(self, "_pair_view", view)
        return view

    def link_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(link_tx, link_rx)`` over the frozen link index (lazy)."""
        if self.link_tx is not None and self.link_rx is not None:
            return self.link_tx, self.link_rx
        cached = self.__dict__.get("_link_arrays")
        if cached is None:
            count = len(self.candidate_links)
            tx = np.fromiter(
                (link[0] for link in self.candidate_links),  # noqa: R040 - one-time fallback for hand-built Topology objects; both builders precompute link_tx/link_rx, so this never runs in the slot loop
                dtype=np.intp,
                count=count,
            )
            rx = np.fromiter(
                (link[1] for link in self.candidate_links),  # noqa: R040 - one-time fallback for hand-built Topology objects; see link_tx above
                dtype=np.intp,
                count=count,
            )
            cached = (tx, rx)
            object.__setattr__(self, "_link_arrays", cached)
        return cached

    def link_gain_array(self) -> np.ndarray:
        """``(L,)`` per-link gains over the frozen link index (lazy)."""
        if self.link_gains is not None:
            return self.link_gains
        cached = self.__dict__.get("_link_gain_arr")
        if cached is None:
            tx, rx = self.link_arrays()
            cached = self.gains_lookup().pairs(tx, rx)
            object.__setattr__(self, "_link_gain_arr", cached)
        return cached

    def link_index_matrix(self) -> "csr_matrix":
        """Candidate links as a scipy.sparse CSR mask over ``(N, N)``.

        Entry ``[tx, rx]`` stores the link's frozen-index position
        *plus one* (CSR cannot represent an explicit zero), so
        ``matrix[tx, rx] - 1`` is a vectorizable link -> position
        lookup and ``matrix.astype(bool)`` is the candidate mask.
        Built lazily and cached.
        """
        cached = self.__dict__.get("_link_csr")
        if cached is None:
            from scipy import sparse

            tx, rx = self.link_arrays()
            data = np.arange(1, tx.shape[0] + 1, dtype=np.int64)
            cached = sparse.csr_matrix(
                (data, (tx, rx)), shape=(self.num_nodes, self.num_nodes)
            )
            object.__setattr__(self, "_link_csr", cached)
        return cached

    def link_positions_of(
        self, tx: np.ndarray, rx: np.ndarray
    ) -> np.ndarray:
        """Frozen-index positions of the pairs ``(tx[i], rx[i])``.

        Non-candidate pairs map to -1.  One sparse fancy-index instead
        of a per-pair dict lookup loop.
        """
        matrix = self.link_index_matrix()
        found = np.asarray(matrix[np.asarray(tx), np.asarray(rx)]).ravel()
        return found.astype(np.intp) - 1

    def has_link(self, tx: NodeId, rx: NodeId) -> bool:
        """True if ``(tx, rx)`` is a candidate link."""
        return rx in self.out_neighbors.get(tx, ())

    def as_graph(self) -> nx.DiGraph:
        """The candidate-link set as a networkx digraph."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.candidate_links)
        return graph

    def is_connected_to_some_bs(self, node_id: NodeId, bs_ids: Sequence[NodeId]) -> bool:
        """True if ``node_id`` is reachable from any base station."""
        graph = self.as_graph()
        return any(nx.has_path(graph, bs, node_id) for bs in bs_ids)


def max_feasible_range_m(
    params: ScenarioParameters, max_power_w: float
) -> float:
    """Largest distance at which a link can pass candidate pruning.

    Inverts the clamped path-loss law against the zero-interference
    feasibility test on the most permissive band (the fixed cellular
    band): ``C * d^-gamma * P_max >= Gamma * eta * W`` gives
    ``d* = (C * P_max / (Gamma * eta * W))^(1/gamma)``.  Returns 0 when
    even the clamped near-field gain cannot clear the threshold (no
    pair is ever feasible), and inflates the radius by a relative slack
    so the bucket prefilter stays conservative against ``pow``
    round-off — candidacy itself is always decided by the exact
    comparison on the computed gain.
    """
    noise = params.noise_density_w_per_hz * params.spectrum.cellular_bandwidth_hz
    threshold = params.sinr_threshold * noise
    peak_gain = params.propagation_constant * MIN_DISTANCE_M**-params.path_loss_exponent
    if peak_gain * max_power_w < threshold:
        return 0.0
    radius = (
        params.propagation_constant * max_power_w / threshold
    ) ** (1.0 / params.path_loss_exponent)
    return max(radius * (1.0 + _RADIUS_SLACK), MIN_DISTANCE_M)


def _max_range_feasible(
    params: ScenarioParameters, gains: np.ndarray, tx: NodeId, rx: NodeId
) -> bool:
    """Zero-interference feasibility of link (tx, rx) at max power.

    Uses the smallest possible bandwidth (the cellular band) for the
    noise term, which is the most permissive case: if the link fails
    here it fails on every band in every slot.
    """
    p_max = params.node_params(tx).max_tx_power_w
    noise = params.noise_density_w_per_hz * params.spectrum.cellular_bandwidth_hz
    return gains[tx, rx] * p_max >= params.sinr_threshold * noise


def _raise_isolated(isolated: List[int]) -> None:
    raise TopologyError(
        f"nodes {isolated} have no feasible links; increase transmit "
        "power, shrink the area, or raise neighbor_limit"
    )


def _positions_array(nodes: Sequence[Node]) -> np.ndarray:
    return np.array([[n.position.x, n.position.y] for n in nodes])


def _build_topology_dense(
    params: ScenarioParameters, nodes: Sequence[Node]
) -> Topology:
    """The all-pairs reference builder (bit-exact baseline).

    O(N^2) in time and memory; kept verbatim as the dense reference the
    equivalence suite and the scale benchmark compare the grid builder
    against (the same pattern as ``queueing/reference.py``).
    """
    num_nodes = len(nodes)
    positions = _positions_array(nodes)
    diffs = positions[:, None, :] - positions[None, :, :]  # noqa: R041 - the dense reference builder is all-pairs by definition; production scenarios use the grid builder (topology_mode auto/sparse)
    distances = np.sqrt((diffs**2).sum(axis=2))

    gains = gain_matrix(
        distances, params.propagation_constant, params.path_loss_exponent
    )

    links: List[Link] = []
    out_neighbors: Dict[NodeId, List[NodeId]] = {n: [] for n in range(num_nodes)}
    in_neighbors: Dict[NodeId, List[NodeId]] = {n: [] for n in range(num_nodes)}

    for tx in range(num_nodes):
        feasible = [
            rx
            for rx in range(num_nodes)
            if rx != tx and _max_range_feasible(params, gains, tx, rx)
        ]
        feasible.sort(key=lambda rx: distances[tx, rx])
        # Base stations keep links to every feasible receiver so the
        # one-hop architectures can always serve their users directly;
        # the neighbour cap only prunes user-originated links.
        is_user = params.node_kind(tx) is NodeKind.MOBILE_USER
        if params.neighbor_limit is not None and is_user:
            feasible = feasible[: params.neighbor_limit]
        for rx in feasible:
            links.append((tx, rx))
            out_neighbors[tx].append(rx)
            in_neighbors[rx].append(tx)

    isolated = [
        n
        for n in range(num_nodes)
        if not out_neighbors[n] and not in_neighbors[n]
    ]
    if isolated:
        _raise_isolated(isolated)

    count = len(links)
    link_tx = np.fromiter((tx for tx, _ in links), dtype=np.intp, count=count)
    link_rx = np.fromiter((rx for _, rx in links), dtype=np.intp, count=count)
    return Topology(
        nodes=tuple(nodes),
        distances=distances,
        gains=gains,
        candidate_links=tuple(links),
        out_neighbors={n: tuple(v) for n, v in out_neighbors.items()},
        in_neighbors={n: tuple(v) for n, v in in_neighbors.items()},
        positions=positions,
        link_tx=link_tx,
        link_rx=link_rx,
        link_gains=gains[link_tx, link_rx],
        pair_gains=DensePairGains(gains),
        grid=None,
        mode="dense",
    )


def _build_topology_grid(
    params: ScenarioParameters, nodes: Sequence[Node], materialize_dense: bool
) -> Topology:
    """Sub-quadratic grid builder; bit-identical output to the dense one.

    Per occupied bucket, candidate receivers come from the 3x3 bucket
    block (the cell edge is the *largest* feasible radius over node
    kinds, so the block always covers every feasible receiver), and the
    exact dense feasibility comparison runs on gains computed with the
    identical elementwise chain.  Within each transmitter, candidates
    are enumerated in ascending receiver order and stably argsorted by
    distance — replicating the dense builder's ``list.sort`` order —
    then capped by ``neighbor_limit`` for users.
    """
    num_nodes = len(nodes)
    positions = _positions_array(nodes)
    noise = params.noise_density_w_per_hz * params.spectrum.cellular_bandwidth_hz
    threshold = params.sinr_threshold * noise
    p_max = np.fromiter(
        (params.node_params(n).max_tx_power_w for n in range(num_nodes)),
        dtype=float,
        count=num_nodes,
    )
    is_user = np.fromiter(
        (params.node_kind(n) is NodeKind.MOBILE_USER for n in range(num_nodes)),
        dtype=bool,
        count=num_nodes,
    )
    radius = max(
        max_feasible_range_m(params, params.user_node.max_tx_power_w),
        max_feasible_range_m(params, params.bs_node.max_tx_power_w),
    )
    grid = UniformGridIndex(positions, cell_size_m=max(radius, MIN_DISTANCE_M))

    limit = params.neighbor_limit
    rx_by_tx: List[Optional[np.ndarray]] = [None] * num_nodes
    gain_by_tx: List[Optional[np.ndarray]] = [None] * num_nodes
    empty_idx = np.zeros(0, dtype=np.intp)
    empty_val = np.zeros(0)
    for row, col, members in grid.nonempty_cells():
        candidates = grid.block_members(row, col, reach=1)
        # Same elementwise float64 chain as the dense builder's
        # all-pairs block: subtract, square, sum the two axes, sqrt,
        # then the clamped path-loss law — every value is bitwise equal
        # to the corresponding dense matrix entry.
        diffs = positions[members][:, None, :] - positions[candidates][None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=2))
        gains_block = gain_matrix(
            dist, params.propagation_constant, params.path_loss_exponent
        )
        feasible = (gains_block * p_max[members][:, None] >= threshold) & (
            candidates[None, :] != members[:, None]
        )
        for i, tx in enumerate(members.tolist()):
            mask = feasible[i]
            rx_sel = candidates[mask]
            if rx_sel.size == 0:
                rx_by_tx[tx] = empty_idx
                gain_by_tx[tx] = empty_val
                continue
            # Candidates are ascending in rx; the stable argsort by
            # distance reproduces the dense builder's stable
            # ``list.sort(key=distance)`` permutation exactly.
            order = np.argsort(dist[i][mask], kind="stable")
            rx_sel = rx_sel[order]
            gain_sel = gains_block[i][mask][order]
            if limit is not None and is_user[tx]:
                rx_sel = rx_sel[:limit]
                gain_sel = gain_sel[:limit]
            rx_by_tx[tx] = rx_sel
            gain_by_tx[tx] = gain_sel

    out_counts = np.fromiter(
        (0 if r is None else r.shape[0] for r in rx_by_tx),
        dtype=np.intp,
        count=num_nodes,
    )
    link_tx = np.repeat(np.arange(num_nodes, dtype=np.intp), out_counts)
    link_rx = (
        np.concatenate([r for r in rx_by_tx if r is not None and r.size])
        if link_tx.size
        else empty_idx
    )
    link_gains = (
        np.concatenate([g for g in gain_by_tx if g is not None and g.size])
        if link_tx.size
        else empty_val
    )

    in_counts = np.bincount(link_rx, minlength=num_nodes)
    isolated_mask = (out_counts == 0) & (in_counts == 0)
    if isolated_mask.any():
        _raise_isolated(np.flatnonzero(isolated_mask).tolist())

    # Candidate-link tuples in transmitter-major order (the frozen link
    # index); in-neighbor lists grouped by receiver with the stable
    # sort preserving the same ascending-transmitter order the dense
    # builder's append loop produces.
    tx_list = link_tx.tolist()
    rx_list = link_rx.tolist()
    links = list(zip(tx_list, rx_list))
    out_neighbors = {
        n: (
            tuple(rx_by_tx[n].tolist())
            if rx_by_tx[n] is not None
            else ()
        )
        for n in range(num_nodes)
    }
    by_rx = np.argsort(link_rx, kind="stable")
    in_tx_sorted = link_tx[by_rx].tolist()
    in_starts = np.zeros(num_nodes + 1, dtype=np.intp)
    np.cumsum(in_counts, out=in_starts[1:])
    in_neighbors = {
        n: tuple(in_tx_sorted[in_starts[n] : in_starts[n + 1]])
        for n in range(num_nodes)
    }

    distances = None
    gains = None
    pair_view: PairGains = ComputedPairGains(
        positions, params.propagation_constant, params.path_loss_exponent
    )
    if materialize_dense:
        diffs = positions[:, None, :] - positions[None, :, :]  # noqa: R041 - small-N back-compat materialisation, gated by DENSE_MATERIALIZE_MAX
        distances = np.sqrt((diffs**2).sum(axis=2))
        gains = gain_matrix(
            distances, params.propagation_constant, params.path_loss_exponent
        )
        pair_view = DensePairGains(gains)

    return Topology(
        nodes=tuple(nodes),
        distances=distances,
        gains=gains,
        candidate_links=tuple(links),
        out_neighbors=out_neighbors,
        in_neighbors=in_neighbors,
        positions=positions,
        link_tx=link_tx,
        link_rx=link_rx,
        link_gains=link_gains,
        pair_gains=pair_view,
        grid=grid,
        mode="sparse" if not materialize_dense else "auto",
    )


def build_topology(params: ScenarioParameters, nodes: Sequence[Node]) -> Topology:
    """Construct the topology for a scenario.

    Dispatches on ``params.topology_mode`` (module docstring); every
    mode produces the identical candidate-link set.

    Args:
        params: validated scenario parameters.
        nodes: nodes from :func:`repro.network.node.build_nodes`.

    Returns:
        The pruned :class:`Topology`.

    Raises:
        TopologyError: if any node ends up with no candidate links at
            all (an isolated node can never be served).
    """
    mode = params.topology_mode
    if mode == "dense":
        return _build_topology_dense(params, nodes)
    if mode == "sparse":
        return _build_topology_grid(params, nodes, materialize_dense=False)
    return _build_topology_grid(
        params, nodes, materialize_dense=len(nodes) <= DENSE_MATERIALIZE_MAX
    )

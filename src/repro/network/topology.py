"""Topology: distances, propagation gains, and candidate links.

The per-slot optimization works over a pruned set of *candidate*
directed links rather than all ``N(N-1)`` pairs: a link is a candidate
when its SINR at maximum transmit power and zero interference clears the
decoding threshold, and (optionally) when the receiver is among the
transmitter's ``neighbor_limit`` nearest feasible neighbours.  Pruning
never removes a link the physical model could actually use, because a
link that fails the zero-interference check can never be scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.config.parameters import ScenarioParameters
from repro.exceptions import TopologyError
from repro.network.node import Node
from repro.phy.propagation import gain_matrix
from repro.types import Link, NodeId, NodeKind


@dataclass(frozen=True)
class Topology:
    """Immutable topology snapshot for one scenario.

    Attributes:
        nodes: all nodes ordered by id.
        distances: ``(N, N)`` Euclidean distance matrix (m).
        gains: ``(N, N)`` power propagation gains ``g_ij``.
        candidate_links: pruned directed links usable by the scheduler.
        out_neighbors: candidate receivers per transmitter.
        in_neighbors: candidate transmitters per receiver.
    """

    nodes: Tuple[Node, ...]
    distances: np.ndarray
    gains: np.ndarray
    candidate_links: Tuple[Link, ...]
    out_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = field(repr=False)
    in_neighbors: Dict[NodeId, Tuple[NodeId, ...]] = field(repr=False)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self.nodes)

    def node(self, node_id: NodeId) -> Node:
        """Node by id, with range checking."""
        if not 0 <= node_id < len(self.nodes):
            raise TopologyError(f"unknown node id {node_id}")
        return self.nodes[node_id]

    def gain(self, tx: NodeId, rx: NodeId) -> float:
        """Propagation gain ``g_ij`` between two nodes."""
        return float(self.gains[tx, rx])

    def has_link(self, tx: NodeId, rx: NodeId) -> bool:
        """True if ``(tx, rx)`` is a candidate link."""
        return rx in self.out_neighbors.get(tx, ())

    def as_graph(self) -> nx.DiGraph:
        """The candidate-link set as a networkx digraph."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.candidate_links)
        return graph

    def is_connected_to_some_bs(self, node_id: NodeId, bs_ids: Sequence[NodeId]) -> bool:
        """True if ``node_id`` is reachable from any base station."""
        graph = self.as_graph()
        return any(nx.has_path(graph, bs, node_id) for bs in bs_ids)


def _max_range_feasible(
    params: ScenarioParameters, gains: np.ndarray, tx: NodeId, rx: NodeId
) -> bool:
    """Zero-interference feasibility of link (tx, rx) at max power.

    Uses the smallest possible bandwidth (the cellular band) for the
    noise term, which is the most permissive case: if the link fails
    here it fails on every band in every slot.
    """
    p_max = params.node_params(tx).max_tx_power_w
    noise = params.noise_density_w_per_hz * params.spectrum.cellular_bandwidth_hz
    return gains[tx, rx] * p_max >= params.sinr_threshold * noise


def build_topology(params: ScenarioParameters, nodes: Sequence[Node]) -> Topology:
    """Construct the topology for a scenario.

    Args:
        params: validated scenario parameters.
        nodes: nodes from :func:`repro.network.node.build_nodes`.

    Returns:
        The pruned :class:`Topology`.

    Raises:
        TopologyError: if any node ends up with no candidate links at
            all (an isolated node can never be served).
    """
    num_nodes = len(nodes)
    positions = np.array([[n.position.x, n.position.y] for n in nodes])
    diffs = positions[:, None, :] - positions[None, :, :]  # noqa: R041 - dense all-pairs construction pending sub-quadratic topology (ROADMAP item 2)
    distances = np.sqrt((diffs**2).sum(axis=2))

    gains = gain_matrix(
        distances, params.propagation_constant, params.path_loss_exponent
    )

    links: List[Link] = []
    out_neighbors: Dict[NodeId, List[NodeId]] = {n: [] for n in range(num_nodes)}
    in_neighbors: Dict[NodeId, List[NodeId]] = {n: [] for n in range(num_nodes)}

    for tx in range(num_nodes):
        feasible = [
            rx
            for rx in range(num_nodes)
            if rx != tx and _max_range_feasible(params, gains, tx, rx)
        ]
        feasible.sort(key=lambda rx: distances[tx, rx])
        # Base stations keep links to every feasible receiver so the
        # one-hop architectures can always serve their users directly;
        # the neighbour cap only prunes user-originated links.
        is_user = params.node_kind(tx) is NodeKind.MOBILE_USER
        if params.neighbor_limit is not None and is_user:
            feasible = feasible[: params.neighbor_limit]
        for rx in feasible:
            links.append((tx, rx))
            out_neighbors[tx].append(rx)
            in_neighbors[rx].append(tx)

    isolated = [
        n
        for n in range(num_nodes)
        if not out_neighbors[n] and not in_neighbors[n]
    ]
    if isolated:
        raise TopologyError(
            f"nodes {isolated} have no feasible links; increase transmit "
            "power, shrink the area, or raise neighbor_limit"
        )

    return Topology(
        nodes=tuple(nodes),
        distances=distances,
        gains=gains,
        candidate_links=tuple(links),
        out_neighbors={n: tuple(v) for n, v in out_neighbors.items()},
        in_neighbors={n: tuple(v) for n, v in in_neighbors.items()},
    )

"""User mobility models.

The paper's evaluation keeps users static; these models add motion as
an extension (the system model explicitly targets *mobile* users).
Mobility is quasi-static with respect to the candidate-link set: the
pruned links are fixed from the initial placement, but the propagation
gains are recomputed every slot from the current positions, so link
quality — and through power control, link feasibility — tracks the
motion.

``RandomWaypointMobility`` is the classical model: each user picks a
uniform waypoint in the area and a uniform speed, walks there in
straight-line per-slot steps, then repeats.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import approx_zero
from repro.types import NodeId, Point


class MobilityModel(abc.ABC):
    """Interface: per-slot positions of every node."""

    @abc.abstractmethod
    def positions_at(self, slot: int) -> List[Point]:
        """Positions of all nodes at the start of ``slot``.

        Must be callable with non-decreasing slots; calling twice with
        the same slot returns identical positions.
        """


class StaticMobility(MobilityModel):
    """No motion: the initial placement forever (the paper's setup)."""

    def __init__(self, positions: Sequence[Point]) -> None:
        self._positions = list(positions)

    def positions_at(self, slot: int) -> List[Point]:
        del slot
        return list(self._positions)


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint motion for users; base stations stay fixed.

    Args:
        initial: starting positions of all nodes.
        mobile: ids of the nodes that move (users).
        area_side_m: the square deployment area.
        speed_range_mps: uniform speed draw per leg (m/s).
        slot_seconds: slot duration (step length = speed * slot).
        rng: generator for waypoints and speeds.
    """

    def __init__(
        self,
        initial: Sequence[Point],
        mobile: Sequence[NodeId],
        area_side_m: float,
        speed_range_mps: Tuple[float, float],
        slot_seconds: float,
        rng: np.random.Generator,
    ) -> None:
        low, high = speed_range_mps
        if not 0 <= low <= high:
            raise ValueError(f"bad speed range {speed_range_mps!r}")
        if area_side_m <= 0:
            raise ValueError(f"area must be positive, got {area_side_m}")
        self._positions = list(initial)
        self._mobile = list(mobile)
        self._area = area_side_m
        self._speeds = speed_range_mps
        self._slot_seconds = slot_seconds
        self._rng = rng
        self._last_slot = -1
        #: Per-mobile-node (waypoint, speed) legs.
        self._legs: Dict[NodeId, Tuple[Point, float]] = {}
        for node in self._mobile:
            self._legs[node] = self._new_leg()

    def _new_leg(self) -> Tuple[Point, float]:
        waypoint = Point(
            float(self._rng.uniform(0.0, self._area)),
            float(self._rng.uniform(0.0, self._area)),
        )
        speed = float(self._rng.uniform(*self._speeds))
        return waypoint, speed

    def _step_node(self, node: NodeId) -> None:
        waypoint, speed = self._legs[node]
        position = self._positions[node]
        step = speed * self._slot_seconds
        distance = position.distance_to(waypoint)
        if distance <= step or approx_zero(distance):
            self._positions[node] = waypoint
            self._legs[node] = self._new_leg()
            return
        fraction = step / distance
        self._positions[node] = Point(
            position.x + fraction * (waypoint.x - position.x),
            position.y + fraction * (waypoint.y - position.y),
        )

    def positions_at(self, slot: int) -> List[Point]:
        if slot < self._last_slot:
            raise ValueError(
                f"mobility cannot rewind: asked for slot {slot} after "
                f"{self._last_slot}"
            )
        while self._last_slot < slot:
            self._last_slot += 1
            if self._last_slot == 0:
                continue  # slot 0 uses the initial placement
            for node in self._mobile:
                self._step_node(node)
        return list(self._positions)


#: Single-entry memo for :func:`gain_matrix_for_positions`, keyed on
#: ``(positions, constant, exponent)``.  One entry suffices: the static
#: model returns the same placement every slot, and random-waypoint
#: pauses (all mobile nodes parked at their waypoints) repeat the
#: previous slot's placement — both hit the memo exactly; any motion
#: changes the key and recomputes.
_GAIN_MEMO: Dict[
    Tuple[Tuple[Point, ...], float, float], np.ndarray
] = {}


def gain_matrix_for_positions(
    positions: Sequence[Point], constant: float, exponent: float
) -> np.ndarray:
    """The propagation-gain matrix for an arbitrary placement.

    Consecutive identical placements are served from a single-entry
    memo, so static scenarios pay the quadratic all-pairs cost once per
    run instead of once per slot.  Callers must not mutate the returned
    array.
    """
    from repro.phy.propagation import gain_matrix

    key = (tuple(positions), constant, exponent)
    cached = _GAIN_MEMO.get(key)
    if cached is not None:
        return cached
    coords = np.array([[p.x, p.y] for p in positions])
    diffs = coords[:, None, :] - coords[None, :, :]  # noqa: R041 - all-pairs gains computed once per distinct placement (memoized above); the mobility extension runs at small N and the scale path (static users) hits the memo after slot 0
    distances = np.sqrt((diffs**2).sum(axis=2))
    gains = gain_matrix(distances, constant, exponent)
    gains.setflags(write=False)
    _GAIN_MEMO.clear()  # noqa: R050 - pure single-entry cache: a worker's fork copy recomputes the bit-identical matrix, so divergence cannot perturb results
    _GAIN_MEMO[key] = gains  # noqa: R050 - same pure-cache argument as the clear above
    return gains

"""Network model: nodes, geometry, topology, spectrum, sessions."""

from repro.network.node import Node, build_nodes
from repro.network.geometry import (
    clustered_placement,
    grid_placement,
    uniform_random_placement,
)
from repro.network.topology import Topology, build_topology
from repro.network.spectrum import (
    BandState,
    SpectrumBand,
    SpectrumModel,
    build_spectrum_model,
)
from repro.network.session import Session, build_sessions

__all__ = [
    "Node",
    "build_nodes",
    "clustered_placement",
    "grid_placement",
    "uniform_random_placement",
    "Topology",
    "build_topology",
    "BandState",
    "SpectrumBand",
    "SpectrumModel",
    "build_spectrum_model",
    "Session",
    "build_sessions",
]

"""Shared lightweight types and identifiers.

Nodes, bands, and sessions are referred to by small integer ids
throughout the library.  Links are ``(tx, rx)`` node-id pairs, and a
scheduled transmission is a ``(tx, rx, band)`` triple.  These aliases and
tiny frozen dataclasses give the rest of the code a common vocabulary
without imposing heavyweight objects on the hot simulation loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

#: Integer identifier of a node (user or base station).
NodeId = int

#: Integer identifier of a spectrum band.
BandId = int

#: Integer identifier of a service session.
SessionId = int

#: Directed link between two nodes.
Link = Tuple[NodeId, NodeId]

#: Directed link with an assigned spectrum band.
LinkBand = Tuple[NodeId, NodeId, BandId]


class NodeKind(enum.Enum):
    """The two node roles in the paper's system model."""

    BASE_STATION = "base_station"
    MOBILE_USER = "mobile_user"


class QueueSemantics(enum.Enum):
    """How packet transfers are accounted in the data-queue law.

    ``PAPER`` follows Eq. (15) literally: the receiver is credited with
    the full scheduled rate even when the transmitter had fewer packets
    (the standard "null packet" idealisation used in Lyapunov analyses).
    ``PACKET_ACCURATE`` caps transfers by the transmitter's real backlog.
    """

    PAPER = "paper"
    PACKET_ACCURATE = "packet_accurate"


class SchedulerKind(enum.Enum):
    """Available S1 link-scheduling algorithms.

    ``SEQUENTIAL_FIX`` relaxes only the single-radio constraint (22),
    as the paper's S1 states; ``SEQUENTIAL_FIX_SINR`` additionally
    carries the big-M SINR constraints (24) with explicit power
    variables inside the relaxation (the formulation of the paper's
    references [31]/[35]), making the fix order interference-aware.
    """

    SEQUENTIAL_FIX = "sequential_fix"
    SEQUENTIAL_FIX_SINR = "sequential_fix_sinr"
    MAX_WEIGHT_MATCHING = "max_weight_matching"
    GREEDY = "greedy"


class EnergySolverKind(enum.Enum):
    """Available S4 energy-management solvers."""

    PRICE_DECOMPOSITION = "price_decomposition"
    SLSQP = "slsqp"
    GRID_ONLY = "grid_only"


class TrafficPattern(enum.Enum):
    """Per-session demand profiles ``v_s(t)``.

    ``CONSTANT`` is the paper's model; the others keep the same mean
    rate but modulate it over time (bursty on/off, smooth diurnal).
    """

    CONSTANT = "constant"
    ON_OFF = "on_off"
    DIURNAL = "diurnal"


class DestinationStrategy(enum.Enum):
    """How session destinations are drawn from the user population."""

    RANDOM = "random"
    CELL_EDGE = "cell_edge"


class MobilityKind(enum.Enum):
    """User mobility models (the paper evaluates static users)."""

    STATIC = "static"
    RANDOM_WAYPOINT = "random_waypoint"


class RenewableKind(enum.Enum):
    """Which renewable-generation process drives a node class."""

    UNIFORM = "uniform"
    SOLAR = "solar"
    WIND = "wind"
    ZERO = "zero"


class Architecture(enum.Enum):
    """The four network architectures compared in Fig. 2(f)."""

    MULTI_HOP_RENEWABLE = "multi_hop_renewable"
    MULTI_HOP_NO_RENEWABLE = "multi_hop_no_renewable"
    ONE_HOP_RENEWABLE = "one_hop_renewable"
    ONE_HOP_NO_RENEWABLE = "one_hop_no_renewable"


@dataclass(frozen=True)
class Point:
    """A point in the 2-D deployment plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        dx = self.x - other.x
        dy = self.y - other.y
        return (dx * dx + dy * dy) ** 0.5


@dataclass(frozen=True)
class Transmission:
    """One scheduled transmission: link, band and transmit power."""

    tx: NodeId
    rx: NodeId
    band: BandId
    power_w: float

    @property
    def link(self) -> Link:
        """The ``(tx, rx)`` pair of this transmission."""
        return (self.tx, self.rx)

    @property
    def link_band(self) -> LinkBand:
        """The ``(tx, rx, band)`` triple of this transmission."""
        return (self.tx, self.rx, self.band)

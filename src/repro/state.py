"""Mutable per-run network state: all queues, batteries, and processes.

``NetworkState`` owns every stateful object of one simulation run —
data queues, link virtual queues, batteries with their shifted energy
queues, grid connections and renewable processes — and provides the
read accessors the controller needs plus the apply/advance methods the
simulator calls at the end of each slot.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.control.decisions import SlotDecision, SlotObservation
from repro.core.lyapunov import LyapunovConstants
from repro.energy.battery import Battery, BatteryAction
from repro.energy.grid import GridConnection
from repro.energy.renewable import (
    DiurnalSolarProcess,
    MarkovWindProcess,
    RenewableProcess,
    UniformRenewableProcess,
    ZeroRenewableProcess,
)
from repro.model import NetworkModel
from repro.network.mobility import (
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    gain_matrix_for_positions,
)
from repro.queueing.backlog import BacklogSnapshot, make_snapshot
from repro.queueing.data_queue import DataQueueBank
from repro.queueing.energy_queue import ShiftedEnergyQueue
from repro.queueing.virtual_queue import VirtualQueueBank
from repro.types import Link, MobilityKind, NodeId, RenewableKind, SessionId


def _build_renewable(
    kind: RenewableKind,
    max_power_w: float,
    slot_seconds: float,
    rng: np.random.Generator,
) -> RenewableProcess:
    """Instantiate the configured renewable process for one node."""
    if kind is RenewableKind.ZERO or max_power_w <= 0:
        return ZeroRenewableProcess()
    if kind is RenewableKind.UNIFORM:
        return UniformRenewableProcess(max_power_w, slot_seconds, rng)
    if kind is RenewableKind.SOLAR:
        return DiurnalSolarProcess(max_power_w, slot_seconds, rng)
    if kind is RenewableKind.WIND:
        return MarkovWindProcess(max_power_w, slot_seconds, rng)
    raise ValueError(f"unknown renewable kind {kind!r}")


class NetworkState:
    """All mutable state of one simulation run."""

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
    ) -> None:
        self.model = model
        self.constants = constants
        params = model.params

        # One independent child generator per stochastic component
        # (bands, then per-node renewable and grid), in a fixed order.
        # Components that happen to draw nothing (e.g. the zero
        # renewable process of the no-renewable baselines) still own a
        # stream, so disabling one component never shifts the sample
        # path of any other — architecture comparisons stay paired.
        children = rng.spawn(1 + 2 * model.num_nodes)
        band_rng = children[0]
        renewable_rngs = children[1 : 1 + model.num_nodes]
        grid_rngs = children[1 + model.num_nodes :]
        model.spectrum.reseed(band_rng)

        # Dynamic spectrum availability (extension): spawned only when
        # enabled so static scenarios keep their sample paths.
        self.availability = None
        if params.spectrum.dynamic_availability:
            from repro.network.spectrum import MarkovBandAvailability

            self.availability = MarkovBandAvailability(
                users=model.user_ids,
                random_bands=range(1, model.spectrum.num_bands),
                rng=rng.spawn(1)[0],
                on_prob=params.spectrum.availability_on_prob,
                persistence=params.spectrum.availability_persistence,
            )

        # Mobility (extension): spawned only when enabled so static
        # scenarios keep their historical sample paths.
        initial_positions = [n.position for n in model.nodes]
        if params.mobility is MobilityKind.RANDOM_WAYPOINT:
            self.mobility: MobilityModel = RandomWaypointMobility(
                initial=initial_positions,
                mobile=list(model.user_ids),
                area_side_m=params.area_side_m,
                speed_range_mps=params.user_speed_range_mps,
                slot_seconds=params.slot_seconds,
                rng=rng.spawn(1)[0],
            )
        else:
            self.mobility = StaticMobility(initial_positions)
        self._gains_cache_slot = -1
        self._gains_cache = None

        self.data_queues = DataQueueBank(
            nodes=range(model.num_nodes),
            session_destinations=model.session_destinations(),
            semantics=params.queue_semantics,
        )
        self.virtual_queues = VirtualQueueBank(
            links=model.topology.candidate_links, beta=constants.beta
        )

        self.batteries: Dict[NodeId, Battery] = {}
        self.energy_queues: Dict[NodeId, ShiftedEnergyQueue] = {}
        self.grids: Dict[NodeId, GridConnection] = {}
        self.renewables: Dict[NodeId, RenewableProcess] = {}
        for node in model.nodes:
            energy = node.energy
            self.batteries[node.node_id] = Battery(
                capacity_j=energy.battery_capacity_j,
                charge_cap_j=energy.charge_cap_j,
                discharge_cap_j=energy.discharge_cap_j,
                charge_efficiency=energy.charge_efficiency,
                discharge_efficiency=energy.discharge_efficiency,
            )
            self.energy_queues[node.node_id] = ShiftedEnergyQueue(
                node=node.node_id,
                control_v=params.control_v,
                gamma_max=constants.gamma_max,
                discharge_cap_j=energy.discharge_cap_j,
            )
            self.grids[node.node_id] = GridConnection(
                draw_cap_j=energy.grid_cap_j,
                connect_prob=energy.grid_connect_prob,
                rng=grid_rngs[node.node_id],
            )
            if params.renewables_enabled:
                kind = (
                    params.bs_renewable_kind
                    if node.is_base_station
                    else params.user_renewable_kind
                )
            else:
                kind = RenewableKind.ZERO
            self.renewables[node.node_id] = _build_renewable(
                kind,
                energy.renewable_max_w,
                params.slot_seconds,
                renewable_rngs[node.node_id],
            )

    # ------------------------------------------------------------------
    # Observation sampling
    # ------------------------------------------------------------------

    def _current_gains(self, slot: int):
        """Per-slot gain matrix under mobility; None when static."""
        if isinstance(self.mobility, StaticMobility):
            return None
        if slot != self._gains_cache_slot:
            params = self.model.params
            positions = self.mobility.positions_at(slot)
            self._gains_cache = gain_matrix_for_positions(
                positions, params.propagation_constant, params.path_loss_exponent
            )
            self._gains_cache_slot = slot
        return self._gains_cache

    def observe(self, slot: int) -> SlotObservation:
        """Sample the slot's random state (bands, renewables, grid).

        Sampling is idempotent per slot only for mobility (positions
        are cached); band/renewable/grid draws advance their streams,
        so the engine observes each slot exactly once.
        """
        band_access = None
        if self.availability is not None:
            self.availability.advance_to(slot)
            band_access = self.availability.mask(
                self.model.spectrum.access_sets()
            )
        return SlotObservation(
            slot=slot,
            bands=self.model.spectrum.sample(slot),
            renewable_j={
                node: process.sample(slot)
                for node, process in self.renewables.items()
            },
            grid_connected={
                node: grid.sample_connected(slot)
                for node, grid in self.grids.items()
            },
            gains=self._current_gains(slot),
            band_access=band_access,
        )

    # ------------------------------------------------------------------
    # Read accessors for the controller
    # ------------------------------------------------------------------

    def backlog(self, node: NodeId, session: SessionId) -> float:
        """``Q_i^s(t)``."""
        return self.data_queues.backlog(node, session)

    def h_backlogs(self) -> Dict[Link, float]:
        """``H_ij(t)`` for every candidate link."""
        return {
            link: self.virtual_queues.h(link)
            for link in self.model.topology.candidate_links
        }

    def z_values(self) -> Dict[NodeId, float]:
        """``z_i(t)`` for every node."""
        return {node: queue.z for node, queue in self.energy_queues.items()}

    def battery_levels(self) -> Dict[NodeId, float]:
        """``x_i(t)`` for every node."""
        return {node: battery.level_j for node, battery in self.batteries.items()}

    # ------------------------------------------------------------------
    # Slot advance
    # ------------------------------------------------------------------

    def apply(
        self,
        decision: SlotDecision,
        slot: int,
        enforce_complementarity: bool = True,
    ) -> BacklogSnapshot:
        """Apply one slot's decision to every queue and battery.

        Args:
            decision: the controller's output for this slot.
            slot: slot index (stamped on the snapshot).
            enforce_complementarity: when False — used by the relaxed
                LP bound, which drops constraint (9) — simultaneous
                charge and discharge are netted before hitting the
                battery, leaving the level trajectory identical.

        Returns:
            The post-update backlog snapshot for the metrics collector.
        """
        # Data queues (Eq. 15).
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], float] = (
            decision.routing.rates
        )
        self.data_queues.step(rates, decision.admission.as_queue_arrivals())

        # Virtual queues (Eqs. 28/30): arrivals are routed packets,
        # service is the realised scheduled capacity.
        self.virtual_queues.step(
            arrivals_pkts=decision.routing.link_totals(),
            service_pkts=decision.schedule.link_service_pkts,
        )

        # Batteries and shifted energy queues (Eqs. 4 and 31).  The
        # allocation's discharge is *delivered* energy; the battery
        # drains 1/eta_d of it.
        for node, allocation in decision.energy.allocations.items():
            battery = self.batteries[node]
            charge = allocation.charge_j
            drain = allocation.discharge_j / battery.discharge_efficiency
            if not enforce_complementarity:
                net = charge - drain
                charge = max(net, 0.0)
                drain = max(-net, 0.0)
            action = BatteryAction(charge_j=charge, discharge_j=drain)
            level = battery.apply(action)
            self.energy_queues[node].observe_level(level)

        return make_snapshot(
            slot=slot,
            data_backlogs=self.data_queues.snapshot(),
            battery_levels=self.battery_levels(),
            virtual_backlogs=self.virtual_queues.snapshot(),
            bs_ids=self.model.bs_ids,
        )

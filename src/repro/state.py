"""Mutable per-run network state: all queues, batteries, and processes.

``NetworkState`` owns every stateful object of one simulation run —
data queues, link virtual queues, batteries with their shifted energy
queues, grid connections and renewable processes — and provides the
read accessors the controller needs plus the apply/advance methods the
simulator calls at the end of each slot.

The default state is *array-backed*: every hot per-slot quantity lives
in an :class:`~repro.core.arraystate.ArrayState` (``Q`` as an
``(N, S)`` array, ``G`` as ``(L,)``, battery levels as ``(N,)``) and
the per-slot updates run as vectorized kernels.  The dict-shaped read
accessors (``h_backlogs``, ``z_values``, ``battery_levels``) return
thin mapping adapters over the arrays, so external callers — the
relaxed-LP controller, drift diagnostics, contract checker — are
untouched.  :class:`ReferenceNetworkState` keeps the historical
dict-of-objects path for equivalence testing and benchmarking; both
paths consume identical RNG streams and produce bit-identical results.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.control.decisions import SlotDecision, SlotObservation
from repro.core.arraystate import ArrayState, LinkArrayMapping, NodeArrayMapping
from repro.core.lyapunov import LyapunovConstants
from repro.energy.battery import Battery, BatteryAction
from repro.energy.grid import GridConnection
from repro.energy.renewable import (
    DiurnalSolarProcess,
    MarkovWindProcess,
    RenewableProcess,
    UniformRenewableProcess,
    ZeroRenewableProcess,
)
from repro.model import NetworkModel
from repro.network.mobility import (
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    gain_matrix_for_positions,
)
from repro.queueing.backlog import (
    BacklogSnapshot,
    make_snapshot,
    make_snapshot_from_arrays,
)
from repro.queueing.data_queue import DataQueueBank
from repro.queueing.energy_queue import ShiftedEnergyQueue
from repro.queueing.virtual_queue import VirtualQueueBank
from repro.types import Link, MobilityKind, NodeId, RenewableKind, SessionId


def _build_renewable(
    kind: RenewableKind,
    max_power_w: float,
    slot_seconds: float,
    rng: np.random.Generator,
) -> RenewableProcess:
    """Instantiate the configured renewable process for one node."""
    if kind is RenewableKind.ZERO or max_power_w <= 0:
        return ZeroRenewableProcess()
    if kind is RenewableKind.UNIFORM:
        return UniformRenewableProcess(max_power_w, slot_seconds, rng)
    if kind is RenewableKind.SOLAR:
        return DiurnalSolarProcess(max_power_w, slot_seconds, rng)
    if kind is RenewableKind.WIND:
        return MarkovWindProcess(max_power_w, slot_seconds, rng)
    raise ValueError(f"unknown renewable kind {kind!r}")


class NetworkState:
    """All mutable state of one simulation run (array-backed)."""

    #: Subclasses set this to False to keep the dict-of-objects path.
    uses_arrays: bool = True

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        rng: np.random.Generator,
    ) -> None:
        """Spawn component RNG streams and build all stateful objects.

        Cold path: runs once per simulation run.
        """
        self.model = model
        self.constants = constants
        params = model.params

        # One independent child generator per stochastic component
        # (bands, then per-node renewable and grid), in a fixed order.
        # Components that happen to draw nothing (e.g. the zero
        # renewable process of the no-renewable baselines) still own a
        # stream, so disabling one component never shifts the sample
        # path of any other — architecture comparisons stay paired.
        children = rng.spawn(1 + 2 * model.num_nodes)
        band_rng = children[0]
        renewable_rngs = children[1 : 1 + model.num_nodes]
        grid_rngs = children[1 + model.num_nodes :]
        model.spectrum.reseed(band_rng)

        # Dynamic spectrum availability (extension): spawned only when
        # enabled so static scenarios keep their sample paths.
        self.availability = None
        if params.spectrum.dynamic_availability:
            from repro.network.spectrum import MarkovBandAvailability

            self.availability = MarkovBandAvailability(
                users=model.user_ids,
                random_bands=range(1, model.spectrum.num_bands),
                rng=rng.spawn(1)[0],
                on_prob=params.spectrum.availability_on_prob,
                persistence=params.spectrum.availability_persistence,
            )

        # Mobility (extension): spawned only when enabled so static
        # scenarios keep their historical sample paths.
        initial_positions = [n.position for n in model.nodes]
        if params.mobility is MobilityKind.RANDOM_WAYPOINT:
            self.mobility: MobilityModel = RandomWaypointMobility(
                initial=initial_positions,
                mobile=list(model.user_ids),
                area_side_m=params.area_side_m,
                speed_range_mps=params.user_speed_range_mps,
                slot_seconds=params.slot_seconds,
                rng=rng.spawn(1)[0],
            )
        else:
            self.mobility = StaticMobility(initial_positions)

        self.arrays: Optional[ArrayState] = (
            ArrayState(model, constants) if type(self).uses_arrays else None
        )
        self.data_queues = self._build_data_queues()
        self.virtual_queues = self._build_virtual_queues()

        self.batteries: Dict[NodeId, Battery] = {}
        self.energy_queues: Dict[NodeId, ShiftedEnergyQueue] = {}
        self.grids: Dict[NodeId, GridConnection] = {}
        self.renewables: Dict[NodeId, RenewableProcess] = {}
        for node in model.nodes:
            energy = node.energy
            self.batteries[node.node_id] = Battery(
                capacity_j=energy.battery_capacity_j,
                charge_cap_j=energy.charge_cap_j,
                discharge_cap_j=energy.discharge_cap_j,
                charge_efficiency=energy.charge_efficiency,
                discharge_efficiency=energy.discharge_efficiency,
            )
            self.energy_queues[node.node_id] = ShiftedEnergyQueue(
                node=node.node_id,
                control_v=params.control_v,
                gamma_max=constants.gamma_max,
                discharge_cap_j=energy.discharge_cap_j,
            )
            self.grids[node.node_id] = GridConnection(
                draw_cap_j=energy.grid_cap_j,
                connect_prob=energy.grid_connect_prob,
                rng=grid_rngs[node.node_id],
            )
            if params.renewables_enabled:
                kind = (
                    params.bs_renewable_kind
                    if node.is_base_station
                    else params.user_renewable_kind
                )
            else:
                kind = RenewableKind.ZERO
            self.renewables[node.node_id] = _build_renewable(
                kind,
                energy.renewable_max_w,
                params.slot_seconds,
                renewable_rngs[node.node_id],
            )
        if self.arrays is not None:
            # Battery and shifted queue share one level slot per node
            # (the engine path always mirrors the battery level into
            # the queue), so the vectorized apply updates both at once.
            for node_id in range(model.num_nodes):
                self.batteries[node_id].bind_storage(
                    self.arrays.battery_level, node_id
                )
                self.energy_queues[node_id].bind_storage(
                    self.arrays.battery_level, node_id
                )
        self.reset_caches()

    # ------------------------------------------------------------------
    # Construction hooks
    # ------------------------------------------------------------------

    def _build_data_queues(self) -> DataQueueBank:
        """Build the data-queue bank (cold path, once per run)."""
        if self.arrays is None:
            from repro.queueing.reference import ReferenceDataQueueBank

            return ReferenceDataQueueBank(
                nodes=range(self.model.num_nodes),
                session_destinations=self.model.session_destinations(),
                semantics=self.model.params.queue_semantics,
            )
        return DataQueueBank(
            nodes=range(self.model.num_nodes),
            session_destinations=self.model.session_destinations(),
            semantics=self.model.params.queue_semantics,
            storage=self.arrays,
        )

    def _build_virtual_queues(self) -> VirtualQueueBank:
        """Build the virtual-queue bank (cold path, once per run)."""
        if self.arrays is None:
            from repro.queueing.reference import ReferenceVirtualQueueBank

            return ReferenceVirtualQueueBank(
                links=self.model.topology.candidate_links,
                beta=self.constants.beta,
            )
        return VirtualQueueBank(
            links=self.model.topology.candidate_links,
            beta=self.constants.beta,
            storage=self.arrays,
        )

    # ------------------------------------------------------------------
    # Observation sampling
    # ------------------------------------------------------------------

    def reset_caches(self) -> None:
        """Invalidate every derived per-slot cache.

        Call after rebinding ``mobility``, ``grids`` or ``renewables``
        on a live state (e.g. scripted-outage experiments) so a stale
        gain matrix or sampling plan can never leak across
        reconfigured runs.  Idempotent and cheap.
        """
        self._gains_cache_slot = -1
        self._gains_cache = None
        self._plan_token: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
        self._renewable_draws: List[Tuple[NodeId, RenewableProcess]] = []
        self._grid_draws: List[Tuple[NodeId, GridConnection]] = []
        self._grid_static = np.zeros(0, dtype=bool)
        self._grid_caps = np.zeros(0)

    def _current_gains(self, slot: int):
        """Per-slot gain matrix under mobility; None when static."""
        if isinstance(self.mobility, StaticMobility):
            return None
        if slot != self._gains_cache_slot:
            params = self.model.params
            positions = self.mobility.positions_at(slot)
            self._gains_cache = gain_matrix_for_positions(
                positions, params.propagation_constant, params.path_loss_exponent
            )
            self._gains_cache_slot = slot
        return self._gains_cache

    def _refresh_sampling_plan(self) -> None:
        """Re-classify renewable/grid components for batched sampling.

        Cold path: rebuilt only when the component bindings change
        (detected by object identity, so experiments that swap in e.g.
        a ``ScriptedGridConnection`` are picked up automatically).
        Components that never draw — zero renewables, grids pinned
        connected or disconnected — are precomputed as constants;
        everything else keeps its own per-slot ``sample`` call in node
        order, exactly as the per-dict path did.
        """
        token = (
            tuple(map(id, self.renewables.values())),
            tuple(map(id, self.grids.values())),
        )
        if token == self._plan_token:
            return
        renewable_draws: List[Tuple[NodeId, RenewableProcess]] = []
        for node, process in self.renewables.items():
            if type(process) is not ZeroRenewableProcess:
                renewable_draws.append((node, process))
        grid_static = np.zeros(self.model.num_nodes, dtype=bool)
        grid_draws: List[Tuple[NodeId, GridConnection]] = []
        for node, grid in self.grids.items():
            if type(grid) is GridConnection and grid.always_connected:
                grid_static[node] = True
            elif type(grid) is GridConnection and grid.connect_prob <= 0.0:
                grid_static[node] = False
            else:
                grid_draws.append((node, grid))
        self._renewable_draws = renewable_draws
        self._grid_draws = grid_draws
        self._grid_static = grid_static
        self._grid_caps = np.fromiter(
            (grid.draw_cap_j for grid in self.grids.values()),
            dtype=float,
            count=self.model.num_nodes,
        )
        self._plan_token = token

    def observe(self, slot: int) -> SlotObservation:
        """Sample the slot's random state (bands, renewables, grid).

        Sampling is idempotent per slot only for mobility (positions
        are cached); band/renewable/grid draws advance their streams,
        so the engine observes each slot exactly once.  The array path
        batches the draws into dense per-node arrays, skipping
        components that provably consume no randomness — the surviving
        ``sample`` calls hit the same per-component streams in the same
        order as the dict path, so sample paths stay byte-identical.
        """
        band_access = None
        if self.availability is not None:
            self.availability.advance_to(slot)
            band_access = self.availability.mask(
                self.model.spectrum.access_sets()
            )
        if self.arrays is None:
            return SlotObservation(
                slot=slot,
                bands=self.model.spectrum.sample(slot),
                renewable_j={
                    node: process.sample(slot)
                    for node, process in self.renewables.items()  # noqa: R006 - reference object path
                },
                grid_connected={
                    node: grid.sample_connected(slot)
                    for node, grid in self.grids.items()  # noqa: R006 - reference object path
                },
                gains=self._current_gains(slot),
                band_access=band_access,
            )
        self._refresh_sampling_plan()
        bands = self.model.spectrum.sample(slot)
        renewable = np.zeros(self.model.num_nodes)
        for node, process in self._renewable_draws:
            renewable[node] = process.sample(slot)
        connected = self._grid_static.copy()
        for node, grid in self._grid_draws:
            connected[node] = grid.sample_connected(slot)
        return SlotObservation(
            slot=slot,
            bands=bands,
            renewable_j=NodeArrayMapping(renewable),
            grid_connected=NodeArrayMapping(connected),
            gains=self._current_gains(slot),
            band_access=band_access,
        )

    # ------------------------------------------------------------------
    # Read accessors for the controller
    # ------------------------------------------------------------------

    def backlog(self, node: NodeId, session: SessionId) -> float:
        """``Q_i^s(t)``."""
        return self.data_queues.backlog(node, session)

    def h_backlogs(self) -> Mapping[Link, float]:
        """``H_ij(t)`` for every candidate link (frozen at read time)."""
        if self.arrays is None:
            return {
                link: self.virtual_queues.h(link)
                for link in self.model.topology.candidate_links  # noqa: R040 - reference dict path (arrays is None); the array path returns a LinkArrayMapping view below
            }
        return LinkArrayMapping(
            self.virtual_queues.h_array(), self.arrays.links, self.arrays.link_pos
        )

    def grid_caps_array(self) -> np.ndarray:
        """``(N,)`` grid draw caps, rebuilt when grid bindings change.

        Values are the same floats the per-node
        ``grids[node].draw_cap_j`` reads return; the batched controller
        uses this to assemble S4 inputs without a per-node loop.
        """
        self._refresh_sampling_plan()
        return self._grid_caps

    def z_values(self) -> Mapping[NodeId, float]:
        """``z_i(t)`` for every node (frozen at read time)."""
        if self.arrays is None:
            return {
                node: queue.z
                for node, queue in self.energy_queues.items()  # noqa: R006 - reference object path
            }
        return NodeArrayMapping(self.arrays.z_values_array())

    def battery_levels(self) -> Mapping[NodeId, float]:
        """``x_i(t)`` for every node (frozen at read time)."""
        if self.arrays is None:
            return {
                node: battery.level_j
                for node, battery in self.batteries.items()  # noqa: R006 - reference object path
            }
        return NodeArrayMapping(self.arrays.battery_level.copy())

    # ------------------------------------------------------------------
    # Slot advance
    # ------------------------------------------------------------------

    def apply(
        self,
        decision: SlotDecision,
        slot: int,
        enforce_complementarity: bool = True,
    ) -> BacklogSnapshot:
        """Apply one slot's decision to every queue and battery.

        Args:
            decision: the controller's output for this slot.
            slot: slot index (stamped on the snapshot).
            enforce_complementarity: when False — used by the relaxed
                LP bound, which drops constraint (9) — simultaneous
                charge and discharge are netted before hitting the
                battery, leaving the level trajectory identical.

        Returns:
            The post-update backlog snapshot for the metrics collector.
        """
        # Data queues (Eq. 15).
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], float] = (
            decision.routing.rates
        )
        self.data_queues.step(rates, decision.admission.as_queue_arrivals())

        # Virtual queues (Eqs. 28/30): arrivals are routed packets,
        # service is the realised scheduled capacity.
        self.virtual_queues.step(
            arrivals_pkts=decision.routing.link_totals(),
            service_pkts=decision.schedule.link_service_pkts,
        )

        # Batteries and shifted energy queues (Eqs. 4 and 31).  The
        # allocation's discharge is *delivered* energy; the battery
        # drains 1/eta_d of it.
        if self.arrays is None:
            for node, allocation in decision.energy.allocations.items():  # noqa: R006 - reference object path
                battery = self.batteries[node]
                charge = allocation.charge_j
                drain = allocation.discharge_j / battery.discharge_efficiency
                if not enforce_complementarity:
                    net = charge - drain
                    charge = max(net, 0.0)
                    drain = max(-net, 0.0)
                action = BatteryAction(charge_j=charge, discharge_j=drain)
                level = battery.apply(action)
                self.energy_queues[node].observe_level(level)
            return make_snapshot(
                slot=slot,
                data_backlogs=self.data_queues.snapshot(),
                battery_levels=self.battery_levels(),
                virtual_backlogs=self.virtual_queues.snapshot(),
                bs_ids=self.model.bs_ids,
            )

        arrays = self.arrays
        charge_j, drain_j = self._build_battery_buffers(
            decision, enforce_complementarity
        )
        arrays.apply_battery_actions(charge_j, drain_j)

        return make_snapshot_from_arrays(slot=slot, arrays=arrays)

    def _build_battery_buffers(
        self, decision: SlotDecision, enforce_complementarity: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter the S4 allocations into ``(charge, drain)`` vectors.

        The battery half of the buffer-build/apply split the sharded
        loop relies on (see the queue banks' ``build_buffers``): the
        allocation dict is walked once in its global insertion order;
        the elementwise Eq. 4 update can then run per node-row subset.
        """
        arrays = self.arrays
        charge_j = np.zeros(arrays.num_nodes)
        drain_j = np.zeros(arrays.num_nodes)
        for node, allocation in decision.energy.allocations.items():  # noqa: R006 - decision-sized mapping feeding the vectorized kernel
            charge_j[node] = allocation.charge_j
            drain_j[node] = (
                allocation.discharge_j / self.batteries[node].discharge_efficiency
            )
        if not enforce_complementarity:
            net = charge_j - drain_j
            charge_j = np.maximum(net, 0.0)
            drain_j = np.maximum(-net, 0.0)
        return charge_j, drain_j


class ReferenceNetworkState(NetworkState):
    """The historical dict-of-objects state (no arrays).

    Identical RNG stream consumption and identical observable behaviour
    to :class:`NetworkState`; kept as the bit-exact baseline for the
    object-vs-array equivalence suite and the slot-loop benchmark.
    """

    uses_arrays = False

"""Fig. 2(f): energy cost of the four architectures, per ``V``.

The paper compares, at ``V`` in {1, 3, 5} x 1e5, the time-averaged
expected energy cost of the proposed system against three baselines:
multi-hop without renewables, one-hop with renewables, and one-hop
without renewables.  The proposed system wins everywhere; multi-hop
beats one-hop; renewables beat no renewables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.baselines.architectures import architecture_label
from repro.config.parameters import ScenarioParameters
from repro.config.scenarios import paper_scenario
from repro.experiments.executor import SweepSpec, run_sweep
from repro.sim.results import SimulationResult
from repro.types import Architecture

#: The paper's comparison points: V = 1e5, 3e5, 5e5.
PAPER_V_VALUES: Tuple[float, ...] = (1e5, 3e5, 5e5)

#: Row order matching the paper's legend.
ARCHITECTURES: Tuple[Architecture, ...] = (
    Architecture.MULTI_HOP_RENEWABLE,
    Architecture.MULTI_HOP_NO_RENEWABLE,
    Architecture.ONE_HOP_RENEWABLE,
    Architecture.ONE_HOP_NO_RENEWABLE,
)


@dataclass(frozen=True)
class Fig2fResult:
    """Per-(architecture, V) results plus a rendered table."""

    results: Dict[Tuple[Architecture, float], SimulationResult]
    table: str

    def cost(self, architecture: Architecture, v: float) -> float:
        """Time-averaged energy cost of one cell."""
        return self.results[(architecture, v)].average_cost

    def steady_cost(self, architecture: Architecture, v: float) -> float:
        """Second-half mean cost (battery-fill transient excluded)."""
        return self.results[(architecture, v)].steady_state_cost

    def ordering_holds(self, v: float, tolerance: float = 0.005) -> bool:
        """The paper's headline: the proposed system is cheapest.

        ``tolerance`` allows for transient noise in the full-horizon
        average: the battery-fill investment dominates early slots and
        is identical in expectation across architectures, but its
        realisation differs by a fraction of a percent between runs.
        """
        ours = self.cost(Architecture.MULTI_HOP_RENEWABLE, v)
        return all(
            ours <= self.cost(arch, v) * (1 + tolerance) + 1e-9
            for arch in ARCHITECTURES
            if arch is not Architecture.MULTI_HOP_RENEWABLE
        )

    def steady_ordering_holds(self, v: float) -> bool:
        """Proposed system cheapest on the settled second half."""
        ours = self.steady_cost(Architecture.MULTI_HOP_RENEWABLE, v)
        return all(
            ours <= self.steady_cost(arch, v) + 1e-9
            for arch in ARCHITECTURES
            if arch is not Architecture.MULTI_HOP_RENEWABLE
        )


def run_fig2f(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> Fig2fResult:
    """Regenerate the Fig. 2(f) comparison.

    The (architecture, V) grid fans out over the sweep executor; with
    ``max_workers=1`` the cells run serially, in the historical order.
    """
    if base is None:
        base = paper_scenario()
    sweep = run_sweep(
        SweepSpec.architectures(base, tuple(v_values), ARCHITECTURES),
        max_workers=max_workers,
    )
    results: Dict[Tuple[Architecture, float], SimulationResult] = {
        (architecture, v): sweep.result(architecture.value, v)
        for architecture in ARCHITECTURES
        for v in v_values
    }

    headers = (
        ["architecture"]
        + [f"V={v:g}" for v in v_values]
        + [f"steady V={v:g}" for v in v_values]
    )
    rows = []
    for architecture in ARCHITECTURES:
        rows.append(
            [architecture_label(architecture)]
            + [results[(architecture, v)].average_cost for v in v_values]
            + [results[(architecture, v)].steady_state_cost for v in v_values]
        )
    table = format_table(
        headers,
        rows,
        title="Fig. 2(f): time-averaged expected energy cost by architecture",
    )
    return Fig2fResult(results=results, table=table)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_fig2f().table)

"""Experiment drivers: one per paper figure, plus the sweep executor."""

from repro.experiments.executor import (
    FaultPlan,
    JobKind,
    JobSpec,
    MetricStats,
    ReplicatedResult,
    SweepExecutionError,
    SweepResult,
    SweepSpec,
    SweepVariant,
    run_sweep,
    write_bench_record,
)
from repro.experiments.runner import (
    bounds_from_results,
    compute_bounds,
    sweep_bounds,
    sweep_v,
)
from repro.experiments.fig2a import run_fig2a
from repro.experiments.fig2bc import run_fig2b, run_fig2c
from repro.experiments.fig2de import run_fig2d, run_fig2e
from repro.experiments.fig2f import run_fig2f
from repro.experiments.cell_edge import run_cell_edge
from repro.experiments.v_convergence import run_v_convergence
from repro.experiments.export import export_figure

__all__ = [
    "FaultPlan",
    "JobKind",
    "JobSpec",
    "MetricStats",
    "ReplicatedResult",
    "SweepExecutionError",
    "SweepResult",
    "SweepSpec",
    "SweepVariant",
    "run_sweep",
    "write_bench_record",
    "bounds_from_results",
    "compute_bounds",
    "sweep_bounds",
    "sweep_v",
    "run_cell_edge",
    "run_v_convergence",
    "export_figure",
    "run_fig2a",
    "run_fig2b",
    "run_fig2c",
    "run_fig2d",
    "run_fig2e",
    "run_fig2f",
]

"""Figs. 2(d)/2(e): total battery energy over time, per ``V``.

The paper plots the summed energy-storage levels of base stations (2d,
kWh) and mobile users (2e, Wh) for ``V`` in {1, .., 5} x 1e5: buffers
fill over time, stay bounded, and settle higher for larger ``V`` (the
``V * gamma_max``-shifted queues hold more energy when the controller
weighs cost more heavily).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.parameters import ScenarioParameters
from repro.experiments.fig2bc import (
    PAPER_V_VALUES,
    BacklogFigure,
    _run_backlog_figure,
)


def run_fig2d(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> BacklogFigure:
    """Fig. 2(d): total base-station energy buffer (J) over time."""
    return _run_backlog_figure(
        "bs_energy_j",
        "Fig. 2(d): total BS energy buffer (J) vs time",
        base,
        v_values,
        max_workers=max_workers,
    )


def run_fig2e(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> BacklogFigure:
    """Fig. 2(e): total mobile-user energy buffer (J) over time."""
    return _run_backlog_figure(
        "user_energy_j",
        "Fig. 2(e): total user energy buffer (J) vs time",
        base,
        v_values,
        max_workers=max_workers,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_fig2d().table)
    print()
    print(run_fig2e().table)

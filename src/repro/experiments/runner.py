"""Shared experiment machinery: paired runs, bound computation, sweeps.

Every experiment derives its scenarios from one base
``ScenarioParameters`` via ``dataclasses.replace`` so the random
environment (same seed, same streams) is identical across compared
configurations — the differences the figures show are policy effects,
not sampling noise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.config.parameters import ScenarioParameters
from repro.core.bounds import BoundReport, lower_bound_cost
from repro.sim.engine import SlotSimulator
from repro.sim.results import SimulationResult


def compute_bounds(params: ScenarioParameters) -> BoundReport:
    """Upper and lower bounds on ``psi*_P1`` for one configuration.

    Runs the integral controller (Theorem-4 upper bound) and the
    relaxed LP controller (Theorem-5 lower bound) on the same
    environment sample path.  Both bounds are stated on the P2
    objective ``avg[f(P) - lambda sum_s k_s]``, matching Lemma 2.
    """
    integral = SlotSimulator.integral(params).run()
    relaxed = SlotSimulator.relaxed(params).run()
    return BoundReport(
        control_v=params.control_v,
        upper=integral.average_penalty,
        lower=lower_bound_cost(
            relaxed.average_penalty,
            integral.constants.drift_b,
            params.control_v,
        ),
        relaxed_penalty=relaxed.average_penalty,
        drift_b=integral.constants.drift_b,
    )


def sweep_v(
    base: ScenarioParameters, v_values: Sequence[float]
) -> Dict[float, SimulationResult]:
    """Run the integral controller for each ``V`` on the shared seed."""
    results: Dict[float, SimulationResult] = {}
    for v in v_values:
        params = dataclasses.replace(base, control_v=v)
        results[v] = SlotSimulator.integral(params).run()
    return results

"""Shared experiment machinery: paired runs, bound computation, sweeps.

Every experiment derives its scenarios from one base
``ScenarioParameters`` via ``dataclasses.replace`` so the random
environment (same seed, same streams) is identical across compared
configurations — the differences the figures show are policy effects,
not sampling noise.

Grid-shaped experiments execute through the sweep executor
(:mod:`repro.experiments.executor`); ``max_workers=1`` (the default)
keeps the historical in-process serial behaviour, bit for bit, while
``max_workers > 1`` fans the grid over a process pool.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.config.parameters import ScenarioParameters
from repro.core.bounds import BoundReport, lower_bound_cost
from repro.experiments.executor import SweepSpec, run_sweep
from repro.sim.engine import SlotSimulator
from repro.sim.results import SimulationResult


def bounds_from_results(
    integral: SimulationResult,
    relaxed: SimulationResult,
    control_v: float,
) -> BoundReport:
    """Assemble the Theorem-4/5 bound pair from a paired run.

    Both bounds are stated on the P2 objective
    ``avg[f(P) - lambda sum_s k_s]``, matching Lemma 2: the integral
    controller's achieved objective is the Theorem-4 upper bound, the
    relaxed LP's objective anchors the Theorem-5 lower bound.
    """
    return BoundReport(
        control_v=control_v,
        upper=integral.average_penalty,
        lower=lower_bound_cost(
            relaxed.average_penalty,
            integral.constants.drift_b,
            control_v,
        ),
        relaxed_penalty=relaxed.average_penalty,
        drift_b=integral.constants.drift_b,
    )


def compute_bounds(params: ScenarioParameters) -> BoundReport:
    """Upper and lower bounds on ``psi*_P1`` for one configuration.

    Runs the integral controller (Theorem-4 upper bound) and the
    relaxed LP controller (Theorem-5 lower bound) on the same
    environment sample path.
    """
    integral = SlotSimulator.integral(params).run()
    relaxed = SlotSimulator.relaxed(params).run()
    return bounds_from_results(integral, relaxed, params.control_v)


def sweep_bounds(
    base: ScenarioParameters,
    v_values: Sequence[float],
    max_workers: int = 1,
) -> Dict[float, BoundReport]:
    """The bound pair of :func:`compute_bounds` for each ``V``.

    The integral and relaxed cells of every ``V`` are independent
    jobs, so a 10-point Fig.-2(a) sweep fans out over 20 workers.
    """
    sweep = run_sweep(
        SweepSpec.bounds(base, tuple(v_values)), max_workers=max_workers
    )
    return {
        v: bounds_from_results(
            sweep.result("integral", v), sweep.result("relaxed", v), v
        )
        for v in sweep.spec.v_values
    }


def sweep_v(
    base: ScenarioParameters,
    v_values: Sequence[float],
    max_workers: int = 1,
) -> Dict[float, SimulationResult]:
    """Run the integral controller for each ``V`` on the shared seed."""
    sweep = run_sweep(
        SweepSpec.integral(base, tuple(v_values)), max_workers=max_workers
    )
    return sweep.v_results("integral")

"""Fig. 2(a): upper and lower bounds on ``psi*_P1`` versus ``V``.

The paper sweeps ``V`` from 1e5 to 1e6 and plots the achieved cost of
the proposed algorithm (upper bound, Theorem 4) against
``psi*_P3bar - B/V`` (lower bound, Theorem 5), showing the bounds
approaching each other as ``V`` grows.

Our reproduction reports three series per ``V``:

* ``upper`` — the decomposition controller's achieved P2 objective;
* ``empirical_lower`` — the relaxed LP's achieved P2 objective, a
  tight empirical anchor (this is the gap that closes visibly);
* ``formal_lower`` — the Theorem-5 value ``psi*_P3bar - B/V``.  In a
  dimensionally consistent unit system the Eq. (34) constant ``B`` is
  dominated by the beta^2-scaled virtual-queue terms, so this bound is
  loose at small ``V`` and improves like 1/V — a finding recorded in
  EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config.parameters import ScenarioParameters
from repro.config.scenarios import paper_scenario
from repro.core.bounds import BoundReport
from repro.experiments.runner import sweep_bounds

#: The paper's sweep: V = 1e5 .. 1e6.
PAPER_V_VALUES: Tuple[float, ...] = tuple(k * 1e5 for k in range(1, 11))


@dataclass(frozen=True)
class Fig2aResult:
    """The Fig. 2(a) series plus a rendered table."""

    reports: Tuple[BoundReport, ...]
    table: str

    def v_values(self) -> List[float]:
        """The sweep points, ascending."""
        return [r.control_v for r in self.reports]


def run_fig2a(
    base: ScenarioParameters = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> Fig2aResult:
    """Regenerate the Fig. 2(a) data.

    Args:
        base: base scenario (defaults to the paper scenario).
        v_values: the ``V`` sweep points.
        max_workers: sweep-executor fan-out (1 = in-process serial).
    """
    if base is None:
        base = paper_scenario()
    ordered = sorted(v_values)
    by_v = sweep_bounds(base, ordered, max_workers=max_workers)
    reports = [by_v[v] for v in ordered]

    rows = [
        (
            r.control_v,
            r.upper,
            r.relaxed_penalty,
            r.lower,
            r.upper - r.relaxed_penalty,
        )
        for r in reports
    ]
    table = format_table(
        headers=["V", "upper", "empirical_lower", "formal_lower", "emp_gap"],
        rows=rows,
        title="Fig. 2(a): time-averaged expected energy cost bounds vs V",
    )
    return Fig2aResult(reports=tuple(reports), table=table)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_fig2a().table)

"""CSV export for experiment results.

Every figure driver returns a result object carrying the plotted
series; ``write_csv`` serialises headers + rows so the figures can be
re-plotted outside this library (gnuplot, pandas, spreadsheets).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, List, Sequence, Tuple, Union

#: ``(headers, rows)`` as consumed by :func:`write_csv`.
CsvTable = Tuple[List[str], List[Sequence[Any]]]


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write one table of experiment data as CSV; returns the path."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return target


def fig2a_rows(result: Any) -> CsvTable:
    """``(headers, rows)`` for a :class:`Fig2aResult`."""
    headers = ["V", "upper", "empirical_lower", "formal_lower"]
    rows = [
        (r.control_v, r.upper, r.relaxed_penalty, r.lower)
        for r in result.reports
    ]
    return headers, rows


def backlog_rows(result: Any) -> CsvTable:
    """``(headers, rows)`` for a :class:`BacklogFigure`."""
    v_values = sorted(result.series)
    headers = ["slot"] + [f"V={v:g}" for v in v_values]
    horizon = len(next(iter(result.series.values())))
    rows = [
        [slot] + [float(result.series[v][slot]) for v in v_values]
        for slot in range(horizon)
    ]
    return headers, rows


def fig2f_rows(result: Any) -> CsvTable:
    """``(headers, rows)`` for a :class:`Fig2fResult`."""
    pairs = sorted(result.results, key=lambda key: (key[0].value, key[1]))
    headers = ["architecture", "V", "average_cost", "steady_state_cost"]
    rows = [
        (
            arch.value,
            v,
            result.results[(arch, v)].average_cost,
            result.results[(arch, v)].steady_state_cost,
        )
        for arch, v in pairs
    ]
    return headers, rows


def export_figure(result: Any, path: Union[str, Path]) -> Path:
    """Dispatch on the result type and write its CSV."""
    kind = type(result).__name__
    if kind == "Fig2aResult":
        headers, rows = fig2a_rows(result)
    elif kind == "BacklogFigure":
        headers, rows = backlog_rows(result)
    elif kind == "Fig2fResult":
        headers, rows = fig2f_rows(result)
    elif kind == "CellEdgeResult":
        headers, rows = fig2f_rows(result.comparison)
    elif kind == "VConvergenceResult":
        headers = ["V", "upper", "relative_gap"]
        rows = list(zip(result.v_values, result.uppers, result.relative_gaps))
    else:
        raise TypeError(f"no CSV exporter for {kind}")
    return write_csv(path, headers, rows)

"""Pluggable-backend sweep execution with deterministic replication.

Every figure in EXPERIMENTS.md is a grid of independent simulation
cells — V values x controller variants (integral / relaxed LP /
architecture baselines) x replication seeds.  This module turns that
grid into a declarative :class:`SweepSpec`, hands the cells to a
:class:`Backend` (in-process serial or a
``concurrent.futures.ProcessPoolExecutor`` pool today; an SSH or
batch-queue backend later needs only the same three-method surface),
and guarantees that every backend is *byte-identical* to the serial
one:

* each cell is a pickle-safe :class:`JobSpec` whose scenario is fully
  derived (via ``dataclasses.replace``) before any process boundary is
  crossed, so a worker is a pure function of its job;
* replications derive their RNG roots through
  ``numpy.random.SeedSequence.spawn`` (see
  :func:`repro.sim.rng.spawn_child_keys`), threaded into
  :class:`~repro.sim.rng.RngStreams` via the scenario's
  ``seed_spawn_key`` — distinct, deterministic, version-stable; a
  sharded cell (``num_shards >= 1``) additionally reserves per-shard
  spawn keys inside its :class:`~repro.sharding.partition.ShardPlan`;
* the default ``max_workers=1`` selects the :class:`SerialBackend`
  (no pool, no pickling), so CI and debuggers step through one code
  path while ``tests/test_executor.py`` pins that all backends agree
  exactly;
* a worker that dies mid-job (OOM kill, segfault, injected fault) is
  retried on a fresh pool, bounded by ``max_attempts``, without
  perturbing any sibling cell (every cell is replayed from its spec,
  never from partial state).

Every backend names its worker entry point in a ``worker_entry`` class
attribute; the R050–R052 pool-safety analysis resolves those into
worker roots, so functions reachable from any backend keep
whole-program mutation coverage (see ``analysis/callgraph.py``).

Timing of every cell is recorded and can be emitted as a
machine-readable ``BENCH_sweep.json`` record (see
``docs/executor.md``) to track the sweep-throughput trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.baselines.architectures import architecture_params
from repro.config.parameters import ScenarioParameters
from repro.exceptions import ShardingError
from repro.sharding.engine import ShardedSlotSimulator
from repro.sim.engine import SlotSimulator
from repro.sim.results import SimulationResult
from repro.sim.rng import SpawnKey, spawn_child_keys
from repro.types import Architecture

#: Identity of one sweep cell: ``(variant name, control V, replication)``.
JobKey = Tuple[str, float, int]

#: Environment variable consulted when ``run_sweep`` is called without
#: an explicit ``bench_path`` — lets drivers (benchmarks, the figure
#: regeneration script) collect records without widening every runner
#: signature.
BENCH_ENV_VAR = "REPRO_BENCH_SWEEP"

#: Schema tag written into every bench record.
BENCH_SCHEMA = "repro.bench_sweep.v1"


class JobKind(Enum):
    """Which controller a cell runs."""

    INTEGRAL = "integral"
    RELAXED = "relaxed"


class SweepExecutionError(RuntimeError):
    """A sweep cell could not be completed.

    Raised when a job raises inside the worker (the original error is
    chained) or when a cell exhausted its crash-retry budget.
    """


@dataclass(frozen=True)
class SweepVariant:
    """One controller variant of the sweep grid.

    Attributes:
        name: the key under which results are reported.
        kind: integral decomposition or the relaxed LP.
        architecture: optional Fig.-2(f) architecture whose parameter
            restrictions are applied to every cell of the variant.
    """

    name: str
    kind: JobKind = JobKind.INTEGRAL
    architecture: Optional[Architecture] = None

    def derive(self, params: ScenarioParameters) -> ScenarioParameters:
        """The cell scenario after the variant's restrictions."""
        if self.architecture is None:
            return params
        return architecture_params(params, self.architecture)


#: The plain integral-controller variant used by default sweeps.
INTEGRAL_VARIANT = SweepVariant(name="integral", kind=JobKind.INTEGRAL)

#: The relaxed-LP (Theorem-5 lower bound) variant.
RELAXED_VARIANT = SweepVariant(name="relaxed", kind=JobKind.RELAXED)


@dataclass(frozen=True)
class JobSpec:
    """One fully-derived, pickle-safe sweep cell.

    The scenario already carries the cell's ``control_v``, the
    variant's architecture restrictions and the replication's
    ``seed_spawn_key``; a worker needs nothing beyond this object.
    ``num_shards >= 1`` runs the cell through the sharded slot loop
    (``repro.sharding``) with that many BS-anchored shards; ``0`` keeps
    the monolithic loop.
    """

    params: ScenarioParameters
    variant: SweepVariant
    replication: int = 0
    num_shards: int = 0

    @property
    def key(self) -> JobKey:
        """The cell's identity in result/timing maps."""
        return (self.variant.name, self.params.control_v, self.replication)


@dataclass(frozen=True)
class FaultPlan:
    """Test hook: kill the worker running one cell.

    The worker running the job whose key matches ``key`` reads the
    integer countdown in ``marker_path``; while it is positive the
    worker decrements it and hard-exits (``os._exit``), simulating a
    crash the executor must retry.  Purely a determinism-test aid —
    production sweeps pass ``fault=None``.
    """

    key: JobKey
    marker_path: str


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid: V values x variants x replications.

    Cells are enumerated in a deterministic order (variant-major, then
    V, then replication) that is identical for the serial and parallel
    paths.  Replication ``r`` of a cell runs the base scenario with
    ``seed_spawn_key`` set to the ``r``-th child spawn key of the
    scenario's root ``SeedSequence``; with ``replications == 1`` the
    base key is left untouched, so a single-replication sweep is
    byte-identical to the historical serial loops.
    """

    base: ScenarioParameters
    v_values: Tuple[float, ...]
    variants: Tuple[SweepVariant, ...] = (INTEGRAL_VARIANT,)
    replications: int = 1
    #: ``>= 1`` runs every integral cell through the sharded slot loop.
    num_shards: int = 0

    def __post_init__(self) -> None:
        if not self.v_values:
            raise ValueError("SweepSpec needs at least one V value")
        if not self.variants:
            raise ValueError("SweepSpec needs at least one variant")
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.num_shards < 0:
            raise ValueError(
                f"num_shards must be >= 0, got {self.num_shards}"
            )
        names = [variant.name for variant in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def integral(
        cls,
        base: ScenarioParameters,
        v_values: Sequence[float],
        replications: int = 1,
        num_shards: int = 0,
    ) -> "SweepSpec":
        """The plain integral-controller sweep (``sweep_v`` shape)."""
        return cls(
            base=base,
            v_values=tuple(v_values),
            replications=replications,
            num_shards=num_shards,
        )

    @classmethod
    def bounds(
        cls,
        base: ScenarioParameters,
        v_values: Sequence[float],
        replications: int = 1,
    ) -> "SweepSpec":
        """The paired integral + relaxed-LP grid of Fig. 2(a)."""
        return cls(
            base=base,
            v_values=tuple(v_values),
            variants=(INTEGRAL_VARIANT, RELAXED_VARIANT),
            replications=replications,
        )

    @classmethod
    def architectures(
        cls,
        base: ScenarioParameters,
        v_values: Sequence[float],
        architectures: Sequence[Architecture],
        replications: int = 1,
    ) -> "SweepSpec":
        """The four-architecture comparison grid of Fig. 2(f)."""
        variants = tuple(
            SweepVariant(name=arch.value, architecture=arch)
            for arch in architectures
        )
        return cls(
            base=base,
            v_values=tuple(v_values),
            variants=variants,
            replications=replications,
        )

    # -- grid enumeration --------------------------------------------------

    def replication_keys(self) -> Tuple[SpawnKey, ...]:
        """Per-replication ``seed_spawn_key`` values, in order."""
        if self.replications == 1:
            return (self.base.seed_spawn_key,)
        return spawn_child_keys(
            self.base.seed, self.replications, self.base.seed_spawn_key
        )

    def jobs(self) -> Tuple[JobSpec, ...]:
        """Every cell of the grid, in deterministic order."""
        keys = self.replication_keys()
        out: List[JobSpec] = []
        for variant in self.variants:
            for v in self.v_values:
                for replication, spawn_key in enumerate(keys):
                    params = dataclasses.replace(
                        self.base, control_v=v, seed_spawn_key=spawn_key
                    )
                    out.append(
                        JobSpec(
                            params=variant.derive(params),
                            variant=variant,
                            replication=replication,
                            num_shards=self.num_shards,
                        )
                    )
        return tuple(out)


@dataclass(frozen=True)
class MetricStats:
    """Mean/std/min/max of one metric across replications."""

    mean: float
    std: float
    min: float
    max: float
    samples: Tuple[float, ...]


@dataclass(frozen=True)
class ReplicatedResult:
    """One (variant, V) cell aggregated over its replications."""

    variant: str
    control_v: float
    results: Tuple[SimulationResult, ...]

    def stats(self, metric: str = "average_cost") -> MetricStats:
        """Aggregate one ``SimulationResult.summary()`` metric."""
        samples = tuple(
            float(result.summary()[metric]) for result in self.results
        )
        n = len(samples)
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        return MetricStats(
            mean=mean,
            std=variance**0.5,
            min=min(samples),
            max=max(samples),
            samples=samples,
        )

    def summary_stats(self) -> Dict[str, MetricStats]:
        """Aggregate every summary metric."""
        return {
            name: self.stats(name) for name in self.results[0].summary()
        }


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced: results, timings, attempt counts."""

    spec: SweepSpec
    max_workers: int
    elapsed_s: float
    results: Dict[JobKey, SimulationResult]
    wall_s: Dict[JobKey, float]
    attempts: Dict[JobKey, int]
    backend: str = "serial"

    # -- accessors ---------------------------------------------------------

    def result(
        self, variant: str, v: float, replication: int = 0
    ) -> SimulationResult:
        """One cell's result."""
        return self.results[(variant, v, replication)]

    def v_results(
        self, variant: str = "integral", replication: int = 0
    ) -> Dict[float, SimulationResult]:
        """The classic ``sweep_v`` shape: ``{V: result}`` for a variant."""
        return {
            v: self.results[(variant, v, replication)]
            for v in self.spec.v_values
        }

    def replicated(self, variant: str, v: float) -> ReplicatedResult:
        """One (variant, V) cell aggregated across replications."""
        runs = tuple(
            self.results[(variant, v, r)]
            for r in range(self.spec.replications)
        )
        return ReplicatedResult(variant=variant, control_v=v, results=runs)

    # -- performance record ------------------------------------------------

    @property
    def serial_equivalent_s(self) -> float:
        """Summed per-cell wall clock: the serial-execution cost proxy.

        Per-cell times are measured inside the workers, so on a loaded
        or single-core machine they include timesharing inflation; the
        ratio to ``elapsed_s`` then measures worker *overlap* rather
        than core-count speedup.  See docs/executor.md.
        """
        return sum(self.wall_s.values())

    @property
    def speedup(self) -> float:
        """``serial_equivalent_s / elapsed_s`` — > 1 when cells overlap."""
        if self.elapsed_s <= 0.0:
            return 1.0
        return self.serial_equivalent_s / self.elapsed_s

    @property
    def total_retries(self) -> int:
        """Extra attempts beyond the first, summed over cells."""
        return sum(self.attempts.values()) - len(self.attempts)

    def bench_record(self) -> Dict[str, object]:
        """The machine-readable ``BENCH_sweep.json`` record."""
        cells = [
            {
                "variant": key[0],
                "control_v": key[1],
                "replication": key[2],
                "wall_s": self.wall_s[key],
                "attempts": self.attempts[key],
            }
            for key in sorted(self.wall_s)
        ]
        return {
            "schema": BENCH_SCHEMA,
            "backend": self.backend,
            "max_workers": self.max_workers,
            "num_cells": len(cells),
            "replications": self.spec.replications,
            "elapsed_s": self.elapsed_s,
            "serial_equivalent_s": self.serial_equivalent_s,
            "speedup": self.speedup,
            "retries": self.total_retries,
            "cells": cells,
        }


# -- worker side -------------------------------------------------------------


def _maybe_crash(job: JobSpec, fault: Optional[FaultPlan]) -> None:
    """Consume one crash token and hard-exit (test hook; see FaultPlan)."""
    if fault is None or job.key != fault.key:
        return
    try:
        raw = Path(fault.marker_path).read_text().strip()
    except OSError:
        return
    remaining = int(raw) if raw else 0
    if remaining <= 0:
        return
    Path(fault.marker_path).write_text(str(remaining - 1))
    os._exit(77)  # simulate a hard worker death (no cleanup, no excepthook)


def _execute_job(
    job: JobSpec, fault: Optional[FaultPlan] = None
) -> Tuple[JobKey, SimulationResult, float]:
    """Run one cell; pure function of the job spec.

    Top-level (pickle-importable) so it works as the process-pool entry
    point; the serial backend calls it directly, which is what makes
    every backend one code path.
    """
    _maybe_crash(job, fault)
    start = time.perf_counter()
    if job.variant.kind is JobKind.RELAXED:
        if job.num_shards >= 1:
            raise ShardingError(
                "the relaxed LP bound solves one global program and"
                " cannot run sharded"
            )
        result = SlotSimulator.relaxed(job.params).run()
    elif job.num_shards >= 1:
        result = ShardedSlotSimulator(job.params, num_shards=job.num_shards).run()
    else:
        result = SlotSimulator.integral(job.params).run()
    return job.key, result, time.perf_counter() - start


# -- backends ----------------------------------------------------------------

#: What a backend returns per cell: ``(result, wall seconds, attempts)``.
CellOutcome = Tuple[SimulationResult, float, int]


class Backend(Protocol):
    """Where sweep cells execute.

    Implementations must be deterministic *pass-throughs*: a backend
    may order, distribute, and retry cells however it likes, but every
    cell's result must equal what :func:`_execute_job` returns for its
    spec — the serial/parallel bit-identity tests are the contract.

    The class-level ``worker_entry`` attribute names the function that
    runs a cell on the worker side.  The pool-safety analysis
    (R050–R052 in ``analysis/callgraph.py``) reads it to seed worker
    roots, so any new backend (SSH, batch queue) keeps whole-program
    coverage simply by declaring its entry point the same way.
    """

    name: str
    worker_entry: Callable[..., Tuple[JobKey, SimulationResult, float]]

    def run_cells(
        self,
        jobs: Sequence[JobSpec],
        max_attempts: int,
        fault: Optional[FaultPlan],
    ) -> Dict[JobKey, CellOutcome]:  # pragma: no cover - protocol
        """Execute every job and return per-key outcomes."""
        ...


class SerialBackend:
    """In-process execution, in grid order — the reference backend."""

    name = "serial"
    worker_entry = staticmethod(_execute_job)

    def run_cells(
        self,
        jobs: Sequence[JobSpec],
        max_attempts: int,
        fault: Optional[FaultPlan],
    ) -> Dict[JobKey, CellOutcome]:
        """Run cells one by one; in-job errors surface immediately."""
        del max_attempts  # serial crashes take the process down anyway
        done: Dict[JobKey, CellOutcome] = {}
        for job in jobs:
            try:
                key, result, wall_s = _execute_job(job, fault)
            except Exception as exc:
                raise SweepExecutionError(
                    f"cell {job.key} failed: {exc}"
                ) from exc
            done[key] = (result, wall_s, 1)
        return done


class ProcessPoolBackend:
    """Fan jobs over a process pool, retrying cells whose worker died.

    A hard worker death breaks the whole pool (``BrokenExecutor``), so
    every cell still in flight is replayed on a fresh pool; cells are
    pure functions of their specs, so replays cannot perturb results.
    In-job exceptions are *not* retried (they are deterministic) and
    surface immediately as :class:`SweepExecutionError`.
    """

    name = "process-pool"
    worker_entry = staticmethod(_execute_job)

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def run_cells(
        self,
        jobs: Sequence[JobSpec],
        max_attempts: int,
        fault: Optional[FaultPlan],
    ) -> Dict[JobKey, CellOutcome]:
        """Execute with crash retry (class docstring)."""
        done: Dict[JobKey, CellOutcome] = {}
        attempts: Dict[JobKey, int] = {job.key: 0 for job in jobs}
        pending: List[JobSpec] = list(jobs)
        while pending:
            exhausted = [
                job.key for job in pending if attempts[job.key] >= max_attempts
            ]
            if exhausted:
                raise SweepExecutionError(
                    f"cells {exhausted} exceeded {max_attempts} attempts "
                    "(worker kept dying)"
                )
            retry: List[JobSpec] = []
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {
                    pool.submit(_execute_job, job, fault): job
                    for job in pending
                }
                for job in pending:
                    attempts[job.key] += 1
                for future in as_completed(futures):
                    job = futures[future]
                    try:
                        key, result, wall_s = future.result()
                    except BrokenExecutor:
                        retry.append(job)
                        continue
                    except Exception as exc:
                        raise SweepExecutionError(
                            f"cell {job.key} failed in worker: {exc}"
                        ) from exc
                    done[key] = (result, wall_s, attempts[key])
            pending = retry
        return done


#: Registered backend constructors, keyed by name.  Future SSH /
#: batch-queue backends register here and become reachable from every
#: sweep driver (and the ``--backend`` CLI flag) without signature
#: changes.
BACKENDS: Dict[str, Callable[[int], Backend]] = {
    SerialBackend.name: lambda max_workers: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def make_backend(name: str, max_workers: int = 1) -> Backend:
    """Instantiate a registered backend by name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r} (known: {known})") from None
    return factory(max_workers)


# -- driver side -------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    max_workers: int = 1,
    max_attempts: int = 3,
    bench_path: Union[str, Path, None] = None,
    fault: Optional[FaultPlan] = None,
    backend: Union[Backend, str, None] = None,
) -> SweepResult:
    """Execute a sweep grid on a backend.

    Args:
        spec: the declarative grid.
        max_workers: with the default ``backend=None``, ``1`` selects
            the :class:`SerialBackend` (every cell in-process, in grid
            order, no pool and no pickling) and ``> 1`` a
            :class:`ProcessPoolBackend` of that size.  Results are
            identical either way.
        max_attempts: per-cell bound on (re-)executions after worker
            deaths; deterministic in-job exceptions are never retried.
        bench_path: write/append a ``BENCH_sweep.json`` record here;
            ``None`` falls back to the ``REPRO_BENCH_SWEEP`` env var
            (no record when both are unset).
        fault: optional :class:`FaultPlan` crash injection (tests).
        backend: an explicit :class:`Backend` instance, a registered
            backend name (see :data:`BACKENDS`), or ``None`` for the
            ``max_workers``-based selection above.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if backend is None:
        backend = (
            SerialBackend()
            if max_workers == 1
            else ProcessPoolBackend(max_workers)
        )
    elif isinstance(backend, str):
        backend = make_backend(backend, max_workers)
    jobs = spec.jobs()
    start = time.perf_counter()
    results: Dict[JobKey, SimulationResult] = {}
    wall_s: Dict[JobKey, float] = {}
    attempts: Dict[JobKey, int] = {}
    for key, (result, cell_wall_s, cell_attempts) in backend.run_cells(
        jobs, max_attempts, fault
    ).items():
        results[key] = result
        wall_s[key] = cell_wall_s
        attempts[key] = cell_attempts
    sweep = SweepResult(
        spec=spec,
        max_workers=max_workers,
        elapsed_s=time.perf_counter() - start,
        results=results,
        wall_s=wall_s,
        attempts=attempts,
        backend=backend.name,
    )
    target = bench_path if bench_path is not None else os.environ.get(BENCH_ENV_VAR)
    if target:
        write_bench_record(sweep, target)
    return sweep


def write_bench_record(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Append a sweep's record to a ``BENCH_sweep.json`` file.

    The file holds ``{"schema": ..., "sweeps": [record, ...]}`` so one
    driver (the figure regeneration script, a benchmark session) can
    accumulate every grid it executed; an existing file is extended,
    anything unreadable is overwritten.
    """
    target = Path(path)
    payload: Dict[str, object] = {"schema": BENCH_SCHEMA, "sweeps": []}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
            if (
                isinstance(existing, dict)
                and existing.get("schema") == BENCH_SCHEMA
                and isinstance(existing.get("sweeps"), list)
            ):
                payload = existing
        except (OSError, ValueError):
            pass
    sweeps = payload["sweeps"]
    assert isinstance(sweeps, list)
    sweeps.append(sweep.bench_record())
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Smoke driver: ``python -m repro.experiments.executor``.

    Runs a small integral V sweep through the executor and prints the
    per-cell timing record — CI uses it (``--workers 2``) to prove the
    process-pool path works on a fresh checkout, and the emitted
    ``BENCH_sweep.json`` starts the perf trajectory.
    """
    import argparse

    from repro.config.scenarios import tiny_scenario

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--workers", type=int, default=2, help="pool size")
    parser.add_argument("--slots", type=int, default=12, help="horizon")
    parser.add_argument(
        "--replications", type=int, default=2, help="seeds per cell"
    )
    parser.add_argument(
        "--out", default=None, help="BENCH_sweep.json target path"
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=sorted(BACKENDS),
        help="execution backend (default: by --workers)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shards per cell (0 = monolithic slot loop)",
    )
    args = parser.parse_args(argv)

    spec = SweepSpec.integral(
        tiny_scenario(num_slots=args.slots),
        v_values=(1e4, 3e4),
        replications=args.replications,
        num_shards=args.shards,
    )
    sweep = run_sweep(
        spec,
        max_workers=args.workers,
        bench_path=args.out,
        backend=args.backend,
    )
    record = sweep.bench_record()
    print(json.dumps(record, indent=2))
    if args.out:
        print(f"record appended to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())

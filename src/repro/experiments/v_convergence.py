"""Extension experiment: how close the heuristic tracks the optimum.

Lemma 2 predicts the drift-plus-penalty policy's objective sits within
``B/V`` of the per-slot optimum.  On a finite horizon the absolute
objective itself grows with V (the battery-fill investment scales with
the ``V * gamma_max`` threshold), so the meaningful closeness measure
is the *relative* gap between the heuristic decomposition and the
per-slot-exact relaxed LP run on the identical environment:

    rel_gap(V) = (psi_heuristic - psi_relaxed) / psi_heuristic.

This driver measures it across a V sweep, fits the descriptive model
``rel_gap = floor + slope / V``, and reports both; the acceptance
criterion (tests, bench) is that the heuristic stays within a few
percent of the optimum at every V.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.config.parameters import ScenarioParameters
from repro.config.scenarios import paper_scenario
from repro.experiments.runner import sweep_bounds


@dataclass(frozen=True)
class VConvergenceResult:
    """Measured relative gaps and the fitted ``floor + slope/V`` model.

    Attributes:
        v_values: the sweep points, ascending.
        uppers: the heuristic's achieved objective per V.
        relative_gaps: (heuristic - relaxed) / heuristic per V.
        floor: fitted asymptotic relative gap.
        slope: fitted 1/V coefficient.
        table: rendered rows.
    """

    v_values: Tuple[float, ...]
    uppers: Tuple[float, ...]
    relative_gaps: Tuple[float, ...]
    floor: float
    slope: float
    table: str

    def fitted(self, v: float) -> float:
        """The fitted relative-gap model evaluated at ``v``."""
        return self.floor + self.slope / v

    @property
    def worst_relative_gap(self) -> float:
        """The largest relative gap across the sweep."""
        return max(self.relative_gaps)


def run_v_convergence(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = (1e5, 2e5, 4e5, 8e5),
    max_workers: int = 1,
) -> VConvergenceResult:
    """Measure the heuristic-to-relaxed relative gap across a V sweep."""
    if base is None:
        base = paper_scenario()
    ordered = tuple(sorted(v_values))
    reports = sweep_bounds(base, ordered, max_workers=max_workers)
    uppers = []
    relative_gaps = []
    for v in ordered:
        report = reports[v]
        uppers.append(report.upper)
        denominator = max(abs(report.upper), 1e-12)
        relative_gaps.append(
            (report.upper - report.relaxed_penalty) / denominator
        )

    design = np.column_stack([np.ones(len(ordered)), 1.0 / np.array(ordered)])
    coeffs, *_ = np.linalg.lstsq(design, np.array(relative_gaps), rcond=None)
    floor, slope = float(coeffs[0]), float(coeffs[1])

    result = VConvergenceResult(
        v_values=ordered,
        uppers=tuple(uppers),
        relative_gaps=tuple(relative_gaps),
        floor=floor,
        slope=slope,
        table="",
    )
    rows = [
        (v, upper, 100.0 * gap, 100.0 * result.fitted(v))
        for v, upper, gap in zip(ordered, uppers, relative_gaps)
    ]
    table = format_table(
        ["V", "upper", "rel gap %", "fit %"],
        rows,
        title=(
            "Heuristic-vs-relaxed relative gap "
            f"(floor={100 * floor:.2f}%, slope={slope:.4g})"
        ),
    )
    return dataclasses.replace(result, table=table)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_v_convergence().table)

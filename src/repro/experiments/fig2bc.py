"""Figs. 2(b)/2(c): total data-queue backlog over time, per ``V``.

The paper plots, for ``V`` in {1, .., 5} x 1e5, the summed data-queue
backlog of the base stations (2b) and of the mobile users (2c) over
the 100-minute horizon, showing bounded backlogs that grow with ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.config.parameters import ScenarioParameters
from repro.config.scenarios import paper_scenario
from repro.experiments.runner import sweep_v

#: The paper's backlog sweep: V = 1e5 .. 5e5.
PAPER_V_VALUES: Tuple[float, ...] = tuple(k * 1e5 for k in range(1, 6))


@dataclass(frozen=True)
class BacklogFigure:
    """One backlog-vs-time figure: a series per ``V``.

    Attributes:
        metric: the snapshot field plotted.
        series: per-V backlog sample paths (length = horizon).
        table: sampled rows (every ``sample_every`` slots) as text.
    """

    metric: str
    series: Dict[float, np.ndarray]
    table: str

    def final_values(self) -> Dict[float, float]:
        """Backlog at the end of the horizon per ``V``."""
        return {v: float(path[-1]) for v, path in self.series.items()}

    def mean_values(self) -> Dict[float, float]:
        """Time-averaged backlog per ``V``."""
        return {v: float(path.mean()) for v, path in self.series.items()}


def _run_backlog_figure(
    metric: str,
    title: str,
    base: Optional[ScenarioParameters],
    v_values: Sequence[float],
    sample_every: int = 10,
    max_workers: int = 1,
) -> BacklogFigure:
    if base is None:
        base = paper_scenario()
    results = sweep_v(base, sorted(v_values), max_workers=max_workers)
    series = {
        v: result.backlog_series(metric) for v, result in results.items()
    }
    horizon = len(next(iter(series.values())))
    sample_slots = list(range(0, horizon, sample_every))
    if sample_slots[-1] != horizon - 1:
        sample_slots.append(horizon - 1)
    headers = ["slot"] + [f"V={v:g}" for v in sorted(series)]
    rows = [
        [slot] + [float(series[v][slot]) for v in sorted(series)]
        for slot in sample_slots
    ]
    return BacklogFigure(
        metric=metric,
        series=series,
        table=format_table(headers, rows, title=title),
    )


def run_fig2b(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> BacklogFigure:
    """Fig. 2(b): total base-station data-queue backlog over time."""
    return _run_backlog_figure(
        "bs_data_packets",
        "Fig. 2(b): total BS data queue backlog (packets) vs time",
        base,
        v_values,
        max_workers=max_workers,
    )


def run_fig2c(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = PAPER_V_VALUES,
    max_workers: int = 1,
) -> BacklogFigure:
    """Fig. 2(c): total mobile-user data-queue backlog over time."""
    return _run_backlog_figure(
        "user_data_packets",
        "Fig. 2(c): total user data queue backlog (packets) vs time",
        base,
        v_values,
        max_workers=max_workers,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_fig2b().table)
    print()
    print(run_fig2c().table)

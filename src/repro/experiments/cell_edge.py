"""Extension experiment: multi-hop savings at the cell edge.

Fig. 2(f)'s multi-hop-vs-one-hop contrast depends on where sessions
terminate: for destinations near a base station the direct hop is
cheap and relaying buys nothing.  This experiment re-runs the
architecture comparison with every session terminating at the users
*farthest* from all base stations — the regime the paper's
introduction motivates ("multi-hop communications divides direct paths
into shorter links ... lower transmission power can be assigned").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config.parameters import ScenarioParameters
from repro.config.scenarios import cell_edge_scenario
from repro.experiments.fig2f import Fig2fResult, run_fig2f
from repro.types import Architecture


@dataclass(frozen=True)
class CellEdgeResult:
    """The cell-edge comparison plus the derived savings ratios."""

    comparison: Fig2fResult
    table: str

    def multi_hop_saving(self, v: float) -> float:
        """Relative steady-state saving of multi-hop over one-hop.

        ``1 - ours / one-hop`` with renewables on both sides; positive
        means relaying pays.
        """
        ours = self.comparison.steady_cost(Architecture.MULTI_HOP_RENEWABLE, v)
        one_hop = self.comparison.steady_cost(Architecture.ONE_HOP_RENEWABLE, v)
        if one_hop <= 0:
            return 0.0
        return 1.0 - ours / one_hop


def run_cell_edge(
    base: Optional[ScenarioParameters] = None,
    v_values: Sequence[float] = (1e5, 3e5),
    max_workers: int = 1,
) -> CellEdgeResult:
    """Run the cell-edge architecture comparison."""
    if base is None:
        base = cell_edge_scenario()
    comparison = run_fig2f(base=base, v_values=v_values, max_workers=max_workers)

    rows: Tuple = tuple(
        (
            f"V={v:g}",
            comparison.steady_cost(Architecture.MULTI_HOP_RENEWABLE, v),
            comparison.steady_cost(Architecture.ONE_HOP_RENEWABLE, v),
        )
        for v in v_values
    )
    savings_rows = []
    result = CellEdgeResult(comparison=comparison, table="")
    for (label, ours, one_hop), v in zip(rows, v_values):
        savings_rows.append(
            (label, ours, one_hop, 100.0 * result.multi_hop_saving(v))
        )
    table = (
        comparison.table
        + "\n\n"
        + format_table(
            ["", "multi-hop steady", "one-hop steady", "saving %"],
            savings_rows,
            title="Cell-edge sessions: steady-state multi-hop saving",
        )
    )
    return CellEdgeResult(comparison=comparison, table=table)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run_cell_edge().table)

"""Physical-model feasibility helpers and the big-M constant of Eq. (24).

These are the ingredients of the paper's linearised SINR constraint:

    g_ij P_ij^m a_ij^m + M_ij^m (1 - a_ij^m)
        >= Gamma (eta_j W_m + sum_{k!=i} g_kj P_kv^m a_kv^m),

with ``M_ij^m = Gamma (eta_j W_m + sum_{k!=i} g_kj P_max^k)`` chosen so
the constraint is vacuous when the link is not scheduled.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.types import NodeId
from repro.units import Linear, Watts


def _seq_sum(values: np.ndarray) -> float:
    """Strict left-to-right sum, matching Python's builtin ``sum``.

    Local copy of :func:`repro.core.arraystate.seq_sum` — ``phy`` is a
    leaf package imported during ``core``'s own initialisation, so it
    cannot import from ``core`` without a cycle.
    """
    flat = np.ravel(values)
    if flat.size == 0:
        return 0.0
    return float(np.add.accumulate(flat)[-1])


def zero_interference_feasible(
    gain: Linear,
    max_power_w: Watts,
    noise_power_w: Watts,
    sinr_threshold: Linear,
) -> bool:
    """True if a link clears ``Gamma`` at max power with no interference.

    This is the necessary condition for a link ever being schedulable;
    the topology builder uses it for candidate-link pruning.
    """
    if noise_power_w <= 0:
        raise ValueError(f"noise power must be positive, got {noise_power_w}")
    return gain * max_power_w >= sinr_threshold * noise_power_w


def max_power_array(
    max_power_w: Union[Dict[NodeId, Watts], np.ndarray], num_nodes: int
) -> np.ndarray:
    """``(N,)`` per-node power caps from a dict or a ready array.

    Cold path: callers cache the result per model — the caps never
    change mid-run.
    """
    if isinstance(max_power_w, np.ndarray):
        return max_power_w
    return np.fromiter(
        (max_power_w[k] for k in range(num_nodes)), dtype=float, count=num_nodes
    )


def big_m_coefficient(
    gains: np.ndarray,
    tx: NodeId,
    rx: NodeId,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    max_power_w: Union[Dict[NodeId, Watts], np.ndarray],
) -> Watts:
    """The constant ``M_ij^m`` of Eq. (24).

    Set to the worst-case right-hand side — every other node
    transmitting at its maximum power — so that a de-scheduled link
    (``a_ij^m = 0``) imposes no restriction.  The interference sum runs
    as one vectorized pass over the gain column; :func:`seq_sum` keeps
    the accumulation order of the historical per-node loop, so the
    constant is bit-identical.
    """
    num_nodes = gains.shape[0]
    power = max_power_array(max_power_w, num_nodes)
    contributions = np.asarray(gains)[:, rx] * power
    mask = np.ones(num_nodes, dtype=bool)
    mask[tx] = False
    mask[rx] = False
    worst_interference = _seq_sum(contributions[mask])
    return sinr_threshold * (noise_power_w + worst_interference)

"""Physical-model feasibility helpers and the big-M constant of Eq. (24).

These are the ingredients of the paper's linearised SINR constraint:

    g_ij P_ij^m a_ij^m + M_ij^m (1 - a_ij^m)
        >= Gamma (eta_j W_m + sum_{k!=i} g_kj P_kv^m a_kv^m),

with ``M_ij^m = Gamma (eta_j W_m + sum_{k!=i} g_kj P_max^k)`` chosen so
the constraint is vacuous when the link is not scheduled.

The sparse-mask helpers at the bottom bound *which* transmitters can
meaningfully interfere at all: inverting the path-loss law against a
relative noise floor gives an interference radius, and bucketing nodes
through :class:`~repro.network.geometry.UniformGridIndex` turns the
all-pairs interference graph into a scipy.sparse mask over nodes (and,
lifted through the frozen link index, over links).  The masks are
structural pruning aids for scale-out (sharding, ROADMAP item 2) and
analysis — the bit-exact control path never drops an interferer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Union

import numpy as np

if TYPE_CHECKING:
    from scipy.sparse import csr_matrix

from repro.network.geometry import UniformGridIndex
from repro.phy.propagation import (
    MIN_DISTANCE_M,
    ComputedPairGains,
    DensePairGains,
)
from repro.types import NodeId
from repro.units import Linear, Meters, Watts

GainsLike = Union[np.ndarray, DensePairGains, ComputedPairGains]


def _seq_sum(values: np.ndarray) -> float:
    """Strict left-to-right sum, matching Python's builtin ``sum``.

    Local copy of :func:`repro.core.arraystate.seq_sum` — ``phy`` is a
    leaf package imported during ``core``'s own initialisation, so it
    cannot import from ``core`` without a cycle.
    """
    flat = np.ravel(values)
    if flat.size == 0:
        return 0.0
    return float(np.add.accumulate(flat)[-1])


def zero_interference_feasible(
    gain: Linear,
    max_power_w: Watts,
    noise_power_w: Watts,
    sinr_threshold: Linear,
) -> bool:
    """True if a link clears ``Gamma`` at max power with no interference.

    This is the necessary condition for a link ever being schedulable;
    the topology builder uses it for candidate-link pruning.
    """
    if noise_power_w <= 0:
        raise ValueError(f"noise power must be positive, got {noise_power_w}")
    return gain * max_power_w >= sinr_threshold * noise_power_w


def max_power_array(
    max_power_w: Union[Dict[NodeId, Watts], np.ndarray], num_nodes: int
) -> np.ndarray:
    """``(N,)`` per-node power caps from a dict or a ready array.

    Cold path: callers cache the result per model — the caps never
    change mid-run.
    """
    if isinstance(max_power_w, np.ndarray):
        return max_power_w
    return np.fromiter(
        (max_power_w[k] for k in range(num_nodes)), dtype=float, count=num_nodes
    )


def big_m_coefficient(
    gains: GainsLike,
    tx: NodeId,
    rx: NodeId,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    max_power_w: Union[Dict[NodeId, Watts], np.ndarray],
) -> Watts:
    """The constant ``M_ij^m`` of Eq. (24).

    Set to the worst-case right-hand side — every other node
    transmitting at its maximum power — so that a de-scheduled link
    (``a_ij^m = 0``) imposes no restriction.  The interference sum runs
    as one vectorized pass over the gain column; :func:`seq_sum` keeps
    the accumulation order of the historical per-node loop, so the
    constant is bit-identical.  ``gains`` may be the dense matrix or a
    pair-gain view (whose ``column`` returns the identical floats).
    """
    if isinstance(gains, np.ndarray):
        column = np.asarray(gains)[:, rx]
    else:
        column = gains.column(rx)
    num_nodes = column.shape[0]
    power = max_power_array(max_power_w, num_nodes)
    contributions = column * power
    mask = np.ones(num_nodes, dtype=bool)
    mask[tx] = False
    mask[rx] = False
    worst_interference = _seq_sum(contributions[mask])
    return sinr_threshold * (noise_power_w + worst_interference)


def interference_range_m(
    max_power_w: Watts,
    noise_power_w: Watts,
    propagation_constant: float,
    path_loss_exponent: float,
    relative_floor: float = 1e-2,
) -> Meters:
    """Distance beyond which a max-power transmitter is negligible.

    Inverts the clamped path-loss law against ``relative_floor`` times
    the thermal-noise power: past ``d* = (C P_max / (floor * eta W))
    ^(1/gamma)`` a transmitter's worst-case received interference is
    below that fraction of the noise floor.  With ``relative_floor = 1``
    this is exactly the communication (candidate-link) radius; the
    default 1e-2 keeps interferers contributing >= 1% of noise.
    """
    if noise_power_w <= 0:
        raise ValueError(f"noise power must be positive, got {noise_power_w}")
    if relative_floor <= 0:
        raise ValueError(f"relative_floor must be positive, got {relative_floor}")
    target = relative_floor * noise_power_w
    peak_gain = propagation_constant * MIN_DISTANCE_M**-path_loss_exponent
    if peak_gain * max_power_w < target:
        return 0.0
    radius = (propagation_constant * max_power_w / target) ** (
        1.0 / path_loss_exponent
    )
    return max(radius, MIN_DISTANCE_M)


def potential_interferer_matrix(
    positions: np.ndarray,
    radius_m: Meters,
    grid: Union[UniformGridIndex, None] = None,
) -> "csr_matrix":
    """Sparse ``(N, N)`` bool mask: ``[i, j]`` iff ``d(i, j) <= radius``.

    Row ``i`` marks the receivers node ``i`` can meaningfully disturb
    (and, symmetrically, the transmitters that can disturb node ``i``).
    Built per grid bucket, so construction is O(N * density * r^2)
    rather than all-pairs; the diagonal is excluded.
    """
    from scipy import sparse

    pos = np.asarray(positions, dtype=float)
    num_nodes = pos.shape[0]
    if grid is None:
        grid = UniformGridIndex(pos, cell_size_m=max(radius_m, MIN_DISTANCE_M))
    rows = []
    cols = []
    for row, col, members in grid.nonempty_cells():
        candidates = grid.block_members(row, col, reach=1)
        diffs = pos[members][:, None, :] - pos[candidates][None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=2))
        near = (dist <= radius_m) & (candidates[None, :] != members[:, None])
        pair_rows, pair_cols = np.nonzero(near)
        rows.append(members[pair_rows])
        cols.append(candidates[pair_cols])
    row_idx = np.concatenate(rows) if rows else np.zeros(0, dtype=np.intp)
    col_idx = np.concatenate(cols) if cols else np.zeros(0, dtype=np.intp)
    return sparse.csr_matrix(
        (np.ones(row_idx.shape[0], dtype=bool), (row_idx, col_idx)),
        shape=(num_nodes, num_nodes),
    )


def link_interference_mask(
    node_mask: "csr_matrix",
    link_tx: np.ndarray,
    link_rx: np.ndarray,
) -> "csr_matrix":
    """Lift a node interference mask to the frozen link index.

    Returns a sparse ``(L, L)`` bool mask where ``[l, k]`` is True when
    link ``k``'s transmitter can disturb link ``l``'s receiver (the
    co-band coupling structure of Eq. 24).  Intended for moderate L or
    sharded sub-problems — at city-scale L the per-shard submasks are
    the usable form.
    """
    sub = node_mask[np.asarray(link_tx)][:, np.asarray(link_rx)]
    return sub.T.tocsr()

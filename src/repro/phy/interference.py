"""Physical-model feasibility helpers and the big-M constant of Eq. (24).

These are the ingredients of the paper's linearised SINR constraint:

    g_ij P_ij^m a_ij^m + M_ij^m (1 - a_ij^m)
        >= Gamma (eta_j W_m + sum_{k!=i} g_kj P_kv^m a_kv^m),

with ``M_ij^m = Gamma (eta_j W_m + sum_{k!=i} g_kj P_max^k)`` chosen so
the constraint is vacuous when the link is not scheduled.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.types import NodeId
from repro.units import Linear, Watts


def zero_interference_feasible(
    gain: Linear,
    max_power_w: Watts,
    noise_power_w: Watts,
    sinr_threshold: Linear,
) -> bool:
    """True if a link clears ``Gamma`` at max power with no interference.

    This is the necessary condition for a link ever being schedulable;
    the topology builder uses it for candidate-link pruning.
    """
    if noise_power_w <= 0:
        raise ValueError(f"noise power must be positive, got {noise_power_w}")
    return gain * max_power_w >= sinr_threshold * noise_power_w


def big_m_coefficient(
    gains: np.ndarray,
    tx: NodeId,
    rx: NodeId,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    max_power_w: Dict[NodeId, Watts],
) -> Watts:
    """The constant ``M_ij^m`` of Eq. (24).

    Set to the worst-case right-hand side — every other node
    transmitting at its maximum power — so that a de-scheduled link
    (``a_ij^m = 0``) imposes no restriction.
    """
    num_nodes = gains.shape[0]
    worst_interference = sum(  # noqa: R041 - dense all-pairs construction pending sub-quadratic topology (ROADMAP item 2)
        gains[k, rx] * max_power_w[k]
        for k in range(num_nodes)  # noqa: R040 - per-item Python loop pending batched S1/S4 kernels (ROADMAP item 1)
        if k != tx and k != rx
    )
    return sinr_threshold * (noise_power_w + worst_interference)

"""SINR computation under the physical interference model.

``SINR_ij^m(t) = g_ij P_ij^m / (eta_j W_m(t) + sum_k g_kj P_kv^m)``
where the sum runs over all *other* transmitters active on band ``m``
in the same slot (Section II-B of the paper).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.types import NodeId, Transmission
from repro.units import Db, Linear, Watts, linear_to_db


def total_interference(
    gains: np.ndarray,
    receiver: NodeId,
    interferers: Iterable[Tuple[NodeId, Watts]],
) -> Watts:
    """Aggregate interference power at ``receiver``.

    Args:
        gains: ``(N, N)`` gain matrix.
        receiver: the receiving node.
        interferers: ``(tx_node, tx_power_w)`` pairs of concurrent
            transmissions on the same band, excluding the intended one.

    Returns:
        Total received interference power (W).
    """
    return float(
        sum(gains[tx, receiver] * power for tx, power in interferers)
    )


def sinr(
    gains: np.ndarray,
    tx: NodeId,
    rx: NodeId,
    tx_power_w: Watts,
    noise_power_w: Watts,
    interference_w: Watts = 0.0,
) -> Linear:
    """SINR of one link given noise and aggregate interference.

    Args:
        gains: ``(N, N)`` gain matrix.
        tx: transmitter id.
        rx: receiver id.
        tx_power_w: transmit power (W).
        noise_power_w: ``eta_j * W_m(t)`` thermal-noise power (W).
        interference_w: aggregate interference power (W).

    Returns:
        The (dimensionless) signal-to-interference-plus-noise ratio.
    """
    if noise_power_w <= 0:
        raise ValueError(f"noise power must be positive, got {noise_power_w}")
    if tx_power_w < 0:
        raise ValueError(f"transmit power must be non-negative, got {tx_power_w}")
    return gains[tx, rx] * tx_power_w / (noise_power_w + interference_w)


def sinr_of_transmission(
    gains: np.ndarray,
    target: Transmission,
    concurrent: Iterable[Transmission],
    noise_power_w: Watts,
) -> Linear:
    """SINR of ``target`` among ``concurrent`` same-band transmissions.

    Transmissions in ``concurrent`` on other bands or equal to
    ``target`` are ignored, so callers may pass the full schedule.
    """
    interferers = [
        (t.tx, t.power_w)
        for t in concurrent
        if t.band == target.band and t.link != target.link
    ]
    return sinr(
        gains,
        target.tx,
        target.rx,
        target.power_w,
        noise_power_w,
        total_interference(gains, target.rx, interferers),
    )


def sinr_db(
    gains: np.ndarray,
    tx: NodeId,
    rx: NodeId,
    tx_power_w: Watts,
    noise_power_w: Watts,
    interference_w: Watts = 0.0,
) -> Db:
    """:func:`sinr` on the logarithmic dB scale.

    The library computes SINR in linear terms throughout (the paper's
    threshold ``Gamma = 1`` is 0 dB); this helper is the sanctioned
    crossing for reporting and for configs stated in dB.  Mixing the
    two scales any other way is flagged by analysis rule R011.
    """
    ratio: Linear = sinr(gains, tx, rx, tx_power_w, noise_power_w, interference_w)
    return linear_to_db(ratio)

"""Minimal-power assignment for a co-band link set (Foschini–Miljanic).

The paper's S1 schedules links and leaves the transmit powers
``P_ij^m`` to the physical-model constraint (24).  Given the set of
links scheduled on one band, the classical minimum solution that makes
every SINR exactly ``Gamma`` solves the linear system

    (I - Gamma * F) p = Gamma * u,

where ``F[l, k] = g(tx_k, rx_l) / g(tx_l, rx_l)`` for ``k != l`` and
``u[l] = eta * W / g(tx_l, rx_l)``.  The system has a positive solution
iff the spectral radius of ``Gamma * F`` is below one; links whose
required power exceeds their cap (or that make the set infeasible) are
dropped in increasing priority order, reproducing Eq. (1)'s
"otherwise -> capacity 0" branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.axes import LinkToNode, LinkVec
from repro.phy.propagation import ComputedPairGains, DensePairGains
from repro.types import Link, NodeId
from repro.units import Linear, Watts

#: Gain inputs accepted by the solvers: the dense ``(N, N)`` matrix or
#: a pair-gain view over node positions (scalar ``g[tx, rx]`` indexing
#: and ``submatrix`` blocks are bit-identical either way).
GainsLike = Union[np.ndarray, DensePairGains, ComputedPairGains]


@dataclass
class PowerControlResult:
    """Outcome of minimal-power assignment on one band.

    Attributes:
        powers: transmit power (W) per surviving link.
        dropped: links removed because no feasible power exists.
    """

    powers: Dict[Link, Watts] = field(default_factory=dict)
    dropped: List[Link] = field(default_factory=list)

    @property
    def scheduled(self) -> Tuple[Link, ...]:
        """Links that survived with a feasible power."""
        return tuple(self.powers)


def _solve_min_powers(
    links: Sequence[Link],
    gains: GainsLike,
    noise_power_w: Watts,
    sinr_threshold: Linear,
) -> np.ndarray:
    """Exact minimal powers for ``links``; +inf rows mark infeasibility."""
    n = len(links)
    direct = np.array([gains[tx, rx] for tx, rx in links])  # noqa: R040 - reference object path; minimal_power_assignment_vec builds direct/cross with fancy indexing
    cross = np.zeros((n, n))
    for l, (_, rx_l) in enumerate(links):  # noqa: R040 - reference object path; see minimal_power_assignment_vec
        for k, (tx_k, _) in enumerate(links):  # noqa: R040 - reference object path; see minimal_power_assignment_vec
            if k != l:
                cross[l, k] = gains[tx_k, rx_l]
    coupling = sinr_threshold * cross / direct[:, None]
    noise_term = sinr_threshold * noise_power_w / direct

    system = np.eye(n) - coupling
    try:
        powers = np.linalg.solve(system, noise_term)
    except np.linalg.LinAlgError:
        return np.full(n, np.inf)
    if np.any(powers <= 0) or not np.all(np.isfinite(powers)):
        # Spectral radius >= 1: the target SINRs are jointly unachievable.
        return np.full(n, np.inf)
    return powers


def minimal_power_assignment_vec(
    link_tx: LinkToNode,
    link_rx: LinkToNode,
    gains: GainsLike,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    caps: LinkVec,
    priorities: LinkVec,
) -> Tuple[np.ndarray, LinkVec, List[int]]:
    """Vectorized :func:`minimal_power_assignment` over index arrays.

    The direct and cross gain matrices are built once with fancy
    indexing (``cross[l, k] = gains[tx_k, rx_l]``) instead of the
    per-pair Python loops, and each drop iteration re-solves on an
    ``np.ix_`` submatrix of the same values — so every
    ``np.linalg.solve`` sees bit-identical inputs and the surviving
    powers, drop order, and tie-breaks match the scalar routine
    exactly (worst offender = first index of the lexicographic maximum
    of ``(over, -priority)``; joint infeasibility falls back to the
    first index of minimal priority).

    Args:
        link_tx / link_rx: ``(n,)`` endpoint indices of the co-band set.
        gains: the ``(N, N)`` gain matrix, or a pair-gain view
            (:class:`~repro.phy.propagation.ComputedPairGains` /
            :class:`~repro.phy.propagation.DensePairGains`) when the
            topology skips the dense matrix — the view's ``submatrix``
            returns the identical float64 values, so both inputs yield
            bit-identical solves.
        caps: ``(n,)`` per-link transmit power caps (W).
        priorities: ``(n,)`` keep-priorities (higher survives longer).

    Returns:
        ``(kept, powers, dropped)``: positions into the input arrays of
        surviving links (input order), their minimal powers, and the
        dropped positions in drop order.
    """
    n = int(link_tx.shape[0])
    if isinstance(gains, np.ndarray):
        direct = gains[link_tx, link_rx]
        cross = gains[link_tx[:, None], link_rx[None, :]].T.copy()
    else:
        block = gains.submatrix(link_tx, link_rx)  # [k, l] = g(tx_k, rx_l)
        direct = block.diagonal().copy()
        cross = block.T.copy()
    np.fill_diagonal(cross, 0.0)
    # Hoisted out of the drop loop: the coupling ratios and noise terms
    # are row-local, so the surviving submatrix is a pure fancy-index
    # of the full-set values — the same float64 chain
    # ``(Gamma * cross[l, k]) / direct[l]`` either way.
    full_coupling = sinr_threshold * cross / direct[:, None]
    full_noise = sinr_threshold * noise_power_w / direct
    sel = np.arange(n)
    dropped: List[int] = []
    eye = np.eye(n)
    infeasible = np.full(n, np.inf)
    while sel.size:
        coupling = full_coupling[sel[:, None], sel[None, :]]
        noise_term = full_noise[sel]
        system = eye[: sel.size, : sel.size] - coupling
        try:
            powers = np.linalg.solve(system, noise_term)
            if np.any(powers <= 0) or not np.all(np.isfinite(powers)):
                powers = infeasible[: sel.size]
        except np.linalg.LinAlgError:
            powers = infeasible[: sel.size]
        over = powers / caps[sel]
        if np.all(over <= 1.0 + 1e-12):
            return sel, powers, dropped
        peak = over.max()
        ties = np.flatnonzero(over == peak)
        if ties.size == 1:
            worst = int(ties[0])
        else:
            worst = int(ties[np.argmin(priorities[sel[ties]])])
        if np.isinf(over[worst]):
            worst = int(np.argmin(priorities[sel]))
        dropped.append(int(sel[worst]))
        sel = np.delete(sel, worst)
    return sel, np.zeros(0), dropped


def minimal_power_assignment(
    links: Sequence[Link],
    gains: GainsLike,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    max_power_w: Dict[NodeId, Watts],
    priority: Dict[Link, float] | None = None,
) -> PowerControlResult:
    """Assign minimal feasible powers, dropping links as needed.

    Args:
        links: co-band links to power-control.
        gains: ``(N, N)`` gain matrix.
        noise_power_w: thermal-noise power ``eta * W_m(t)`` (W).
        sinr_threshold: target SINR ``Gamma``.
        max_power_w: per-transmitter power cap.
        priority: higher-priority links are kept longer when dropping;
            defaults to equal priority (then the most over-cap link is
            dropped first).

    Returns:
        :class:`PowerControlResult` with exact minimal powers for the
        surviving set and the list of dropped links.
    """
    active = list(links)
    result = PowerControlResult()
    priorities = priority or {}

    while active:
        powers = _solve_min_powers(active, gains, noise_power_w, sinr_threshold)
        caps = np.array([max_power_w[tx] for tx, _ in active])  # noqa: R042 - reference object path; the vectorized routine hoists its loop buffers
        over = powers / caps  # > 1 means the cap is violated (inf if infeasible)
        if np.all(over <= 1.0 + 1e-12):
            for link, power in zip(active, powers):
                result.powers[link] = float(power)
            return result
        # Drop the worst offender, breaking ties toward lowest priority.
        worst = max(
            range(len(active)),
            key=lambda l: (over[l], -priorities.get(active[l], 0.0)),
        )
        if np.isinf(over[worst]):
            # Joint infeasibility: every row is inf, so use priority alone.
            worst = min(
                range(len(active)),
                key=lambda l: priorities.get(active[l], 0.0),
            )
        result.dropped.append(active.pop(worst))

    return result

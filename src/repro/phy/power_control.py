"""Minimal-power assignment for a co-band link set (Foschini–Miljanic).

The paper's S1 schedules links and leaves the transmit powers
``P_ij^m`` to the physical-model constraint (24).  Given the set of
links scheduled on one band, the classical minimum solution that makes
every SINR exactly ``Gamma`` solves the linear system

    (I - Gamma * F) p = Gamma * u,

where ``F[l, k] = g(tx_k, rx_l) / g(tx_l, rx_l)`` for ``k != l`` and
``u[l] = eta * W / g(tx_l, rx_l)``.  The system has a positive solution
iff the spectral radius of ``Gamma * F`` is below one; links whose
required power exceeds their cap (or that make the set infeasible) are
dropped in increasing priority order, reproducing Eq. (1)'s
"otherwise -> capacity 0" branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.types import Link, NodeId
from repro.units import Linear, Watts


@dataclass
class PowerControlResult:
    """Outcome of minimal-power assignment on one band.

    Attributes:
        powers: transmit power (W) per surviving link.
        dropped: links removed because no feasible power exists.
    """

    powers: Dict[Link, Watts] = field(default_factory=dict)
    dropped: List[Link] = field(default_factory=list)

    @property
    def scheduled(self) -> Tuple[Link, ...]:
        """Links that survived with a feasible power."""
        return tuple(self.powers)


def _solve_min_powers(
    links: Sequence[Link],
    gains: np.ndarray,
    noise_power_w: Watts,
    sinr_threshold: Linear,
) -> np.ndarray:
    """Exact minimal powers for ``links``; +inf rows mark infeasibility."""
    n = len(links)
    direct = np.array([gains[tx, rx] for tx, rx in links])  # noqa: R040 - per-item Python loop pending batched S1/S4 kernels (ROADMAP item 1)
    cross = np.zeros((n, n))
    for l, (_, rx_l) in enumerate(links):  # noqa: R040 - per-item Python loop pending batched S1/S4 kernels (ROADMAP item 1)
        for k, (tx_k, _) in enumerate(links):  # noqa: R040 - per-item Python loop pending batched S1/S4 kernels (ROADMAP item 1)
            if k != l:
                cross[l, k] = gains[tx_k, rx_l]
    coupling = sinr_threshold * cross / direct[:, None]
    noise_term = sinr_threshold * noise_power_w / direct

    system = np.eye(n) - coupling
    try:
        powers = np.linalg.solve(system, noise_term)
    except np.linalg.LinAlgError:
        return np.full(n, np.inf)
    if np.any(powers <= 0) or not np.all(np.isfinite(powers)):
        # Spectral radius >= 1: the target SINRs are jointly unachievable.
        return np.full(n, np.inf)
    return powers


def minimal_power_assignment(
    links: Sequence[Link],
    gains: np.ndarray,
    noise_power_w: Watts,
    sinr_threshold: Linear,
    max_power_w: Dict[NodeId, Watts],
    priority: Dict[Link, float] | None = None,
) -> PowerControlResult:
    """Assign minimal feasible powers, dropping links as needed.

    Args:
        links: co-band links to power-control.
        gains: ``(N, N)`` gain matrix.
        noise_power_w: thermal-noise power ``eta * W_m(t)`` (W).
        sinr_threshold: target SINR ``Gamma``.
        max_power_w: per-transmitter power cap.
        priority: higher-priority links are kept longer when dropping;
            defaults to equal priority (then the most over-cap link is
            dropped first).

    Returns:
        :class:`PowerControlResult` with exact minimal powers for the
        surviving set and the list of dropped links.
    """
    active = list(links)
    result = PowerControlResult()
    priorities = priority or {}

    while active:
        powers = _solve_min_powers(active, gains, noise_power_w, sinr_threshold)
        caps = np.array([max_power_w[tx] for tx, _ in active])  # noqa: R042 - per-iteration allocation pending batched kernels (ROADMAP item 1)
        over = powers / caps  # > 1 means the cap is violated (inf if infeasible)
        if np.all(over <= 1.0 + 1e-12):
            for link, power in zip(active, powers):
                result.powers[link] = float(power)
            return result
        # Drop the worst offender, breaking ties toward lowest priority.
        worst = max(
            range(len(active)),
            key=lambda l: (over[l], -priorities.get(active[l], 0.0)),
        )
        if np.isinf(over[worst]):
            # Joint infeasibility: every row is inf, so use priority alone.
            worst = min(
                range(len(active)),
                key=lambda l: priorities.get(active[l], 0.0),
            )
        result.dropped.append(active.pop(worst))

    return result

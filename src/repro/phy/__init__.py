"""PHY substrate: propagation, SINR, capacity, power control."""

from repro.phy.propagation import gain_matrix, propagation_gain
from repro.phy.sinr import sinr, total_interference
from repro.phy.capacity import link_capacity_bps, max_link_capacity_bps
from repro.phy.power_control import (
    PowerControlResult,
    minimal_power_assignment,
    minimal_power_assignment_vec,
)
from repro.phy.interference import (
    big_m_coefficient,
    interference_range_m,
    link_interference_mask,
    potential_interferer_matrix,
    zero_interference_feasible,
)

__all__ = [
    "gain_matrix",
    "propagation_gain",
    "sinr",
    "total_interference",
    "link_capacity_bps",
    "max_link_capacity_bps",
    "PowerControlResult",
    "minimal_power_assignment",
    "minimal_power_assignment_vec",
    "big_m_coefficient",
    "interference_range_m",
    "link_interference_mask",
    "potential_interferer_matrix",
    "zero_interference_feasible",
]

"""Link capacity per Eq. (1) of the paper.

Under the physical model a transmission either clears the SINR
threshold ``Gamma`` — in which case it runs at the fixed spectral
efficiency ``log2(1 + Gamma)`` — or it fails and carries nothing.
"""

from __future__ import annotations

import math

from repro.units import BitsPerSecond, Hertz, Linear


def link_capacity_bps(
    bandwidth_hz: Hertz, sinr_value: Linear, sinr_threshold: Linear
) -> BitsPerSecond:
    """Capacity of a link in bits/second per Eq. (1).

    Args:
        bandwidth_hz: the band's bandwidth ``W_m(t)``.
        sinr_value: achieved SINR of the transmission.
        sinr_threshold: decoding threshold ``Gamma``.

    Returns:
        ``W_m(t) * log2(1 + Gamma)`` if ``sinr_value >= Gamma`` else 0.
    """
    if bandwidth_hz < 0:
        raise ValueError(f"bandwidth must be non-negative, got {bandwidth_hz}")
    if sinr_threshold <= 0:
        raise ValueError(f"SINR threshold must be positive, got {sinr_threshold}")
    if sinr_value >= sinr_threshold:
        return bandwidth_hz * math.log2(1.0 + sinr_threshold)
    return 0.0


def max_link_capacity_bps(bandwidth_hz: Hertz, sinr_threshold: Linear) -> BitsPerSecond:
    """The capacity a link attains *when scheduled successfully*.

    This is the coefficient the S1/S3 subproblems use before power
    control has confirmed the SINR: under Eq. (1) a successful link on
    band ``m`` always carries ``W_m(t) * log2(1 + Gamma)``.
    """
    if bandwidth_hz < 0:
        raise ValueError(f"bandwidth must be non-negative, got {bandwidth_hz}")
    if sinr_threshold <= 0:
        raise ValueError(f"SINR threshold must be positive, got {sinr_threshold}")
    return bandwidth_hz * math.log2(1.0 + sinr_threshold)

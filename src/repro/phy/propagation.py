"""Power propagation gain model: ``g_ij = C * d(i, j)^-gamma``.

This is the widely used distance-based path-loss model the paper adopts
(Section II-B).  Distances below ``MIN_DISTANCE_M`` are clamped so the
far-field model is never evaluated in its singular near-field region.
"""

from __future__ import annotations

import numpy as np

from repro.units import Linear, Meters

#: Distances are clamped to this floor (metres) before applying the
#: far-field path-loss law; ``d^-gamma`` diverges as d -> 0.
MIN_DISTANCE_M: float = 1.0


def propagation_gain(distance_m: Meters, constant: float, exponent: float) -> Linear:
    """Gain between two nodes separated by ``distance_m`` metres.

    Args:
        distance_m: Euclidean distance (m); clamped to ``MIN_DISTANCE_M``.
        constant: the antenna/wavelength constant ``C``.
        exponent: path-loss exponent ``gamma``.

    Returns:
        The dimensionless power gain ``C * d^-gamma``.
    """
    if constant <= 0:
        raise ValueError(f"propagation constant must be positive, got {constant}")
    if exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {exponent}")
    clamped = max(distance_m, MIN_DISTANCE_M)
    return constant * clamped**-exponent


def gain_matrix(
    distances_m: np.ndarray, constant: float, exponent: float
) -> np.ndarray:
    """Vectorised :func:`propagation_gain` over a distance matrix.

    The diagonal (self-distance 0) is clamped like every other entry;
    callers never use self-gains, but keeping them finite avoids NaN
    propagation in vectorised interference sums.
    """
    if constant <= 0:
        raise ValueError(f"propagation constant must be positive, got {constant}")
    if exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {exponent}")
    clamped = np.maximum(np.asarray(distances_m, dtype=float), MIN_DISTANCE_M)
    return constant * clamped**-exponent


class DensePairGains:
    """Pair-gain view backed by a materialised ``(N, N)`` gain matrix.

    The uniform pair-gain interface lets power control, the SINR
    checker and the big-M construction index gains the same way whether
    the topology carries the dense matrix or only node positions.
    Every method is a pure fancy-index of the matrix, so values are the
    matrix entries themselves.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = np.asarray(matrix)

    @property
    def num_nodes(self) -> int:
        """Node count ``N``."""
        return self._matrix.shape[0]

    def __getitem__(self, key) -> float:
        tx, rx = key
        return float(self._matrix[tx, rx])

    def pairs(self, tx: np.ndarray, rx: np.ndarray) -> np.ndarray:
        """``(k,)`` gains of the paired endpoints ``(tx[i], rx[i])``."""
        return self._matrix[tx, rx]

    def submatrix(self, tx: np.ndarray, rx: np.ndarray) -> np.ndarray:
        """``(len(tx), len(rx))`` block with ``[k, l] = g(tx[k], rx[l])``."""
        return self._matrix[np.asarray(tx)[:, None], np.asarray(rx)[None, :]]

    def column(self, rx: int) -> np.ndarray:
        """``(N,)`` gains into receiver ``rx`` (``g[:, rx]``)."""
        return self._matrix[:, rx]


class ComputedPairGains:
    """Pair-gain view computed on demand from node positions.

    Used when the topology skips the O(N^2) matrices (sparse mode, or
    auto mode above the dense-materialisation cutoff).  Each query
    applies the *identical* elementwise float64 chain as the dense
    construction — ``d = sqrt((dx^2 + dy^2))`` then
    :func:`gain_matrix` — so every returned value is bit-identical to
    the corresponding dense matrix entry.
    """

    __slots__ = ("_pos", "_constant", "_exponent")

    def __init__(
        self, positions: np.ndarray, constant: float, exponent: float
    ) -> None:
        self._pos = np.asarray(positions, dtype=float)
        self._constant = constant
        self._exponent = exponent

    @property
    def num_nodes(self) -> int:
        """Node count ``N``."""
        return self._pos.shape[0]

    def __getitem__(self, key) -> float:
        tx, rx = key
        return float(self.pairs(np.asarray([tx]), np.asarray([rx]))[0])

    def pairs(self, tx: np.ndarray, rx: np.ndarray) -> np.ndarray:
        """``(k,)`` gains of the paired endpoints ``(tx[i], rx[i])``."""
        diffs = self._pos[tx] - self._pos[rx]
        dist = np.sqrt((diffs**2).sum(axis=-1))
        return gain_matrix(dist, self._constant, self._exponent)

    def submatrix(self, tx: np.ndarray, rx: np.ndarray) -> np.ndarray:
        """``(len(tx), len(rx))`` block with ``[k, l] = g(tx[k], rx[l])``."""
        diffs = (
            self._pos[np.asarray(tx)][:, None, :]
            - self._pos[np.asarray(rx)][None, :, :]
        )
        dist = np.sqrt((diffs**2).sum(axis=2))
        return gain_matrix(dist, self._constant, self._exponent)

    def column(self, rx: int) -> np.ndarray:
        """``(N,)`` gains into receiver ``rx`` (``g[:, rx]``)."""
        diffs = self._pos - self._pos[rx]
        dist = np.sqrt((diffs**2).sum(axis=1))
        return gain_matrix(dist, self._constant, self._exponent)

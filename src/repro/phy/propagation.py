"""Power propagation gain model: ``g_ij = C * d(i, j)^-gamma``.

This is the widely used distance-based path-loss model the paper adopts
(Section II-B).  Distances below ``MIN_DISTANCE_M`` are clamped so the
far-field model is never evaluated in its singular near-field region.
"""

from __future__ import annotations

import numpy as np

from repro.units import Linear, Meters

#: Distances are clamped to this floor (metres) before applying the
#: far-field path-loss law; ``d^-gamma`` diverges as d -> 0.
MIN_DISTANCE_M: float = 1.0


def propagation_gain(distance_m: Meters, constant: float, exponent: float) -> Linear:
    """Gain between two nodes separated by ``distance_m`` metres.

    Args:
        distance_m: Euclidean distance (m); clamped to ``MIN_DISTANCE_M``.
        constant: the antenna/wavelength constant ``C``.
        exponent: path-loss exponent ``gamma``.

    Returns:
        The dimensionless power gain ``C * d^-gamma``.
    """
    if constant <= 0:
        raise ValueError(f"propagation constant must be positive, got {constant}")
    if exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {exponent}")
    clamped = max(distance_m, MIN_DISTANCE_M)
    return constant * clamped**-exponent


def gain_matrix(
    distances_m: np.ndarray, constant: float, exponent: float
) -> np.ndarray:
    """Vectorised :func:`propagation_gain` over a distance matrix.

    The diagonal (self-distance 0) is clamped like every other entry;
    callers never use self-gains, but keeping them finite avoids NaN
    propagation in vectorised interference sums.
    """
    if constant <= 0:
        raise ValueError(f"propagation constant must be positive, got {constant}")
    if exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {exponent}")
    clamped = np.maximum(np.asarray(distances_m, dtype=float), MIN_DISTANCE_M)
    return constant * clamped**-exponent

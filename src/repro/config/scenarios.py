"""Scenario factories.

``paper_scenario`` reproduces the Section-VI setup of the paper;
``small_scenario`` and ``tiny_scenario`` are reduced-scale variants for
tests and benchmarks (same structure, fewer nodes/slots).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config.parameters import ScenarioParameters, SessionParameters
from repro.types import DestinationStrategy, Point


def paper_scenario(
    control_v: float = 1e5,
    num_slots: int = 100,
    seed: int = 2014,
    **overrides: object,
) -> ScenarioParameters:
    """The evaluation scenario of Section VI.

    2000 m x 2000 m area, base stations at (500, 500) and (1500, 500),
    20 uniformly random users, 1 cellular + 4 random bands, 100 Kbps
    sessions, one-minute slots, T = 100.

    Args:
        control_v: the Lyapunov weight ``V``.
        num_slots: horizon ``T`` in slots.
        seed: RNG seed for placement and all stochastic processes.
        **overrides: any further ``ScenarioParameters`` field overrides.
    """
    params = ScenarioParameters(
        control_v=control_v, num_slots=num_slots, seed=seed
    )
    if overrides:
        params = dataclasses.replace(params, **overrides)  # type: ignore[arg-type]
    return params


def small_scenario(
    control_v: float = 1e5,
    num_slots: int = 30,
    num_users: int = 8,
    seed: int = 7,
    **overrides: object,
) -> ScenarioParameters:
    """A reduced scenario for benchmarks: 2 BSs, 8 users, 30 slots."""
    params = ScenarioParameters(
        control_v=control_v,
        num_slots=num_slots,
        num_users=num_users,
        seed=seed,
        sessions=SessionParameters(num_sessions=3),
        neighbor_limit=4,
    )
    if overrides:
        params = dataclasses.replace(params, **overrides)  # type: ignore[arg-type]
    return params


def tiny_scenario(
    control_v: float = 1e4,
    num_slots: int = 10,
    seed: int = 3,
    num_users: int = 4,
    num_sessions: int = 2,
    area_side_m: float = 1000.0,
    neighbor_limit: Optional[int] = 3,
    **overrides: object,
) -> ScenarioParameters:
    """A minimal scenario for unit tests: 1 BS, 4 users, 10 slots."""
    params = ScenarioParameters(
        control_v=control_v,
        num_slots=num_slots,
        num_users=num_users,
        seed=seed,
        area_side_m=area_side_m,
        base_station_positions=(Point(area_side_m / 2, area_side_m / 2),),
        sessions=SessionParameters(num_sessions=num_sessions),
        neighbor_limit=neighbor_limit,
    )
    if overrides:
        params = dataclasses.replace(params, **overrides)  # type: ignore[arg-type]
    return params


def cell_edge_scenario(
    control_v: float = 1e5,
    num_slots: int = 100,
    seed: int = 2014,
    **overrides: object,
) -> ScenarioParameters:
    """The paper scenario with every session terminating at the cell edge.

    Destinations are the users farthest from every base station, which
    is the regime where multi-hop relaying saves the most transmit
    energy over direct one-hop service — the stress case behind the
    paper's Fig. 2(f) claim.
    """
    base = paper_scenario(control_v=control_v, num_slots=num_slots, seed=seed)
    sessions = dataclasses.replace(
        base.sessions, destination_strategy=DestinationStrategy.CELL_EDGE
    )
    params = dataclasses.replace(base, sessions=sessions)
    if overrides:
        params = dataclasses.replace(params, **overrides)  # type: ignore[arg-type]
    return params

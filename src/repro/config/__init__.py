"""Scenario configuration: parameter dataclasses, factories, validation."""

from repro.config.parameters import (
    EnergyParameters,
    NodeParameters,
    ScenarioParameters,
    SessionParameters,
    SpectrumParameters,
)
from repro.config.scenarios import (
    cell_edge_scenario,
    paper_scenario,
    small_scenario,
    tiny_scenario,
)
from repro.config.validation import validate_parameters

__all__ = [
    "EnergyParameters",
    "NodeParameters",
    "ScenarioParameters",
    "SessionParameters",
    "SpectrumParameters",
    "cell_edge_scenario",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
    "validate_parameters",
]

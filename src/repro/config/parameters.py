"""Parameter dataclasses describing a complete simulation scenario.

The defaults follow Section VI of the paper wherever the paper states a
value; parameters the paper leaves unspecified (packet size ``delta``,
admission weight ``lambda``, constant/idle energy) are documented fields
with calibrated defaults (see DESIGN.md section 2).

All values are SI: watts, joules, hertz, seconds, bits, metres.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro import constants
from repro.types import (
    DestinationStrategy,
    MobilityKind,
    NodeKind,
    Point,
    QueueSemantics,
    RenewableKind,
    TrafficPattern,
)
from repro.units import Bits, Hertz, Joules, Kbps, Linear, Meters, Seconds, Watts


@dataclass(frozen=True)
class NodeParameters:
    """Static per-node-class radio and platform parameters.

    Attributes:
        max_tx_power_w: maximum transmission power ``P_max`` (W).
        recv_power_w: constant receive power ``P_recv`` (W).
        const_power_w: antenna-feed constant power, consumed every slot
            (``E_const`` = const_power_w * slot_seconds).
        idle_power_w: idle-mode power (``E_idle`` analogously).
        num_radios: concurrent transmissions/receptions the node can
            sustain.  The paper's constraint (22) is the single-radio
            case; with ``R > 1`` the per-node budget becomes ``R``
            while the per-band constraints (20)/(21) still cap one
            activity per node per band.
    """

    max_tx_power_w: Watts
    recv_power_w: Watts
    const_power_w: Watts
    idle_power_w: Watts
    num_radios: int = 1

    def __post_init__(self) -> None:
        if self.num_radios < 1:
            raise ValueError(f"num_radios must be >= 1, got {self.num_radios}")

    def fixed_energy_j(self, slot_seconds: Seconds) -> Joules:
        """Energy consumed per slot independent of traffic (Eq. 2)."""
        return constants.watts_over_slot_to_joules(
            self.const_power_w + self.idle_power_w, slot_seconds
        )


@dataclass(frozen=True)
class EnergyParameters:
    """Per-node-class energy subsystem parameters.

    Attributes:
        renewable_max_w: upper end ``R_max`` of the uniform i.i.d.
            renewable output (W); the paper uses U[0, 1] W for users and
            U[0, 15] W for base stations.
        battery_capacity_j: ``x_max`` (J).
        charge_cap_j: per-slot charging cap ``c_max`` (J).
        discharge_cap_j: per-slot discharging cap ``d_max`` (J).
        grid_cap_j: per-slot grid-draw cap ``p_max`` (J).
        grid_connect_prob: probability that ``omega_i(t) = 1``; base
            stations use 1.0, mobile users an i.i.d. Bernoulli (``xi``).
        charge_efficiency: fraction of charged energy actually stored
            (the paper's Eq. (4) is lossless, i.e. 1.0).
        discharge_efficiency: fraction of discharged energy delivered
            to the load (1.0 in the paper).
    """

    renewable_max_w: Watts
    battery_capacity_j: Joules
    charge_cap_j: Joules
    discharge_cap_j: Joules
    grid_cap_j: Joules
    grid_connect_prob: float
    charge_efficiency: float = 1.0
    discharge_efficiency: float = 1.0

    def __post_init__(self) -> None:
        # Constraint (13): c_max + d_max <= x_max must hold by construction.
        if self.charge_cap_j + self.discharge_cap_j > self.battery_capacity_j:
            raise ValueError(
                "constraint (13) violated: c_max + d_max > x_max "
                f"({self.charge_cap_j} + {self.discharge_cap_j} > "
                f"{self.battery_capacity_j})"
            )
        for name, value in (
            ("charge_efficiency", self.charge_efficiency),
            ("discharge_efficiency", self.discharge_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")


@dataclass(frozen=True)
class SpectrumParameters:
    """Spectrum-band population parameters.

    The paper uses one cellular band of fixed 1 MHz bandwidth plus four
    bands whose bandwidths are i.i.d. uniform on [1, 2] MHz each slot.
    Base stations can access every band; each mobile user gets a random
    subset of the random bands (always including the cellular band).
    """

    cellular_bandwidth_hz: Hertz = 1e6
    num_random_bands: int = 4
    random_bandwidth_range_hz: Tuple[float, float] = (1e6, 2e6)
    user_band_access_prob: float = 0.6
    #: Dynamic availability (extension): when True, each (user,
    #: random band) pair carries a Markov on/off primary-user process
    #: that temporarily blocks the band; the paper's access sets are
    #: static (False).
    dynamic_availability: bool = False
    availability_on_prob: float = 0.7
    availability_persistence: float = 0.9

    @property
    def num_bands(self) -> int:
        """Total number of bands, cellular included."""
        return 1 + self.num_random_bands


@dataclass(frozen=True)
class SessionParameters:
    """Downlink service-session parameters.

    Attributes:
        num_sessions: number of concurrent downlink sessions ``S``.
        demand_kbps: per-session throughput requirement (paper: 100 Kbps).
        packet_size_bits: ``delta`` — bits per packet (paper:
            unspecified; 64 kbit keeps per-slot packet counts — and
            thereby the drift constant B — at a sensible scale).
        admission_max_packets: ``K_max`` — cap on packets the source base
            station accepts from the Internet per slot; ``None`` derives
            2x the per-slot demand.
        traffic_pattern: the demand profile ``v_s(t)`` (constant in the
            paper; on/off and diurnal keep the same mean rate).
        pattern_period_slots: period of the non-constant profiles.
        destination_strategy: random destinations (the paper) or the
            users farthest from every base station (cell-edge stress,
            where multi-hop relaying matters most).
    """

    num_sessions: int = 5
    demand_kbps: Kbps = 100.0
    packet_size_bits: Bits = 64000.0
    admission_max_packets: Optional[int] = None
    traffic_pattern: TrafficPattern = TrafficPattern.CONSTANT
    pattern_period_slots: int = 20
    destination_strategy: DestinationStrategy = DestinationStrategy.RANDOM

    def demand_packets_per_slot(self, slot_seconds: Seconds) -> int:
        """``v_s(t)``: per-slot demand in whole packets."""
        bits = constants.kbps_to_bits_per_slot(self.demand_kbps, slot_seconds)
        return max(1, int(round(bits / self.packet_size_bits)))

    def k_max(self, slot_seconds: Seconds) -> int:
        """``K_max``: admission cap in packets per slot."""
        if self.admission_max_packets is not None:
            return self.admission_max_packets
        return 2 * self.demand_packets_per_slot(slot_seconds)


@dataclass(frozen=True)
class ScenarioParameters:
    """A complete, immutable description of one simulation scenario."""

    # --- deployment ----------------------------------------------------
    area_side_m: Meters = 2000.0
    num_users: int = 20
    base_station_positions: Tuple[Point, ...] = (
        Point(500.0, 500.0),
        Point(1500.0, 500.0),
    )
    #: Explicit user placement (must have ``num_users`` entries); None
    #: (the paper's setup) draws users uniformly at random in the area.
    #: Pinned placements make *structured* deployments expressible —
    #: e.g. the per-cell user clusters of the shard-equivalence tests,
    #: where traffic must stay contained inside each BS-anchored region.
    user_positions: Optional[Tuple[Point, ...]] = None

    # --- PHY -----------------------------------------------------------
    # Calibration note (DESIGN.md section "unit conventions"): with the
    # paper's 1e-20 W/Hz noise floor, transmit powers at these ranges
    # are microwatts and the multi-hop-vs-one-hop energy difference the
    # paper reports would vanish; 1e-16 W/Hz keeps every base station
    # able to reach every user directly (the one-hop baselines need
    # that) while making far-link transmit energy a first-order cost:
    # a 1.6 km direct hop costs ~10 W where two 800 m hops cost ~0.6 W
    # each, which is exactly the contrast Fig. 2(f) measures.
    path_loss_exponent: float = constants.PAPER_PATH_LOSS_EXPONENT
    propagation_constant: float = constants.PAPER_PROPAGATION_CONSTANT
    sinr_threshold: Linear = constants.PAPER_SINR_THRESHOLD
    noise_density_w_per_hz: float = 1e-16

    # --- radio / platform ----------------------------------------------
    user_node: NodeParameters = NodeParameters(
        max_tx_power_w=1.0,
        recv_power_w=0.1,
        const_power_w=0.02,
        idle_power_w=0.03,
    )
    bs_node: NodeParameters = NodeParameters(
        max_tx_power_w=20.0,
        recv_power_w=0.2,
        const_power_w=10.0,
        idle_power_w=5.0,
    )

    # --- energy subsystem ----------------------------------------------
    # Renewables follow the paper (U[0, 1] W users, U[0, 15] W base
    # stations); storage/grid caps are calibrated so the V-dependent
    # battery thresholds V*gamma_max + d_max sweep through the battery
    # range for V in [1e5, 1e6] (see DESIGN.md).  The paper's users are
    # "occasionally connected" to the grid, but its Fig. 2(e) buffer
    # growth matches renewable-only charging, so the paper scenario
    # defaults to disconnected users; examples exercise xi > 0.
    user_energy: EnergyParameters = EnergyParameters(
        renewable_max_w=1.0,
        battery_capacity_j=constants.wh_to_joules(20.0),
        charge_cap_j=constants.wh_to_joules(5.0),
        discharge_cap_j=constants.wh_to_joules(5.0),
        grid_cap_j=constants.wh_to_joules(10.0),
        grid_connect_prob=0.0,
    )
    bs_energy: EnergyParameters = EnergyParameters(
        renewable_max_w=15.0,
        battery_capacity_j=constants.kwh_to_joules(3.0),
        charge_cap_j=constants.kwh_to_joules(0.02),
        discharge_cap_j=constants.kwh_to_joules(0.02),
        grid_cap_j=constants.kwh_to_joules(0.2),
        grid_connect_prob=1.0,
    )

    # --- cost function f(P) = a (P/u)^2 + b (P/u) + c --------------------
    # Coefficients follow the paper (a=0.8, b=0.2, c=0); ``u`` is the
    # energy unit (J) the polynomial is evaluated in.  The paper mixes
    # kWh and other units inconsistently (its figures are only
    # reproducible with ad-hoc unit choices); u = 1 kJ places the
    # V-sweep 1e5..1e6 in the regime where the cost/backlog tradeoff
    # of Figs. 2(a)-2(e) is visible.  See DESIGN.md.
    cost_a: float = 0.8
    cost_b: float = 0.2
    cost_c: float = 0.0
    cost_energy_unit_j: Joules = 1e3
    #: Optional time-of-use multiplier schedule: slot t uses
    #: ``multipliers[t % len]`` times the base cost.  None (the paper's
    #: model) keeps the tariff flat.  A varying tariff is where battery
    #: arbitrage pays: charge in cheap slots, discharge in dear ones.
    tou_multipliers: Optional[Tuple[float, ...]] = None

    # --- spectrum and traffic -------------------------------------------
    spectrum: SpectrumParameters = SpectrumParameters()
    sessions: SessionParameters = SessionParameters()

    # --- control knobs ---------------------------------------------------
    #: Lyapunov energy-cost weight V.
    control_v: float = 1e5
    #: Admission reward weight lambda (paper: operator-chosen).
    admission_lambda: float = 0.01
    #: Include the marginal energy cost of activating a link in the S1
    #: weights (energy-aware backpressure).  The paper's stage-wise
    #: decomposition drops this drift coupling, leaving S1 blind to
    #: transmit power — with the binary physical-model capacity there
    #: is then no mechanism for the multi-hop energy savings Fig. 2(f)
    #: reports.  False recovers the paper-literal S1 (ablation
    #: ``abl-sched-energy`` in DESIGN.md).
    energy_aware_scheduling: bool = True
    #: Minimise the *exact* battery drift ``z (c-d) + (c-d)^2 / 2`` in
    #: S4 rather than the paper's linear bound ``z (c-d)``.  The linear
    #: form over-charges past the V*gamma_max threshold every cycle
    #: (the dropped quadratic term is what damps it), producing a
    #: charge/discharge oscillation whose convex generation cost is
    #: pure loss.  False recovers the paper-literal S4 (ablation
    #: ``abl-energy-drift`` in DESIGN.md).
    exact_battery_drift: bool = True
    #: Queue-transfer semantics (see QueueSemantics).
    queue_semantics: QueueSemantics = QueueSemantics.PAPER

    # --- simulation -------------------------------------------------------
    slot_seconds: Seconds = constants.SECONDS_PER_MINUTE
    num_slots: int = 100
    seed: int = 2014
    #: Replication spawn key: the RNG streams are rooted at
    #: ``SeedSequence(seed, spawn_key=seed_spawn_key)``.  The default
    #: ``()`` is the root sequence (the historical behaviour); the
    #: sweep executor derives per-replication keys from the root via
    #: ``SeedSequence.spawn`` (see ``repro.sim.rng.spawn_child_keys``).
    seed_spawn_key: Tuple[int, ...] = ()
    #: Candidate links are limited to the k nearest neighbours of each
    #: node (plus all BS-user pairs within range) to keep the per-slot
    #: optimization tractable; None means fully connected.
    neighbor_limit: Optional[int] = 6
    #: Topology builder selection: ``"auto"`` (grid builder, dense
    #: matrices materialised only at small N), ``"sparse"`` (grid
    #: builder, never materialise the O(N^2) matrices), or ``"dense"``
    #: (the all-pairs reference builder).  Every mode produces a
    #: bit-identical candidate-link set; see ``network/topology.py``.
    topology_mode: str = "auto"

    # --- architecture switches (baselines) --------------------------------
    renewables_enabled: bool = True
    multi_hop_enabled: bool = True

    # --- mobility (extension; the paper evaluates static users) -----------
    #: Users re-derive propagation gains from their current positions
    #: every slot; the candidate-link set stays quasi-static (pruned
    #: from the initial placement), with per-slot power control
    #: deciding actual feasibility.
    mobility: MobilityKind = MobilityKind.STATIC
    #: Uniform per-leg speed draw for random-waypoint users (m/s).
    user_speed_range_mps: Tuple[float, float] = (0.5, 2.0)

    # --- renewable process selection ---------------------------------------
    # The paper uses i.i.d. uniform renewables; the solar (diurnal,
    # for users) and wind (Markov-modulated, for base stations)
    # processes support the example scenarios.
    user_renewable_kind: RenewableKind = RenewableKind.UNIFORM
    bs_renewable_kind: RenewableKind = RenewableKind.UNIFORM

    @property
    def num_base_stations(self) -> int:
        """Number of base stations ``B``."""
        return len(self.base_station_positions)

    @property
    def num_nodes(self) -> int:
        """Total node count ``N = U + B``."""
        return self.num_users + self.num_base_stations

    def node_kind(self, node: int) -> NodeKind:
        """Kind of node ``node``; base stations occupy the low ids."""
        if 0 <= node < self.num_base_stations:
            return NodeKind.BASE_STATION
        if node < self.num_nodes:
            return NodeKind.MOBILE_USER
        raise ValueError(f"node id {node} out of range (N={self.num_nodes})")

    def node_params(self, node: int) -> NodeParameters:
        """Radio/platform parameters for node ``node``."""
        if self.node_kind(node) is NodeKind.BASE_STATION:
            return self.bs_node
        return self.user_node

    def energy_params(self, node: int) -> EnergyParameters:
        """Energy-subsystem parameters for node ``node``."""
        if self.node_kind(node) is NodeKind.BASE_STATION:
            return self.bs_energy
        return self.user_energy

    def base_station_ids(self) -> Sequence[int]:
        """Ids of all base stations (0 .. B-1)."""
        return range(self.num_base_stations)

    def user_ids(self) -> Sequence[int]:
        """Ids of all mobile users (B .. N-1)."""
        return range(self.num_base_stations, self.num_nodes)

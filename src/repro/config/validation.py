"""Scenario-parameter validation.

``validate_parameters`` performs every structural check that the rest of
the library relies on, raising :class:`ConfigurationError` with a message
naming the offending field.  The simulator calls it once at start-up, so
downstream modules may assume validated inputs.
"""

from __future__ import annotations

from typing import List

from repro.config.parameters import ScenarioParameters
from repro.constants import approx_eq
from repro.exceptions import ConfigurationError


def _positive(value: float, name: str, errors: List[str]) -> None:
    if not value > 0:
        errors.append(f"{name} must be positive, got {value!r}")


def _non_negative(value: float, name: str, errors: List[str]) -> None:
    if value < 0:
        errors.append(f"{name} must be non-negative, got {value!r}")


def _probability(value: float, name: str, errors: List[str]) -> None:
    if not 0.0 <= value <= 1.0:
        errors.append(f"{name} must be in [0, 1], got {value!r}")


def validate_parameters(params: ScenarioParameters) -> None:
    """Validate a scenario, raising ``ConfigurationError`` on failure.

    All violations are collected and reported together so a user fixing a
    hand-written scenario sees every problem at once.
    """
    errors: List[str] = []

    _positive(params.area_side_m, "area_side_m", errors)
    if params.num_users < 1:
        errors.append(f"num_users must be >= 1, got {params.num_users}")
    if params.num_base_stations < 1:
        errors.append("at least one base station position is required")
    for idx, pos in enumerate(params.base_station_positions):
        inside = (
            0.0 <= pos.x <= params.area_side_m
            and 0.0 <= pos.y <= params.area_side_m
        )
        if not inside:
            errors.append(
                f"base_station_positions[{idx}] = {pos} lies outside the "
                f"{params.area_side_m} m square area"
            )
    if params.user_positions is not None:
        if len(params.user_positions) != params.num_users:
            errors.append(
                f"user_positions has {len(params.user_positions)} entries "
                f"but num_users={params.num_users}"
            )
        for idx, pos in enumerate(params.user_positions):
            inside = (
                0.0 <= pos.x <= params.area_side_m
                and 0.0 <= pos.y <= params.area_side_m
            )
            if not inside:
                errors.append(
                    f"user_positions[{idx}] = {pos} lies outside the "
                    f"{params.area_side_m} m square area"
                )

    _positive(params.path_loss_exponent, "path_loss_exponent", errors)
    _positive(params.propagation_constant, "propagation_constant", errors)
    _positive(params.sinr_threshold, "sinr_threshold", errors)
    _positive(params.noise_density_w_per_hz, "noise_density_w_per_hz", errors)

    for label, node in (("user_node", params.user_node), ("bs_node", params.bs_node)):
        _positive(node.max_tx_power_w, f"{label}.max_tx_power_w", errors)
        _non_negative(node.recv_power_w, f"{label}.recv_power_w", errors)
        _non_negative(node.const_power_w, f"{label}.const_power_w", errors)
        _non_negative(node.idle_power_w, f"{label}.idle_power_w", errors)

    for label, energy in (
        ("user_energy", params.user_energy),
        ("bs_energy", params.bs_energy),
    ):
        _non_negative(energy.renewable_max_w, f"{label}.renewable_max_w", errors)
        _positive(energy.battery_capacity_j, f"{label}.battery_capacity_j", errors)
        _non_negative(energy.charge_cap_j, f"{label}.charge_cap_j", errors)
        _non_negative(energy.discharge_cap_j, f"{label}.discharge_cap_j", errors)
        _non_negative(energy.grid_cap_j, f"{label}.grid_cap_j", errors)
        _probability(energy.grid_connect_prob, f"{label}.grid_connect_prob", errors)

    if not approx_eq(params.bs_energy.grid_connect_prob, 1.0):
        errors.append(
            "bs_energy.grid_connect_prob must be 1.0: the paper assumes "
            "base stations are always grid-connected"
        )

    _non_negative(params.cost_a, "cost_a", errors)
    _non_negative(params.cost_b, "cost_b", errors)
    _non_negative(params.cost_c, "cost_c", errors)
    if params.cost_a == 0 and params.cost_b == 0:
        errors.append("cost function is identically constant (a = b = 0)")
    _positive(params.cost_energy_unit_j, "cost_energy_unit_j", errors)
    if params.tou_multipliers is not None:
        if not params.tou_multipliers:
            errors.append("tou_multipliers must be None or non-empty")
        elif any(m <= 0 for m in params.tou_multipliers):
            errors.append("tou_multipliers must all be positive")

    spectrum = params.spectrum
    _positive(spectrum.cellular_bandwidth_hz, "spectrum.cellular_bandwidth_hz", errors)
    if spectrum.num_random_bands < 0:
        errors.append(
            f"spectrum.num_random_bands must be >= 0, got {spectrum.num_random_bands}"
        )
    low, high = spectrum.random_bandwidth_range_hz
    if not 0 < low <= high:
        errors.append(
            "spectrum.random_bandwidth_range_hz must satisfy 0 < low <= high, "
            f"got {spectrum.random_bandwidth_range_hz!r}"
        )
    _probability(spectrum.user_band_access_prob, "spectrum.user_band_access_prob", errors)
    _probability(spectrum.availability_on_prob, "spectrum.availability_on_prob", errors)
    _probability(
        spectrum.availability_persistence,
        "spectrum.availability_persistence",
        errors,
    )

    sessions = params.sessions
    if sessions.num_sessions < 1:
        errors.append(f"sessions.num_sessions must be >= 1, got {sessions.num_sessions}")
    _positive(sessions.demand_kbps, "sessions.demand_kbps", errors)
    _positive(sessions.packet_size_bits, "sessions.packet_size_bits", errors)
    if sessions.num_sessions > params.num_users:
        errors.append(
            "each session needs a distinct destination user: "
            f"num_sessions={sessions.num_sessions} > num_users={params.num_users}"
        )
    if sessions.pattern_period_slots < 2:
        errors.append(
            "sessions.pattern_period_slots must be >= 2, got "
            f"{sessions.pattern_period_slots}"
        )

    _non_negative(params.control_v, "control_v", errors)
    _non_negative(params.admission_lambda, "admission_lambda", errors)
    _positive(params.slot_seconds, "slot_seconds", errors)
    if params.num_slots < 1:
        errors.append(f"num_slots must be >= 1, got {params.num_slots}")
    if params.neighbor_limit is not None and params.neighbor_limit < 1:
        errors.append(
            f"neighbor_limit must be >= 1 or None, got {params.neighbor_limit}"
        )
    if params.topology_mode not in ("auto", "dense", "sparse"):
        errors.append(
            "topology_mode must be 'auto', 'dense' or 'sparse', got "
            f"{params.topology_mode!r}"
        )
    low, high = params.user_speed_range_mps
    if not 0 <= low <= high:
        errors.append(
            f"user_speed_range_mps must satisfy 0 <= low <= high, got "
            f"{params.user_speed_range_mps!r}"
        )

    if errors:
        raise ConfigurationError(
            "invalid scenario parameters:\n  - " + "\n  - ".join(errors)
        )

"""Unit-annotation vocabulary for the static units analyzer.

The library computes internally in SI units (watts, joules, bits,
seconds — see ``repro.constants``), but the paper states parameters in
kWh, Kbps and per-minute slots, and the per-slot machinery constantly
crosses the power/energy and per-second/per-slot boundaries.  This
module gives those physical quantities *names* that are zero-cost at
runtime: each alias is ``Annotated[float, Unit(...)]``, so annotated
code still passes and returns plain floats, while the dataflow
analyzer (``python -m repro.analysis``, rules R010-R012) reads the
annotations statically and flags dimensionally inconsistent
arithmetic before a simulation ever runs.

Annotate the *boundaries* — public function signatures and dataclass
fields — with the most specific alias that applies::

    from repro.units import Joules, Seconds, Watts

    def slot_energy(power: Watts, slot_seconds: Seconds) -> Joules:
        ...

The ``db_to_linear`` / ``linear_to_db`` helpers are the sanctioned
crossing between the logarithmic and linear SINR scales; the analyzer
treats any other arithmetic that mixes ``Db`` with linear quantities
as rule R011.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Annotated, Dict, Optional


@dataclass(frozen=True)
class Unit:
    """Static metadata carried by one ``Annotated`` unit alias.

    Attributes:
        symbol: canonical short symbol (``"J"``, ``"bit/slot"``, ...).
        dimension: physical dimension group; two units sharing a
            dimension (e.g. ``J`` and ``kWh``) measure the same thing
            at different scales and still must not be mixed without an
            explicit conversion.
        per: for rate units, the time base — ``"slot"`` or ``"s"``.
            Mixing the two bases is rule R012's target.
    """

    symbol: str
    dimension: str
    per: Optional[str] = None


_JOULES = Unit("J", "energy")
_WATT_HOURS = Unit("Wh", "energy")
_KILOWATT_HOURS = Unit("kWh", "energy")
_WATTS = Unit("W", "power")
_BITS = Unit("bit", "data")
_PACKETS = Unit("packet", "packets")
_BITS_PER_SLOT = Unit("bit/slot", "data_rate", per="slot")
_PACKETS_PER_SLOT = Unit("packet/slot", "packet_rate", per="slot")
_BITS_PER_SECOND = Unit("bit/s", "data_rate", per="s")
_KBPS = Unit("kbit/s", "data_rate", per="s")
_DB = Unit("dB", "level")
_LINEAR = Unit("lin", "dimensionless")
_DOLLARS = Unit("$", "money")
_DOLLARS_PER_KWH = Unit("$/kWh", "tariff")
_DOLLARS_PER_JOULE = Unit("$/J", "tariff")
_SECONDS = Unit("s", "time")
_HERTZ = Unit("Hz", "frequency")
_METERS = Unit("m", "length")

#: Battery/grid energy and every per-slot energy quantity (SI).
Joules = Annotated[float, _JOULES]
#: Watt-hours — configuration-boundary storage sizes.
WattHours = Annotated[float, _WATT_HOURS]
#: Kilowatt-hours — the paper's storage and tariff unit.
KilowattHours = Annotated[float, _KILOWATT_HOURS]
#: Instantaneous power (transmit, receive, renewable output).
Watts = Annotated[float, _WATTS]
#: Raw traffic volume.
Bits = Annotated[float, _BITS]
#: Queue backlogs and routed amounts (the paper's packet unit delta).
Packets = Annotated[float, _PACKETS]
#: Traffic volume per slot (after a ``slot_seconds`` conversion).
BitsPerSlot = Annotated[float, _BITS_PER_SLOT]
#: Queue service/arrival rates per slot.
PacketsPerSlot = Annotated[float, _PACKETS_PER_SLOT]
#: Link rate in bits per second (Eq. 1 capacities).
BitsPerSecond = Annotated[float, _BITS_PER_SECOND]
#: Session demand as stated by the paper (100 Kbps).
Kbps = Annotated[float, _KBPS]
#: Logarithmic ratio — never multiply two of these (R011).
Db = Annotated[float, _DB]
#: Linear (dimensionless) ratio, e.g. SINR values and thresholds.
Linear = Annotated[float, _LINEAR]
#: Monetary cost (the currency of ``f(P)``).
Dollars = Annotated[float, _DOLLARS]
#: Tariff as stated by the paper ($ per kWh).
DollarsPerKwh = Annotated[float, _DOLLARS_PER_KWH]
#: Tariff in SI terms ($ per joule) — the library-internal form.
DollarsPerJoule = Annotated[float, _DOLLARS_PER_JOULE]
#: Durations, including the slot length ``delta_t``.
Seconds = Annotated[float, _SECONDS]
#: Bandwidths ``W_m(t)``.
Hertz = Annotated[float, _HERTZ]
#: Distances in the propagation model.
Meters = Annotated[float, _METERS]

#: Alias name -> metadata, the analyzer's annotation vocabulary.
ALIAS_UNITS: Dict[str, Unit] = {
    "Joules": _JOULES,
    "WattHours": _WATT_HOURS,
    "KilowattHours": _KILOWATT_HOURS,
    "Watts": _WATTS,
    "Bits": _BITS,
    "Packets": _PACKETS,
    "BitsPerSlot": _BITS_PER_SLOT,
    "PacketsPerSlot": _PACKETS_PER_SLOT,
    "BitsPerSecond": _BITS_PER_SECOND,
    "Kbps": _KBPS,
    "Db": _DB,
    "Linear": _LINEAR,
    "Dollars": _DOLLARS,
    "DollarsPerKwh": _DOLLARS_PER_KWH,
    "DollarsPerJoule": _DOLLARS_PER_JOULE,
    "Seconds": _SECONDS,
    "Hertz": _HERTZ,
    "Meters": _METERS,
}

#: Symbol -> metadata, for the analyzer's dimension algebra.
UNIT_BY_SYMBOL: Dict[str, Unit] = {u.symbol: u for u in ALIAS_UNITS.values()}


def db_to_linear(value_db: Db) -> Linear:
    """Convert a dB-scale ratio to its linear value: ``10^(x/10)``."""
    return float(10.0 ** (value_db / 10.0))


def linear_to_db(value_linear: Linear) -> Db:
    """Convert a linear ratio to dB: ``10 log10(x)``."""
    if value_linear <= 0.0:
        raise ValueError(f"linear ratio must be positive, got {value_linear}")
    return 10.0 * math.log10(value_linear)

"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``run`` — simulate one scenario and print the summary (optionally
  writing a per-slot CSV/JSON trace);
* ``bounds`` — compute the Theorem-4/5 bound pair for one V;
* ``figure`` — regenerate one of the paper's figures (2a-2f);
* ``compare`` — the four-architecture comparison at chosen V values.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import build_report, format_table
from repro.config import (
    ScenarioParameters,
    cell_edge_scenario,
    paper_scenario,
    small_scenario,
    tiny_scenario,
)
from repro.experiments import (
    compute_bounds,
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig2d,
    run_fig2e,
    run_fig2f,
)
from repro.sim import SlotSimulator, TraceRecorder

_SCENARIOS = {
    "paper": paper_scenario,
    "small": small_scenario,
    "tiny": tiny_scenario,
    "cell-edge": cell_edge_scenario,
}

_FIGURES = {
    "2a": run_fig2a,
    "2b": run_fig2b,
    "2c": run_fig2c,
    "2d": run_fig2d,
    "2e": run_fig2e,
    "2f": run_fig2f,
}


def _build_scenario(args: argparse.Namespace) -> ScenarioParameters:
    factory = _SCENARIOS[args.scenario]
    kwargs = {"control_v": args.v, "seed": args.seed}
    if args.slots is not None:
        kwargs["num_slots"] = args.slots
    return factory(**kwargs)


def _cmd_run(args: argparse.Namespace) -> int:
    params = _build_scenario(args)
    trace = TraceRecorder() if (args.trace_csv or args.trace_json) else None
    simulator = SlotSimulator.integral(params)
    result = simulator.run(trace=trace)

    rows = sorted(result.summary().items())
    print(format_table(["metric", "value"], rows, title="Run summary"))
    print()
    stability_rows = [
        (name, report.verdict.value, report.final_running_mean)
        for name, report in result.stability_reports().items()
    ]
    print(
        format_table(
            ["queue aggregate", "verdict", "running mean"],
            stability_rows,
            title="Strong-stability check",
        )
    )
    if trace is not None:
        if args.trace_csv:
            print(f"\ntrace written to {trace.to_csv(args.trace_csv)}")
        if args.trace_json:
            print(f"\ntrace written to {trace.to_json(args.trace_json)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    params = _build_scenario(args)
    simulator = SlotSimulator.integral(params)
    result = simulator.run()
    print(build_report(simulator, result))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    params = _build_scenario(args)
    report = compute_bounds(params)
    rows = [
        ("V", report.control_v),
        ("upper (our algorithm, Thm 4)", report.upper),
        ("empirical lower (relaxed LP)", report.relaxed_penalty),
        ("formal lower (Thm 5)", report.lower),
        ("drift constant B", report.drift_b),
    ]
    print(format_table(["bound", "value"], rows, title="Bounds on psi*_P1"))
    return 0


def _parse_v_list(raw: str) -> List[float]:
    try:
        values = [float(token) for token in raw.split(",") if token]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad V list {raw!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("empty V list")
    return values


def _cmd_figure(args: argparse.Namespace) -> int:
    params = _build_scenario(args)
    runner = _FIGURES[args.figure]
    kwargs = {"base": params}
    if args.v_values is not None:
        kwargs["v_values"] = args.v_values
    result = runner(**kwargs)
    print(result.table)
    if args.export is not None:
        from repro.experiments import export_figure

        path = export_figure(result, args.export)
        print(f"\ndata written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.analysis import replicate_summary

    params = _build_scenario(args)
    v_values = args.v_values or [1e5, 3e5, 5e5]
    rows = []
    for v in v_values:
        summary = replicate_summary(
            dataclasses.replace(params, control_v=v),
            num_seeds=args.seeds,
            first_seed=params.seed,
        )
        cost = summary["average_cost"]
        backlog = summary["mean_bs_backlog"]
        rows.append(
            (
                v,
                cost.mean,
                cost.half_width,
                backlog.mean,
                backlog.half_width,
            )
        )
    print(
        format_table(
            ["V", "avg cost", "+/-", "mean BS backlog", "+/-"],
            rows,
            title=f"V sweep over {args.seeds} seeds (95% CIs)",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    params = _build_scenario(args)
    v_values = args.v_values or [1e5, 3e5, 5e5]
    result = run_fig2f(base=params, v_values=v_values)
    print(result.table)
    ok = all(result.ordering_holds(v) for v in v_values)
    print()
    print(
        "proposed system cheapest at every V: "
        + ("yes" if ok else "NO — see table")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimal Energy Cost for Strongly Stable "
            "Multi-hop Green Cellular Networks' (ICDCS 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scenario",
            choices=sorted(_SCENARIOS),
            default="paper",
            help="scenario factory (default: paper)",
        )
        p.add_argument("--v", type=float, default=1e5, help="Lyapunov weight V")
        p.add_argument("--slots", type=int, default=None, help="horizon override")
        p.add_argument("--seed", type=int, default=2014, help="RNG seed")

    run_p = sub.add_parser("run", help="simulate one scenario")
    common(run_p)
    run_p.add_argument("--trace-csv", default=None, help="write per-slot CSV trace")
    run_p.add_argument("--trace-json", default=None, help="write per-slot JSON trace")
    run_p.set_defaults(handler=_cmd_run)

    bounds_p = sub.add_parser("bounds", help="Theorem-4/5 bound pair")
    common(bounds_p)
    bounds_p.set_defaults(handler=_cmd_bounds)

    report_p = sub.add_parser("report", help="full operator report of one run")
    common(report_p)
    report_p.set_defaults(handler=_cmd_report)

    figure_p = sub.add_parser("figure", help="regenerate a paper figure")
    figure_p.add_argument("figure", choices=sorted(_FIGURES))
    common(figure_p)
    figure_p.add_argument(
        "--v-values",
        type=_parse_v_list,
        default=None,
        help="comma-separated V sweep (default: the paper's)",
    )
    figure_p.add_argument(
        "--export", default=None, help="write the figure data as CSV"
    )
    figure_p.set_defaults(handler=_cmd_figure)

    sweep_p = sub.add_parser(
        "sweep", help="V sweep with multi-seed confidence intervals"
    )
    common(sweep_p)
    sweep_p.add_argument(
        "--v-values", type=_parse_v_list, default=None,
        help="comma-separated V values (default: 1e5,3e5,5e5)",
    )
    sweep_p.add_argument(
        "--seeds", type=int, default=3, help="replications per V (default 3)"
    )
    sweep_p.set_defaults(handler=_cmd_sweep)

    compare_p = sub.add_parser("compare", help="four-architecture comparison")
    common(compare_p)
    compare_p.add_argument(
        "--v-values", type=_parse_v_list, default=None,
        help="comma-separated V values (default: 1e5,3e5,5e5)",
    )
    compare_p.set_defaults(handler=_cmd_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())

"""The slot-based simulation engine.

``SlotSimulator`` wires a scenario into a model, Lyapunov constants,
network state and a controller, then advances the slotted loop:

    observe -> decide (S1-S4 or relaxed LP) -> apply -> record.

Construct with :meth:`SlotSimulator.integral` (the paper's
decomposition algorithm), :meth:`SlotSimulator.relaxed` (the exact
per-slot LP of the lower bound), or pass any object with a
``decide(observation, state)`` method.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Type, Union

from repro.config.parameters import ScenarioParameters
from repro.contracts import ContractChecker, Strictness
from repro.control.controller import DriftPlusPenaltyController
from repro.control.decisions import SlotDecision, SlotObservation
from repro.control.router import RouterMode
from repro.core.bounds import RelaxedLpController
from repro.core.lyapunov import LyapunovConstants, compute_constants
from repro.model import NetworkModel, build_network_model
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimulationResult
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder
from repro.state import NetworkState
from repro.types import EnergySolverKind, SchedulerKind


class Controller(Protocol):
    """Anything the engine can drive (duck-typed controller)."""

    last_deficit_j: dict

    def decide(
        self, observation: SlotObservation, state: "NetworkState"
    ) -> SlotDecision:  # pragma: no cover - protocol
        ...


#: Factory building a controller for an assembled model.
ControllerFactory = Callable[
    [NetworkModel, LyapunovConstants, RngStreams], Controller
]

#: Anything :class:`SlotSimulator` accepts as its contracts argument.
ContractsArg = Union[ContractChecker, Strictness, str, None]


def _coerce_contracts(contracts: ContractsArg) -> ContractChecker:
    """Build the checker from a checker, a strictness, or its name."""
    if isinstance(contracts, ContractChecker):
        return contracts
    return ContractChecker(strictness=contracts)


class SlotSimulator:
    """One scenario wired up and ready to run."""

    def __init__(
        self,
        params: ScenarioParameters,
        controller_factory: ControllerFactory,
        enforce_complementarity: bool = True,
        contracts: ContractsArg = None,
        state_cls: Type[NetworkState] = NetworkState,
    ) -> None:
        self.params = params
        self.rng = RngStreams(params.seed, params.seed_spawn_key)
        self.model = build_network_model(params, self.rng.topology)
        self.constants = compute_constants(self.model)
        self.state = state_cls(self.model, self.constants, self.rng.environment)
        self.controller = controller_factory(self.model, self.constants, self.rng)
        # Frozen once: the destination map never changes over a run, so
        # per-slot delivery accounting must not rebuild it (satellite
        # fix — this used to cost a dict build per slot).
        self._session_destinations = self.model.session_destinations()
        self._session_ids = tuple(self._session_destinations)
        self._enforce_complementarity = enforce_complementarity
        self.contracts = _coerce_contracts(contracts)
        attach = getattr(self.controller, "attach_contracts", None)
        if attach is not None and self.contracts.enabled:
            attach(self.contracts)
        self.metrics = MetricsCollector(
            params.admission_lambda, bs_ids=self.model.bs_ids
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def integral(
        cls,
        params: ScenarioParameters,
        scheduler_kind: SchedulerKind = SchedulerKind.SEQUENTIAL_FIX,
        energy_solver: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
        router_mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
        contracts: ContractsArg = None,
        state_cls: Type[NetworkState] = NetworkState,
    ) -> "SlotSimulator":
        """The paper's decomposition controller (Section IV-C)."""

        def factory(
            model: NetworkModel, constants: LyapunovConstants, rng: RngStreams
        ) -> Controller:
            return DriftPlusPenaltyController(
                model,
                constants,
                rng.controller,
                scheduler_kind=scheduler_kind,
                energy_solver=energy_solver,
                router_mode=router_mode,
            )

        return cls(params, factory, contracts=contracts, state_cls=state_cls)

    @classmethod
    def relaxed(
        cls,
        params: ScenarioParameters,
        num_cost_segments: int = 24,
        contracts: ContractsArg = None,
        state_cls: Type[NetworkState] = NetworkState,
    ) -> "SlotSimulator":
        """The exact relaxed-LP controller of the Theorem-5 bound."""

        def factory(
            model: NetworkModel, constants: LyapunovConstants, rng: RngStreams
        ) -> Controller:
            del rng  # the LP is deterministic
            return RelaxedLpController(
                model, constants, num_cost_segments=num_cost_segments
            )

        return cls(
            params,
            factory,
            enforce_complementarity=False,
            contracts=contracts,
            state_cls=state_cls,
        )

    # -- running -------------------------------------------------------------

    def _delivered_per_session(self, decision: SlotDecision) -> dict:
        """Per-session packets arriving at destinations this slot.

        Uses the *effective* transfer rates under the configured queue
        semantics: in the paper's null-packet mode these equal the
        scheduled rates; in packet-accurate mode phantom deliveries
        (rates exceeding the transmitter's real backlog) are excluded.
        """
        destinations = self._session_destinations
        effective = self.state.data_queues.effective_rates(
            decision.routing.rates
        )
        delivered = dict.fromkeys(self._session_ids, 0.0)
        for (tx, rx, sid), rate in effective.items():
            if rx == destinations[sid]:
                delivered[sid] += rate
        return delivered

    def step(self, slot: int, trace: Optional[TraceRecorder] = None) -> SlotDecision:
        """Advance the simulation by one slot."""
        observation = self.state.observe(slot)
        decision = self.controller.decide(observation, self.state)
        pre = self.contracts.capture(self.state)
        snapshot = self.state.apply(
            decision,
            slot,
            enforce_complementarity=self._enforce_complementarity,
        )
        if pre is not None:
            self.contracts.check_transition(
                self.model,
                self.state,
                decision,
                pre,
                slot,
                enforce_complementarity=self._enforce_complementarity,
            )
        deficit = sum(getattr(self.controller, "last_deficit_j", {}).values())
        per_session = self._delivered_per_session(decision)
        metrics = self.metrics.record(
            slot=slot,
            decision=decision,
            snapshot=snapshot,
            deficit_j=deficit,
            delivered_pkts=sum(per_session.values()),
            session_delivered=per_session,
        )
        if trace is not None:
            trace.record_slot(observation, decision, metrics)
        return decision

    def run(
        self,
        num_slots: Optional[int] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        """Run the full horizon and return the result."""
        horizon = num_slots if num_slots is not None else self.params.num_slots
        for slot in range(horizon):
            self.step(slot, trace=trace)
        return SimulationResult(
            control_v=self.params.control_v,
            num_slots=horizon,
            metrics=self.metrics,
            constants=self.constants,
        )


def run_simulation(
    params: ScenarioParameters,
    scheduler_kind: SchedulerKind = SchedulerKind.SEQUENTIAL_FIX,
    energy_solver: EnergySolverKind = EnergySolverKind.PRICE_DECOMPOSITION,
    router_mode: RouterMode = RouterMode.POTENTIAL_CAPACITY,
    contracts: ContractsArg = None,
) -> SimulationResult:
    """One-call convenience: build the integral simulator and run it."""
    simulator = SlotSimulator.integral(
        params,
        scheduler_kind=scheduler_kind,
        energy_solver=energy_solver,
        router_mode=router_mode,
        contracts=contracts,
    )
    return simulator.run()

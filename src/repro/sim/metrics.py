"""Per-slot metrics collection.

The collector records, for every slot, the quantities the paper's
figures plot — grid draw, generation cost, the P2-style penalty, queue
aggregates — plus library-specific diagnostics (deficits, curtailments,
spilled renewable energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.control.decisions import SlotDecision
from repro.queueing.backlog import BacklogSnapshot


@dataclass(frozen=True)
class EnergyFlows:
    """One slot's energy-flow breakdown for one node class (J).

    Attributes:
        renewable_used_j: harvested energy serving demand or charging.
        grid_serve_j: grid energy serving demand directly.
        grid_charge_j: grid energy charging batteries.
        discharge_j: battery energy delivered to demand.
        spill_j: harvested energy left unused.
    """

    renewable_used_j: float = 0.0
    grid_serve_j: float = 0.0
    grid_charge_j: float = 0.0
    discharge_j: float = 0.0
    spill_j: float = 0.0

    @property
    def grid_total_j(self) -> float:
        """Total grid draw of the class."""
        return self.grid_serve_j + self.grid_charge_j


def _aggregate_flows(decision: SlotDecision, nodes) -> EnergyFlows:
    renewable = grid_serve = grid_charge = discharge = spill = 0.0
    node_set = set(nodes)
    for node, alloc in decision.energy.allocations.items():
        if node not in node_set:
            continue
        renewable += alloc.renewable_serve_j + alloc.renewable_charge_j
        grid_serve += alloc.grid_serve_j
        grid_charge += alloc.grid_charge_j
        discharge += alloc.discharge_j
        spill += alloc.spill_j
    return EnergyFlows(
        renewable_used_j=renewable,
        grid_serve_j=grid_serve,
        grid_charge_j=grid_charge,
        discharge_j=discharge,
        spill_j=spill,
    )


@dataclass(frozen=True)
class SlotMetrics:
    """Everything measured in one slot.

    Attributes:
        slot: slot index ``t``.
        grid_draw_j: ``P(t)`` — total base-station grid draw.
        cost: ``f(P(t))``.
        admitted_pkts: ``sum_s k_s(t)``.
        penalty: the P2 objective sample ``f(P) - lambda sum_s k_s``.
        delivered_pkts: packets forced into destinations (Eq. 18).
        scheduled_links: transmissions that survived power control.
        curtailed_links: link-bands shed by the energy-feasibility pass.
        deficit_j: unservable base energy demand.
        spill_j: renewable energy left unused.
        snapshot: queue/battery aggregates after the slot's update.
        bs_flows: base-station energy-flow breakdown.
        user_flows: mobile-user energy-flow breakdown.
    """

    slot: int
    grid_draw_j: float
    cost: float
    admitted_pkts: float
    penalty: float
    delivered_pkts: float
    scheduled_links: int
    curtailed_links: int
    deficit_j: float
    spill_j: float
    snapshot: BacklogSnapshot
    bs_flows: EnergyFlows = EnergyFlows()
    user_flows: EnergyFlows = EnergyFlows()


class MetricsCollector:
    """Accumulates :class:`SlotMetrics` and computes time averages."""

    def __init__(self, admission_lambda: float, bs_ids=()) -> None:
        self._lambda = admission_lambda
        self._bs_ids = frozenset(bs_ids)
        self.slots: List[SlotMetrics] = []
        #: Cumulative delivered packets per session id.
        self.session_delivered: Dict[int, float] = {}

    def record(
        self,
        slot: int,
        decision: SlotDecision,
        snapshot: BacklogSnapshot,
        deficit_j: float,
        delivered_pkts: float,
        session_delivered: Dict[int, float] = None,
    ) -> SlotMetrics:
        """Derive and store one slot's metrics."""
        if session_delivered:
            for sid, amount in session_delivered.items():
                self.session_delivered[sid] = (
                    self.session_delivered.get(sid, 0.0) + amount
                )
        admitted = decision.admission.total_admitted()
        spill = sum(
            a.spill_j for a in decision.energy.allocations.values()
        )
        all_nodes = set(decision.energy.allocations)
        metrics = SlotMetrics(
            slot=slot,
            grid_draw_j=decision.energy.bs_grid_draw_j,
            cost=decision.energy.cost,
            admitted_pkts=admitted,
            penalty=decision.energy.cost - self._lambda * admitted,
            delivered_pkts=delivered_pkts,
            scheduled_links=len(decision.schedule.transmissions),
            curtailed_links=len(decision.curtailed),
            deficit_j=deficit_j,
            spill_j=spill,
            snapshot=snapshot,
            bs_flows=_aggregate_flows(decision, self._bs_ids),
            user_flows=_aggregate_flows(decision, all_nodes - self._bs_ids),
        )
        self.slots.append(metrics)
        return metrics

    def flow_series(self, node_class: str, field_name: str) -> np.ndarray:
        """A per-slot energy-flow series.

        Args:
            node_class: ``"bs"`` or ``"user"``.
            field_name: an :class:`EnergyFlows` attribute name.
        """
        attr = {"bs": "bs_flows", "user": "user_flows"}[node_class]
        return np.array(
            [getattr(getattr(m, attr), field_name) for m in self.slots],
            dtype=float,
        )

    # -- series accessors -------------------------------------------------

    def series(self, name: str) -> np.ndarray:
        """A per-slot series by :class:`SlotMetrics` field name."""
        return np.array([getattr(m, name) for m in self.slots], dtype=float)

    def snapshot_series(self, name: str) -> np.ndarray:
        """A per-slot series by :class:`BacklogSnapshot` field name."""
        return np.array(
            [getattr(m.snapshot, name) for m in self.slots], dtype=float
        )

    # -- time averages (Definition 1) ---------------------------------------

    def average_cost(self) -> float:
        """``(1/T) sum_t f(P(t))`` — the Theorem-4 upper bound sample."""
        return float(self.series("cost").mean()) if self.slots else 0.0

    def average_penalty(self) -> float:
        """``(1/T) sum_t [f(P(t)) - lambda sum_s k_s(t)]``."""
        return float(self.series("penalty").mean()) if self.slots else 0.0

    def average_grid_draw_j(self) -> float:
        """``(1/T) sum_t P(t)``."""
        return float(self.series("grid_draw_j").mean()) if self.slots else 0.0

    def totals(self) -> Dict[str, float]:
        """Run-level totals for the summary table."""
        return {
            "admitted_pkts": float(self.series("admitted_pkts").sum()),
            "delivered_pkts": float(self.series("delivered_pkts").sum()),
            "deficit_j": float(self.series("deficit_j").sum()),
            "spill_j": float(self.series("spill_j").sum()),
            "curtailed_links": float(self.series("curtailed_links").sum()),
        }

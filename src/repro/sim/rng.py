"""Deterministic, stream-separated random number generation.

A single scenario seed fans out into independent named streams — one
for topology/placement, one for the stochastic environment (bandwidths,
renewables, grid connectivity), one for controller tie-breaking — via
``numpy``'s ``SeedSequence.spawn``.  Two runs that share a seed see the
*identical* environment sample path even if their controllers draw a
different number of tie-break variates, which is what makes the
upper/lower bound and architecture comparisons paired comparisons.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: The canonical stream names, in spawn order (order is part of the
#: reproducibility contract — do not reorder).
STREAM_NAMES = ("topology", "environment", "controller")


class RngStreams:
    """Named, independent RNG streams derived from one seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        root = np.random.SeedSequence(seed)
        children = root.spawn(len(STREAM_NAMES))
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(STREAM_NAMES, children)
        }

    @property
    def topology(self) -> np.random.Generator:
        """Placement, spectrum access sets, session destinations."""
        return self._streams["topology"]

    @property
    def environment(self) -> np.random.Generator:
        """Bandwidths, renewable outputs, grid connectivity."""
        return self._streams["environment"]

    @property
    def controller(self) -> np.random.Generator:
        """Controller tie-breaking (source/session random picks)."""
        return self._streams["controller"]

    def stream(self, name: str) -> np.random.Generator:
        """A stream by name; raises ``KeyError`` for unknown names."""
        return self._streams[name]

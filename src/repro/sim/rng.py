"""Deterministic, stream-separated random number generation.

A single scenario seed fans out into independent named streams — one
for topology/placement, one for the stochastic environment (bandwidths,
renewables, grid connectivity), one for controller tie-breaking — via
``numpy``'s ``SeedSequence.spawn``.  Two runs that share a seed see the
*identical* environment sample path even if their controllers draw a
different number of tie-break variates, which is what makes the
upper/lower bound and architecture comparisons paired comparisons.

Replication (many independent environments per scenario) reuses the
same machinery one level up: a replication's streams are rooted at
``SeedSequence(seed, spawn_key=key)`` where ``key`` is the spawn key of
a child spawned from the scenario's root sequence
(:func:`spawn_child_keys`).  Spawn keys are plain integer tuples, so a
replication is fully described by ``(seed, spawn_key)`` — pickle-safe,
order-independent, and stable across processes, Python versions and
numpy versions (the ``SeedSequence`` hashing algorithm is part of
numpy's public stability contract).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

#: The canonical stream names, in spawn order (order is part of the
#: reproducibility contract — do not reorder).
STREAM_NAMES = ("topology", "environment", "controller")

#: A ``SeedSequence`` spawn key: the path of child indices from the
#: root sequence.  ``()`` is the root itself.
SpawnKey = Tuple[int, ...]


def spawn_child_keys(
    seed: int, num_children: int, base: Sequence[int] = ()
) -> Tuple[SpawnKey, ...]:
    """Spawn keys of the first ``num_children`` children of a root.

    Derives the children through an actual ``SeedSequence.spawn`` call
    (not arithmetic on tuples) so the derivation is exactly numpy's:
    child ``i`` of ``SeedSequence(seed, spawn_key=base)`` carries
    ``spawn_key == tuple(base) + (i,)``.  The returned keys feed
    :class:`RngStreams` via its ``spawn_key`` argument.
    """
    if num_children < 0:
        raise ValueError(f"num_children must be >= 0, got {num_children}")
    root = np.random.SeedSequence(seed, spawn_key=tuple(base))
    return tuple(tuple(child.spawn_key) for child in root.spawn(num_children))


class RngStreams:
    """Named, independent RNG streams derived from one seed.

    Args:
        seed: the scenario seed.
        spawn_key: optional ``SeedSequence`` spawn key selecting a
            derived child root (replication).  The default ``()`` is
            the root sequence itself, byte-identical to the historical
            single-argument behaviour.
    """

    def __init__(self, seed: int, spawn_key: Sequence[int] = ()) -> None:
        self.seed = seed
        self.spawn_key: SpawnKey = tuple(int(k) for k in spawn_key)
        root = np.random.SeedSequence(seed, spawn_key=self.spawn_key)
        children = root.spawn(len(STREAM_NAMES))
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(STREAM_NAMES, children)
        }

    @property
    def topology(self) -> np.random.Generator:
        """Placement, spectrum access sets, session destinations."""
        return self._streams["topology"]

    @property
    def environment(self) -> np.random.Generator:
        """Bandwidths, renewable outputs, grid connectivity."""
        return self._streams["environment"]

    @property
    def controller(self) -> np.random.Generator:
        """Controller tie-breaking (source/session random picks)."""
        return self._streams["controller"]

    def stream(self, name: str) -> np.random.Generator:
        """A stream by name; raises ``KeyError`` for unknown names."""
        return self._streams[name]

"""Slot-based simulator: engine, RNG streams, metrics, results."""

from repro.sim.rng import RngStreams
from repro.sim.metrics import MetricsCollector, SlotMetrics
from repro.sim.results import SimulationResult
from repro.sim.engine import SlotSimulator, run_simulation
from repro.sim.trace import TraceRecorder

__all__ = [
    "RngStreams",
    "MetricsCollector",
    "SlotMetrics",
    "SimulationResult",
    "SlotSimulator",
    "run_simulation",
    "TraceRecorder",
]

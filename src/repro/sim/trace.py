"""Structured trace recording with CSV/JSON export.

The trace is the debugging view of a run: one row per slot with the
realised random state, the controller's headline decisions, and the
resulting queue aggregates.  Export targets plain ``csv``/``json`` so
runs can be diffed and post-processed without this library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.control.decisions import SlotDecision, SlotObservation
from repro.sim.metrics import SlotMetrics

#: The exported columns, in order.
TRACE_FIELDS = (
    "slot",
    "grid_draw_j",
    "cost",
    "penalty",
    "admitted_pkts",
    "delivered_pkts",
    "scheduled_links",
    "curtailed_links",
    "deficit_j",
    "spill_j",
    "renewable_total_j",
    "connected_users",
    "bs_data_packets",
    "user_data_packets",
    "bs_energy_j",
    "user_energy_j",
    "virtual_packets",
    "bs_renewable_used_j",
    "bs_grid_charge_j",
    "bs_discharge_j",
    "user_renewable_used_j",
    "user_discharge_j",
)


class TraceRecorder:
    """Accumulates one flat record per slot."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, float]] = []

    def record_slot(
        self,
        observation: SlotObservation,
        decision: SlotDecision,
        metrics: SlotMetrics,
    ) -> None:
        """Flatten one slot into a trace row."""
        del decision  # headline decision data already lives in metrics
        snapshot = metrics.snapshot
        self.rows.append(
            {
                "slot": metrics.slot,
                "grid_draw_j": metrics.grid_draw_j,
                "cost": metrics.cost,
                "penalty": metrics.penalty,
                "admitted_pkts": metrics.admitted_pkts,
                "delivered_pkts": metrics.delivered_pkts,
                "scheduled_links": metrics.scheduled_links,
                "curtailed_links": metrics.curtailed_links,
                "deficit_j": metrics.deficit_j,
                "spill_j": metrics.spill_j,
                "renewable_total_j": sum(observation.renewable_j.values()),
                "connected_users": sum(
                    1 for v in observation.grid_connected.values() if v
                ),
                "bs_data_packets": snapshot.bs_data_packets,
                "user_data_packets": snapshot.user_data_packets,
                "bs_energy_j": snapshot.bs_energy_j,
                "user_energy_j": snapshot.user_energy_j,
                "virtual_packets": snapshot.virtual_packets,
                "bs_renewable_used_j": metrics.bs_flows.renewable_used_j,
                "bs_grid_charge_j": metrics.bs_flows.grid_charge_j,
                "bs_discharge_j": metrics.bs_flows.discharge_j,
                "user_renewable_used_j": metrics.user_flows.renewable_used_j,
                "user_discharge_j": metrics.user_flows.discharge_j,
            }
        )

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV and return the path."""
        target = Path(path)
        with target.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=TRACE_FIELDS)
            writer.writeheader()
            writer.writerows(self.rows)
        return target

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the trace as a JSON array and return the path."""
        target = Path(path)
        with target.open("w") as handle:
            json.dump(self.rows, handle, indent=2)
        return target

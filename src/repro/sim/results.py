"""Simulation result container and summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.lyapunov import LyapunovConstants
from repro.queueing.stability import StabilityReport, assess_strong_stability
from repro.sim.metrics import MetricsCollector


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        control_v: the Lyapunov weight used.
        num_slots: horizon length.
        metrics: the full per-slot metric record.
        constants: the run's Lyapunov constants (for bound math).
    """

    control_v: float
    num_slots: int
    metrics: MetricsCollector
    constants: LyapunovConstants

    @property
    def average_cost(self) -> float:
        """Time-averaged energy cost (Theorem 4's ``psi_P3`` sample)."""
        return self.metrics.average_cost()

    @property
    def average_penalty(self) -> float:
        """Time-averaged P2 objective ``avg[f(P) - lambda sum k]``."""
        return self.metrics.average_penalty()

    @property
    def steady_state_cost(self) -> float:
        """Mean cost over the second half of the horizon.

        The first half carries the battery-fill transient (the
        ``V * gamma_max`` thresholds start empty); architectural
        comparisons are sharper on the settled tail.
        """
        costs = self.metrics.series("cost")
        if costs.size == 0:
            return 0.0
        return float(costs[costs.size // 2 :].mean())

    def stability_reports(self) -> Dict[str, StabilityReport]:
        """Empirical strong-stability assessment of the four aggregates."""
        return {
            name: assess_strong_stability(self.metrics.snapshot_series(name))
            for name in (
                "bs_data_packets",
                "user_data_packets",
                "bs_energy_j",
                "user_energy_j",
                "virtual_packets",
            )
        }

    def backlog_series(self, name: str) -> np.ndarray:
        """Convenience passthrough to the snapshot series."""
        return self.metrics.snapshot_series(name)

    def session_satisfaction(self, demand_per_slot: Dict[int, float]) -> Dict[int, float]:
        """Delivered / demanded ratio per session.

        Args:
            demand_per_slot: mean demand per session (packets/slot);
                the simulator's ``model.sessions`` carries it.
        """
        out: Dict[int, float] = {}
        for sid, demand in demand_per_slot.items():
            total_demand = demand * self.num_slots
            delivered = self.metrics.session_delivered.get(sid, 0.0)
            out[sid] = delivered / total_demand if total_demand > 0 else 1.0
        return out

    @property
    def average_delay_slots(self) -> float:
        """Little's-law delay estimate in slots.

        Mean network data backlog divided by mean delivery rate; under
        the paper's null-packet semantics this upper-bounds the real
        per-packet delay (phantom packets inflate the numerator).
        Returns ``inf`` when nothing was delivered.
        """
        backlog = (
            self.metrics.snapshot_series("bs_data_packets")
            + self.metrics.snapshot_series("user_data_packets")
        )
        delivered = self.metrics.series("delivered_pkts")
        rate = float(delivered.mean()) if delivered.size else 0.0
        if rate <= 0:
            return float("inf")
        return float(backlog.mean()) / rate

    def summary(self) -> Dict[str, float]:
        """Headline numbers for tables and the quickstart example."""
        out = {
            "control_v": self.control_v,
            "num_slots": float(self.num_slots),
            "average_cost": self.average_cost,
            "average_penalty": self.average_penalty,
            "average_grid_draw_j": self.metrics.average_grid_draw_j(),
            "average_delay_slots": self.average_delay_slots,
        }
        out.update(self.metrics.totals())
        return out

"""Renewable-generation processes.

The paper models each node's renewable output ``R_i(t)`` as an i.i.d.
process bounded by ``R_max`` (uniform in the evaluation).  Besides the
paper's :class:`UniformRenewableProcess`, this module provides a
deterministic-profile solar process and a Markov-modulated wind process
for the example scenarios, plus the degenerate zero process used by the
"without renewable energy" baselines.  All processes return *energy per
slot* in joules.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.constants import watts_over_slot_to_joules
from repro.units import Joules, Seconds, Watts


class RenewableProcess(abc.ABC):
    """Interface: per-slot renewable energy output of one node."""

    @abc.abstractmethod
    def sample(self, slot: int) -> Joules:
        """Energy harvested in ``slot`` (J), in ``[0, max_output_j]``."""

    @property
    @abc.abstractmethod
    def max_output_j(self) -> Joules:
        """The a.s. upper bound ``R_max * slot_seconds`` (J)."""


class UniformRenewableProcess(RenewableProcess):
    """I.i.d. uniform output on ``[0, max_power_w]`` (the paper's model)."""

    def __init__(
        self, max_power_w: Watts, slot_seconds: Seconds, rng: np.random.Generator
    ) -> None:
        if max_power_w < 0:
            raise ValueError(f"max power must be non-negative, got {max_power_w}")
        if slot_seconds <= 0:
            raise ValueError(f"slot length must be positive, got {slot_seconds}")
        self._max_output_j = watts_over_slot_to_joules(max_power_w, slot_seconds)
        self._rng = rng

    def sample(self, slot: int) -> Joules:
        del slot  # i.i.d. process
        return float(self._rng.uniform(0.0, self._max_output_j))

    @property
    def max_output_j(self) -> Joules:
        return self._max_output_j


class ZeroRenewableProcess(RenewableProcess):
    """No renewable generation (baselines without renewables)."""

    def sample(self, slot: int) -> Joules:
        del slot
        return 0.0

    @property
    def max_output_j(self) -> Joules:
        return 0.0


class DiurnalSolarProcess(RenewableProcess):
    """Solar output following a clipped-sine day/night profile.

    Output peaks at ``peak_power_w`` at mid-day and is zero at night;
    multiplicative uniform noise on ``[1 - noise, 1]`` models cloud
    cover.  One "day" spans ``slots_per_day`` slots.
    """

    def __init__(
        self,
        peak_power_w: Watts,
        slot_seconds: Seconds,
        rng: np.random.Generator,
        slots_per_day: int = 1440,
        noise: float = 0.3,
    ) -> None:
        if peak_power_w < 0:
            raise ValueError(f"peak power must be non-negative, got {peak_power_w}")
        if slot_seconds <= 0:
            raise ValueError(f"slot length must be positive, got {slot_seconds}")
        if slots_per_day < 1:
            raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self._max_output_j = watts_over_slot_to_joules(peak_power_w, slot_seconds)
        self._slots_per_day = slots_per_day
        self._noise = noise
        self._rng = rng

    def sample(self, slot: int) -> Joules:
        phase = 2.0 * math.pi * (slot % self._slots_per_day) / self._slots_per_day
        irradiance = max(0.0, math.sin(phase))
        cloud = self._rng.uniform(1.0 - self._noise, 1.0)
        return self._max_output_j * irradiance * cloud

    @property
    def max_output_j(self) -> Joules:
        return self._max_output_j


class MarkovWindProcess(RenewableProcess):
    """Wind output driven by a small Markov chain over wind regimes.

    States are fractions of ``max_power_w`` (e.g. calm / breezy /
    windy); the chain adds temporal correlation that the i.i.d. model
    lacks, which matters for battery sizing studies.
    """

    def __init__(
        self,
        max_power_w: Watts,
        slot_seconds: Seconds,
        rng: np.random.Generator,
        levels: Sequence[float] = (0.1, 0.5, 0.9),
        persistence: float = 0.8,
    ) -> None:
        if max_power_w < 0:
            raise ValueError(f"max power must be non-negative, got {max_power_w}")
        if slot_seconds <= 0:
            raise ValueError(f"slot length must be positive, got {slot_seconds}")
        if not levels:
            raise ValueError("at least one wind level is required")
        if any(not 0.0 <= lv <= 1.0 for lv in levels):
            raise ValueError(f"levels must lie in [0, 1], got {levels!r}")
        if not 0.0 <= persistence <= 1.0:
            raise ValueError(f"persistence must be in [0, 1], got {persistence}")
        self._max_output_j = watts_over_slot_to_joules(max_power_w, slot_seconds)
        self._levels = list(levels)
        self._persistence = persistence
        self._rng = rng
        self._state = int(rng.integers(0, len(self._levels)))

    def sample(self, slot: int) -> Joules:
        del slot  # the chain carries its own state
        if self._rng.random() > self._persistence:
            self._state = int(self._rng.integers(0, len(self._levels)))
        # Small intra-state jitter so output is not piecewise constant.
        jitter = self._rng.uniform(0.9, 1.0)
        return self._max_output_j * self._levels[self._state] * jitter

    @property
    def max_output_j(self) -> Joules:
        return self._max_output_j

"""Per-node energy consumption model (Eqs. 2 and 23).

A node's slot demand is

    E_i(t) = E_const + E_idle + E_TX(t),

where ``E_TX`` sums transmit energy over its scheduled outgoing
transmissions and constant receive energy over its incoming ones.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.axes import NodeJoules, NodeVec
from repro.config.parameters import NodeParameters
from repro.constants import watts_over_slot_to_joules
from repro.types import NodeId, Transmission
from repro.units import Joules, Seconds, Watts


def transmission_energy_j(
    node: NodeId,
    transmissions: Iterable[Transmission],
    recv_power_w: Watts,
    slot_seconds: Seconds,
) -> Joules:
    """``E_TX_i(t)`` of Eq. (23) for node ``node``.

    Args:
        node: the node whose traffic-serving energy is wanted.
        transmissions: the slot's full transmission schedule.
        recv_power_w: the node's constant receive power ``P_recv``.
        slot_seconds: slot duration ``delta_t``.

    Returns:
        Transmit energy (actual scheduled powers) plus receive energy.
    """
    if slot_seconds <= 0:
        raise ValueError(f"slot length must be positive, got {slot_seconds}")
    energy = 0.0
    for t in transmissions:
        if t.tx == node:
            energy += watts_over_slot_to_joules(t.power_w, slot_seconds)
        elif t.rx == node:
            energy += watts_over_slot_to_joules(recv_power_w, slot_seconds)
    return energy


def node_energy_demand_j(
    node: NodeId,
    node_params: NodeParameters,
    transmissions: Iterable[Transmission],
    slot_seconds: Seconds,
) -> Joules:
    """Total slot demand ``E_i(t)`` of Eq. (2)."""
    return node_params.fixed_energy_j(slot_seconds) + transmission_energy_j(
        node, transmissions, node_params.recv_power_w, slot_seconds
    )


def all_node_demands_j(
    node_params_by_id: Dict[NodeId, NodeParameters],
    transmissions: Iterable[Transmission],
    slot_seconds: Seconds,
) -> Dict[NodeId, Joules]:
    """``E_i(t)`` for every node, in one pass over the schedule."""
    demands = {
        node: params.fixed_energy_j(slot_seconds)
        for node, params in node_params_by_id.items()
    }
    for t in transmissions:
        demands[t.tx] += watts_over_slot_to_joules(t.power_w, slot_seconds)
        demands[t.rx] += watts_over_slot_to_joules(
            node_params_by_id[t.rx].recv_power_w, slot_seconds
        )
    return demands


def all_node_demands_array(
    fixed_energy_j: NodeJoules,
    recv_power_w: NodeVec,
    transmissions: Iterable[Transmission],
    slot_seconds: Seconds,
) -> NodeJoules:
    """``E_i(t)`` for every node as an ``(N,)`` array.

    ``fixed_energy_j`` and ``recv_power_w`` are precomputed per-node
    constants (``NodeParameters.fixed_energy_j`` / ``recv_power_w`` in
    node-id order).  The schedule loop applies the transmission terms
    in the same order as :func:`all_node_demands_j`, so per-node
    accumulation — and therefore every float64 result — is
    bit-identical to the dict path.
    """
    demands = fixed_energy_j.copy()
    for t in transmissions:
        demands[t.tx] += watts_over_slot_to_joules(float(t.power_w), slot_seconds)
        demands[t.rx] += watts_over_slot_to_joules(
            float(recv_power_w[t.rx]), slot_seconds
        )
    return demands

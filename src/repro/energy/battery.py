"""Energy storage units (Eqs. 4 and 7-13 of the paper).

Each node owns one :class:`Battery`.  Per slot the energy manager picks
a :class:`BatteryAction` — a charge amount and a discharge amount, of
which at most one may be positive (the charge-xor-discharge
complementarity constraint (9), which implies (7)-(8)) — and
:meth:`Battery.apply` advances
the energy-queue law ``x(t+1) = x(t) + c(t) - d(t)`` while enforcing
every storage invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FEASIBILITY_EPS
from repro.exceptions import EnergyError
from repro.units import Joules


@dataclass(frozen=True)
class BatteryAction:
    """One slot's charge/discharge decision for a battery (joules).

    Attributes:
        charge_j: ``c_i(t)`` — energy pushed into the unit.
        discharge_j: ``d_i(t)`` — energy drawn from the unit.
    """

    charge_j: Joules = 0.0
    discharge_j: Joules = 0.0

    def __post_init__(self) -> None:
        if self.charge_j < -FEASIBILITY_EPS:
            raise EnergyError(f"negative charge {self.charge_j}")
        if self.discharge_j < -FEASIBILITY_EPS:
            raise EnergyError(f"negative discharge {self.discharge_j}")
        # Complementarity constraint (9): never charge and discharge in
        # the same slot.
        if self.charge_j > FEASIBILITY_EPS and self.discharge_j > FEASIBILITY_EPS:
            raise EnergyError(
                "constraint (9) violated: simultaneous charge "
                f"({self.charge_j} J) and discharge ({self.discharge_j} J)"
            )

    @property
    def net_j(self) -> Joules:
        """Net energy into the unit: ``c(t) - d(t)``."""
        return self.charge_j - self.discharge_j


class Battery:
    """A node's energy storage unit.

    Attributes:
        capacity_j: ``x_max``.
        charge_cap_j: per-slot charging cap ``c_max`` (input energy).
        discharge_cap_j: per-slot discharging cap ``d_max`` (drained
            energy).
        charge_efficiency: fraction of charged input energy stored
            (the paper's Eq. (4) is lossless: 1.0).
        discharge_efficiency: fraction of drained energy delivered to
            the load (1.0 in the paper).
    """

    def __init__(
        self,
        capacity_j: Joules,
        charge_cap_j: Joules,
        discharge_cap_j: Joules,
        initial_level_j: Joules = 0.0,
        charge_efficiency: float = 1.0,
        discharge_efficiency: float = 1.0,
    ) -> None:
        if capacity_j <= 0:
            raise EnergyError(f"capacity must be positive, got {capacity_j}")
        if charge_cap_j < 0 or discharge_cap_j < 0:
            raise EnergyError("charge/discharge caps must be non-negative")
        # Constraint (13): c_max + d_max <= x_max.
        if charge_cap_j + discharge_cap_j > capacity_j + FEASIBILITY_EPS:
            raise EnergyError(
                "constraint (13) violated: "
                f"c_max + d_max = {charge_cap_j + discharge_cap_j} "
                f"> x_max = {capacity_j}"
            )
        if not 0 <= initial_level_j <= capacity_j:
            raise EnergyError(
                f"initial level {initial_level_j} outside [0, {capacity_j}]"
            )
        for name, value in (
            ("charge_efficiency", charge_efficiency),
            ("discharge_efficiency", discharge_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise EnergyError(f"{name} must be in (0, 1], got {value}")
        self.capacity_j = capacity_j
        self.charge_cap_j = charge_cap_j
        self.discharge_cap_j = discharge_cap_j
        self.charge_efficiency = charge_efficiency
        self.discharge_efficiency = discharge_efficiency
        # The level lives in a (possibly shared) numpy buffer so the
        # array-backed NetworkState can vectorize battery updates; a
        # standalone battery owns a private 1-element buffer.
        self._storage = np.zeros(1)
        self._index = 0
        self._level_j = initial_level_j

    @property
    def _level_j(self) -> Joules:
        return float(self._storage[self._index])

    @_level_j.setter
    def _level_j(self, value: Joules) -> None:
        self._storage[self._index] = value

    def bind_storage(self, buffer: np.ndarray, index: int) -> None:
        """Re-home the level into slot ``index`` of a shared array.

        Cold path: called once per node by the array-backed
        ``NetworkState``.  The current level is written into the shared
        buffer, so binding never changes the observable state.
        """
        buffer[index] = self._storage[self._index]
        self._storage = buffer
        self._index = int(index)

    @property
    def level_j(self) -> Joules:
        """Current stored energy ``x_i(t)`` (J)."""
        return self._level_j

    def max_charge_j(self) -> Joules:
        """Constraint (11) on *input* energy: caps and headroom.

        With charge losses, input energy ``c`` stores ``eta_c * c``, so
        the headroom admits ``(x_max - x) / eta_c`` of input.
        """
        headroom = (self.capacity_j - self._level_j) / self.charge_efficiency
        return min(self.charge_cap_j, headroom)

    def max_discharge_j(self) -> Joules:
        """Constraint (12) on drained energy: ``min(d_max, x(t))``."""
        return min(self.discharge_cap_j, self._level_j)

    def max_deliverable_j(self) -> Joules:
        """Most energy one slot's discharge can deliver to the load."""
        return self.discharge_efficiency * self.max_discharge_j()

    def validate(self, action: BatteryAction) -> None:
        """Raise :class:`EnergyError` if ``action`` violates (11)/(12)."""
        if action.charge_j > self.max_charge_j() + FEASIBILITY_EPS:
            raise EnergyError(
                f"constraint (11) violated: charge {action.charge_j} J "
                f"> min(c_max, headroom) = {self.max_charge_j()} J"
            )
        if action.discharge_j > self.max_discharge_j() + FEASIBILITY_EPS:
            raise EnergyError(
                f"constraint (12) violated: discharge {action.discharge_j} J "
                f"> min(d_max, level) = {self.max_discharge_j()} J"
            )

    def apply(self, action: BatteryAction) -> Joules:
        """Advance the energy-queue law (Eq. 4, with efficiencies).

        ``x(t+1) = x(t) + eta_c * c(t) - d(t)``; the load receives
        ``eta_d * d(t)``.

        Returns:
            The new level ``x_i(t+1)``.
        """
        self.validate(action)
        self._level_j += (
            self.charge_efficiency * action.charge_j - action.discharge_j
        )
        # Numerical guard: clamp round-off, never mask real violations
        # (validate() above already rejected those).
        self._level_j = min(max(self._level_j, 0.0), self.capacity_j)
        return self._level_j

"""Convex energy-generation cost functions ``f(P)``.

The paper assumes ``f`` is non-negative, non-decreasing, and convex, and
evaluates with a quadratic ``f(P) = 0.8 P^2 + 0.2 P`` (coefficients in
kWh terms).  Internally the library works in joules, so each class
offers a ``from_kwh_coefficients`` constructor that converts.

Every cost function exposes value, first derivative, and the maximum
derivative over ``[0, cap]`` — the ``gamma_max`` constant that shifts
the battery queues (Section IV-B).
"""

from __future__ import annotations

import abc
import bisect
from typing import List, Sequence, Tuple

from repro.constants import JOULES_PER_KWH
from repro.units import Dollars, DollarsPerJoule, DollarsPerKwh, Joules


class CostFunction(abc.ABC):
    """Interface for a convex, non-decreasing generation cost."""

    @abc.abstractmethod
    def value(self, energy_j: Joules) -> Dollars:
        """Cost of drawing ``energy_j`` joules from the grid in a slot."""

    @abc.abstractmethod
    def derivative(self, energy_j: Joules) -> DollarsPerJoule:
        """Marginal cost ``f'(P)`` at ``energy_j`` (right-derivative)."""

    def max_derivative(self, cap_j: Joules) -> DollarsPerJoule:
        """``gamma_max``: the largest marginal cost on ``[0, cap_j]``.

        Convexity makes ``f'`` non-decreasing, so the maximum sits at
        the cap.
        """
        if cap_j < 0:
            raise ValueError(f"cap must be non-negative, got {cap_j}")
        return self.derivative(cap_j)


class QuadraticCost(CostFunction):
    """``f(P) = a P^2 + b P + c`` with ``P`` in joules."""

    def __init__(self, a: float, b: float, c: float = 0.0) -> None:
        if a < 0:
            raise ValueError(f"quadratic coefficient must be >= 0, got {a}")
        if b < 0:
            raise ValueError(f"linear coefficient must be >= 0, got {b}")
        if c < 0:
            raise ValueError(f"constant coefficient must be >= 0, got {c}")
        self.a = a
        self.b = b
        self.c = c

    @classmethod
    def from_unit_coefficients(
        cls, a: float, b: float, c: float = 0.0, unit_j: float = 1.0
    ) -> "QuadraticCost":
        """Build from coefficients stated for ``P`` in units of ``unit_j``.

        ``f(P) = a (P/u)^2 + b (P/u) + c`` with ``u = unit_j`` joules.
        """
        if unit_j <= 0:
            raise ValueError(f"unit must be positive, got {unit_j}")
        return cls(a=a / (unit_j**2), b=b / unit_j, c=c)

    @classmethod
    def from_kwh_coefficients(
        cls, a_kwh: float, b_kwh: float, c_kwh: float = 0.0
    ) -> "QuadraticCost":
        """Build from coefficients stated for ``P`` in kWh (the paper's)."""
        return cls.from_unit_coefficients(a_kwh, b_kwh, c_kwh, JOULES_PER_KWH)

    def value(self, energy_j: Joules) -> Dollars:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        return self.a * energy_j**2 + self.b * energy_j + self.c

    def derivative(self, energy_j: Joules) -> DollarsPerJoule:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        return 2.0 * self.a * energy_j + self.b

    def inverse_derivative(self, price: DollarsPerJoule) -> Joules:
        """The ``P >= 0`` with ``f'(P) = price`` (0 if price <= b)."""
        if self.a == 0:
            raise ValueError("inverse derivative undefined for linear cost")
        return max(0.0, (price - self.b) / (2.0 * self.a))


class LinearCost(CostFunction):
    """``f(P) = rate * P``: a flat per-joule tariff."""

    def __init__(self, rate_per_j: DollarsPerJoule) -> None:
        if rate_per_j < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_j}")
        self.rate_per_j = rate_per_j

    @classmethod
    def from_kwh_rate(cls, rate_per_kwh: DollarsPerKwh) -> "LinearCost":
        """Build from a $/kWh tariff."""
        return cls(rate_per_kwh / JOULES_PER_KWH)

    def value(self, energy_j: Joules) -> Dollars:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        return self.rate_per_j * energy_j

    def derivative(self, energy_j: Joules) -> DollarsPerJoule:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        return self.rate_per_j


class PiecewiseLinearCost(CostFunction):
    """Convex piecewise-linear tariff with increasing block rates.

    ``breakpoints`` are the block boundaries (J); ``rates`` has one more
    entry than ``breakpoints`` and must be non-decreasing (convexity).
    """

    def __init__(
        self, breakpoints_j: Sequence[Joules], rates_per_j: Sequence[DollarsPerJoule]
    ) -> None:
        if len(rates_per_j) != len(breakpoints_j) + 1:
            raise ValueError(
                f"need len(rates) == len(breakpoints) + 1, got "
                f"{len(rates_per_j)} and {len(breakpoints_j)}"
            )
        if any(b < 0 for b in breakpoints_j):
            raise ValueError("breakpoints must be non-negative")
        if list(breakpoints_j) != sorted(breakpoints_j):
            raise ValueError("breakpoints must be sorted ascending")
        if any(r < 0 for r in rates_per_j):
            raise ValueError("rates must be non-negative")
        if list(rates_per_j) != sorted(rates_per_j):
            raise ValueError("rates must be non-decreasing (convexity)")
        self.breakpoints_j: List[float] = list(breakpoints_j)
        self.rates_per_j: List[float] = list(rates_per_j)

    def value(self, energy_j: Joules) -> Dollars:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        total = 0.0
        prev = 0.0
        for boundary, rate in zip(self.breakpoints_j, self.rates_per_j):
            if energy_j <= boundary:
                return total + rate * (energy_j - prev)
            total += rate * (boundary - prev)
            prev = boundary
        return total + self.rates_per_j[-1] * (energy_j - prev)

    def derivative(self, energy_j: Joules) -> DollarsPerJoule:
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        index = bisect.bisect_right(self.breakpoints_j, energy_j)
        return self.rates_per_j[index]


class TimeOfUseCost:
    """A slot-dependent wrapper: peak hours cost more than off-peak.

    Not itself a :class:`CostFunction` — call :meth:`at_slot` to obtain
    the static cost function in force for one slot.  The multiplier
    schedule repeats with period ``len(multipliers)``.
    """

    def __init__(
        self, base: QuadraticCost, multipliers: Sequence[float]
    ) -> None:
        if not multipliers:
            raise ValueError("at least one multiplier is required")
        if any(m <= 0 for m in multipliers):
            raise ValueError("multipliers must be positive")
        self.base = base
        self.multipliers: Tuple[float, ...] = tuple(multipliers)

    def at_slot(self, slot: int) -> QuadraticCost:
        """The scaled quadratic cost in force during ``slot``."""
        m = self.multipliers[slot % len(self.multipliers)]
        return QuadraticCost(self.base.a * m, self.base.b * m, self.base.c * m)

    def max_derivative(self, cap_j: Joules) -> DollarsPerJoule:
        """``gamma_max`` across all slots (worst multiplier at the cap)."""
        return max(self.at_slot(s).max_derivative(cap_j) for s in range(len(self.multipliers)))

"""Grid connections: the ``omega_i(t)`` process and per-slot draw caps.

Base stations are always grid-connected (``omega = 1``); mobile users
are connected intermittently via an i.i.d. Bernoulli process ``xi_i(t)``
(Eqs. 5-6, Section II-D).  The amount a node draws per slot — demand-
serving ``g_i(t)`` plus battery-charging ``c^g_i(t)`` — is capped by
``p_max`` (constraint 14).

``ScriptedGridConnection`` extends the model with deterministic outage
windows for resilience studies (failure injection): during an outage
the node is disconnected regardless of its Bernoulli draw.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import EnergyError
from repro.units import Joules


class GridConnection:
    """One node's connection to the power grid.

    Attributes:
        draw_cap_j: ``p_max`` — maximum per-slot draw (J).
        connect_prob: probability of ``omega_i(t) = 1``; 1.0 models an
            always-connected base station.
    """

    def __init__(
        self,
        draw_cap_j: Joules,
        connect_prob: float,
        rng: np.random.Generator,
    ) -> None:
        if draw_cap_j < 0:
            raise EnergyError(f"draw cap must be non-negative, got {draw_cap_j}")
        if not 0.0 <= connect_prob <= 1.0:
            raise EnergyError(f"connect_prob must be in [0, 1], got {connect_prob}")
        self.draw_cap_j = draw_cap_j
        self.connect_prob = connect_prob
        self._rng = rng

    @property
    def always_connected(self) -> bool:
        """True for base stations (``omega_i(t) = 1`` for all ``t``)."""
        return self.connect_prob >= 1.0

    def sample_connected(self, slot: int) -> bool:
        """Draw ``omega_i(t)`` for one slot."""
        del slot  # i.i.d. process
        if self.always_connected:
            return True
        if self.connect_prob <= 0.0:
            return False
        return bool(self._rng.random() < self.connect_prob)

    def validate_draw(self, serve_j: Joules, charge_j: Joules, connected: bool) -> None:
        """Check constraint (14) for one slot's grid usage.

        Args:
            serve_j: ``g_i(t)`` — grid energy serving demand directly.
            charge_j: ``c^g_i(t)`` — grid energy charging the battery.
            connected: the realised ``omega_i(t)``.

        Raises:
            EnergyError: on a negative draw, drawing while disconnected,
                or exceeding ``p_max``.
        """
        if serve_j < 0 or charge_j < 0:
            raise EnergyError(
                f"grid draws must be non-negative: serve={serve_j}, charge={charge_j}"
            )
        total = serve_j + charge_j
        if total > 0 and not connected:
            raise EnergyError(
                f"drawing {total} J from the grid while disconnected (omega=0)"
            )
        if total > self.draw_cap_j * (1 + 1e-9):
            raise EnergyError(
                f"constraint (14) violated: draw {total} J > p_max = {self.draw_cap_j} J"
            )


class ScriptedGridConnection(GridConnection):
    """A grid connection with deterministic outage windows.

    Args:
        draw_cap_j: per-slot draw cap ``p_max`` (J).
        connect_prob: baseline connectivity outside outages.
        rng: generator for the Bernoulli draws.
        outages: ``(start_slot, end_slot)`` half-open intervals during
            which the node is forcibly disconnected.
    """

    def __init__(
        self,
        draw_cap_j: Joules,
        connect_prob: float,
        rng: np.random.Generator,
        outages: Sequence[Tuple[int, int]] = (),
    ) -> None:
        super().__init__(draw_cap_j, connect_prob, rng)
        for start, end in outages:
            if start >= end:
                raise EnergyError(
                    f"empty outage window [{start}, {end}); use start < end"
                )
        self.outages = tuple(outages)

    def in_outage(self, slot: int) -> bool:
        """True when ``slot`` falls inside any outage window."""
        return any(start <= slot < end for start, end in self.outages)

    def sample_connected(self, slot: int) -> bool:
        """``omega_i(t)`` forced to 0 inside outage windows."""
        if self.in_outage(slot):
            return False
        return super().sample_connected(slot)

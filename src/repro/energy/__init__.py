"""Energy substrate: batteries, renewables, grid, cost, consumption."""

from repro.energy.battery import Battery, BatteryAction
from repro.energy.renewable import (
    DiurnalSolarProcess,
    MarkovWindProcess,
    RenewableProcess,
    UniformRenewableProcess,
    ZeroRenewableProcess,
)
from repro.energy.grid import GridConnection, ScriptedGridConnection
from repro.energy.cost import (
    CostFunction,
    LinearCost,
    PiecewiseLinearCost,
    QuadraticCost,
    TimeOfUseCost,
)
from repro.energy.consumption import transmission_energy_j, node_energy_demand_j

__all__ = [
    "Battery",
    "BatteryAction",
    "DiurnalSolarProcess",
    "MarkovWindProcess",
    "RenewableProcess",
    "UniformRenewableProcess",
    "ZeroRenewableProcess",
    "GridConnection",
    "ScriptedGridConnection",
    "CostFunction",
    "LinearCost",
    "PiecewiseLinearCost",
    "QuadraticCost",
    "TimeOfUseCost",
    "transmission_energy_j",
    "node_energy_demand_j",
]

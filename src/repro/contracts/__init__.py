"""Runtime contracts for the paper's invariants.

The controller's correctness rests on constraints the paper states but
a simulation could silently violate after a refactor: charge-xor-
discharge complementarity (Eq. 9), battery bounds (Eq. 10), the data,
virtual and shifted-energy queue laws (Eqs. 15, 28, 30, 31), the
single-radio scheduling constraint (Eq. 22), and SINR feasibility of
every scheduled link (Eq. 24).  :class:`ContractChecker` validates all
of them per slot at a configurable strictness — ``off`` (no-op, zero
overhead), ``warn`` (log once per contract), ``strict`` (raise
:class:`ContractViolation` with slot/node/equation context).

See ``docs/contracts.md`` for the contract-to-equation map.
"""

from repro.contracts.checker import ContractChecker, Strictness
from repro.contracts.violations import ContractViolation

__all__ = ["ContractChecker", "ContractViolation", "Strictness"]

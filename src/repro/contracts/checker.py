"""Per-slot validation of the paper's invariants (Eqs. 9-31).

:class:`ContractChecker` is deliberately an *independent* re-derivation
of the laws the simulator implements: the data-queue law (Eq. 15), the
virtual-queue laws (Eqs. 28, 30), the shifted-energy-queue law
(Eq. 31) and the battery dynamics (Eqs. 4, 9-13) are recomputed here
from the slot's decision and the pre-apply state, then compared to
what the simulator actually produced.  A refactor that changes either
side surfaces as a :class:`ContractViolation` instead of a silently
wrong cost curve.

The checker is wired into four layers:

* the engine validates the full state transition after ``apply``;
* the controller validates the final (post-curtailment) decision and
  the demand-coverage balance (Eq. 2);
* each subproblem module (S1-S4) validates its own raw output —
  scheduling feasibility (Eqs. 20-22, 24), admission (Eq. 19),
  routing flow rules (Eqs. 16-17), energy allocation (Eqs. 3, 9-14).

At strictness ``off`` every entry point returns after a single
attribute test, so the hot loop pays no measurable overhead.
"""

from __future__ import annotations

import enum
import logging
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Tuple,
    Union,
)

from repro.constants import FEASIBILITY_EPS
from repro.core.arraystate import LinkArrayMapping, NodeArrayMapping
from repro.contracts.violations import ContractViolation
from repro.phy.sinr import sinr_of_transmission
from repro.types import Link, NodeId, QueueSemantics, SessionId, Transmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.control.decisions import (
        AdmissionDecision,
        EnergyManagementDecision,
        RoutingDecision,
        ScheduleDecision,
        SlotDecision,
        SlotObservation,
    )
    from repro.control.energy_manager import NodeEnergyInputs
    from repro.model import NetworkModel
    from repro.state import NetworkState

logger = logging.getLogger("repro.contracts")

#: Absolute tolerance for energy comparisons (joules).
ENERGY_ATOL = 1e-6
#: Absolute tolerance for queue-backlog comparisons (packets).
QUEUE_ATOL = 1e-6
#: Relative slack granted to SINR feasibility checks.
SINR_RTOL = 1e-7


def _close(a: float, b: float, abs_tol: float) -> bool:
    """Tolerant equality with a relative component for large values.

    The relative tolerance is sized for the loosest solver in the
    pipeline (SLSQP meets its equality constraints to ~1e-8 relative);
    genuine contract violations are orders of magnitude larger.
    """
    return math.isclose(a, b, rel_tol=1e-6, abs_tol=abs_tol)


class Strictness(enum.Enum):
    """How the checker reacts to a violated contract."""

    OFF = "off"
    WARN = "warn"
    STRICT = "strict"


def coerce_strictness(
    value: Union["Strictness", str, None],
) -> "Strictness":
    """Accept a :class:`Strictness`, its string value, or ``None``."""
    if value is None:
        return Strictness.OFF
    if isinstance(value, Strictness):
        return value
    return Strictness(value)


@dataclass(frozen=True)
class PreApplySnapshot:
    """State captured immediately before ``NetworkState.apply``.

    The array-backed state captures mapping adapters over *copies* of
    its arrays (see docs/contracts.md); the reference object path
    captures plain dicts.  Both satisfy the mapping protocols below.
    """

    data_backlogs: MutableMapping[Tuple[NodeId, SessionId], float]
    g_backlogs: Mapping[Link, float]
    battery_levels: Mapping[NodeId, float]


class ContractChecker:
    """Validates the paper's per-slot invariants at a strictness level.

    Args:
        strictness: ``off`` disables all checks, ``warn`` logs the
            first occurrence of each violated contract, ``strict``
            raises :class:`ContractViolation` immediately.
    """

    def __init__(
        self, strictness: Union[Strictness, str, None] = Strictness.STRICT
    ) -> None:
        self.strictness = coerce_strictness(strictness)
        #: Total violations observed (warn mode keeps counting even
        #: after the once-per-contract log line).
        self.violation_count = 0
        #: The violations observed in warn mode, in order.
        self.violations: List[ContractViolation] = []
        self._warned_equations: set = set()

    @property
    def enabled(self) -> bool:
        """False at strictness ``off`` — every check short-circuits."""
        return self.strictness is not Strictness.OFF

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, violation: ContractViolation) -> None:
        self.violation_count += 1
        if self.strictness is Strictness.STRICT:
            raise violation
        self.violations.append(violation)
        if violation.equation not in self._warned_equations:
            self._warned_equations.add(violation.equation)
            logger.warning("contract violated: %s", violation)

    def _violate(
        self,
        equation: str,
        detail: str,
        slot: Optional[int] = None,
        node: Optional[NodeId] = None,
        link: Optional[Link] = None,
    ) -> None:
        self._report(
            ContractViolation(equation, detail, slot=slot, node=node, link=link)
        )

    # ------------------------------------------------------------------
    # S1: scheduling feasibility (Eqs. 20-22, 24)
    # ------------------------------------------------------------------

    def check_schedule(
        self,
        model: "NetworkModel",
        observation: "SlotObservation",
        schedule: "ScheduleDecision",
        slot: Optional[int] = None,
    ) -> None:
        """Radio feasibility (Eqs. 20-22) and SINR (Eq. 24) of S1."""
        if not self.enabled:
            return
        self._check_radio_feasibility(model, schedule.transmissions, slot)
        self._check_sinr_feasibility(model, observation, schedule, slot)

    def _check_radio_feasibility(
        self,
        model: "NetworkModel",
        transmissions: Iterable[Transmission],
        slot: Optional[int],
    ) -> None:
        usage: Dict[NodeId, int] = {}
        band_usage: Dict[Tuple[NodeId, int], int] = {}
        for t in transmissions:
            if t.tx == t.rx:
                self._violate(
                    "Eq. 22",
                    f"self-loop transmission on band {t.band}",
                    slot=slot,
                    node=t.tx,
                )
            for node in (t.tx, t.rx):
                usage[node] = usage.get(node, 0) + 1
                band_usage[(node, t.band)] = band_usage.get((node, t.band), 0) + 1
        for node, count in usage.items():
            radios = model.nodes[node].radio.num_radios
            if count > radios:
                self._violate(
                    "Eq. 22",
                    f"node participates in {count} transmissions "
                    f"but has {radios} radio(s)",
                    slot=slot,
                    node=node,
                )
        for (node, band), count in band_usage.items():
            if count > 1:
                self._violate(
                    "Eqs. 20-21",
                    f"node active {count} times on band {band} "
                    "(one activity per node per band)",
                    slot=slot,
                    node=node,
                )

    def _check_sinr_feasibility(
        self,
        model: "NetworkModel",
        observation: "SlotObservation",
        schedule: "ScheduleDecision",
        slot: Optional[int],
    ) -> None:
        gains = (
            observation.gains
            if observation.gains is not None
            else model.topology.gains_lookup()
        )
        threshold = model.params.sinr_threshold
        for t in schedule.transmissions:
            cap = model.max_power_w[t.tx]
            if t.power_w < -FEASIBILITY_EPS or t.power_w > cap * (1 + SINR_RTOL):
                self._violate(
                    "Eq. 24",
                    f"transmit power {t.power_w} W outside [0, {cap}] W",
                    slot=slot,
                    node=t.tx,
                    link=t.link,
                )
                continue
            noise = model.noise_power_w(observation.bands.bandwidth(t.band))
            value = sinr_of_transmission(
                gains, t, schedule.transmissions, noise
            )
            if value < threshold * (1 - SINR_RTOL):
                self._violate(
                    "Eq. 24",
                    f"scheduled link decodes at SINR {value:.6g} "
                    f"< threshold {threshold:.6g} on band {t.band}",
                    slot=slot,
                    link=t.link,
                )

    # ------------------------------------------------------------------
    # S2: admission (Eq. 19)
    # ------------------------------------------------------------------

    def check_admission(
        self,
        model: "NetworkModel",
        admission: "AdmissionDecision",
        slot: Optional[int] = None,
    ) -> None:
        """Single-source admission within ``[0, K_max]`` (Eq. 19)."""
        if not self.enabled:
            return
        bs_set = set(model.bs_ids)
        k_max = {s.session_id: s.k_max for s in model.sessions}  # noqa: R040 - S-sized dict (S stays O(10)); contracts are a diagnostic layer, off by default
        for session, source in admission.sources.items():
            if source not in bs_set:
                self._violate(
                    "Eq. 19",
                    f"session {session} sourced at non-base-station",
                    slot=slot,
                    node=source,
                )
            admitted = float(admission.admitted.get(session, 0.0))
            cap = float(k_max.get(session, 0.0))
            if admitted < -QUEUE_ATOL or admitted > cap + QUEUE_ATOL:
                self._violate(
                    "Eq. 19",
                    f"session {session} admits {admitted} pkts "
                    f"outside [0, {cap}]",
                    slot=slot,
                    node=source,
                )
            split = admission.split.get(session)
            if split is not None:
                total = sum(k for _, k in split)
                if not _close(total, admitted, QUEUE_ATOL):
                    self._violate(
                        "Eq. 19",
                        f"session {session} split admission sums to "
                        f"{total} != admitted {admitted}",
                        slot=slot,
                    )

    # ------------------------------------------------------------------
    # S3: routing flow rules (Eqs. 16-17)
    # ------------------------------------------------------------------

    def check_routing(
        self,
        model: "NetworkModel",
        routing: "RoutingDecision",
        admission: "AdmissionDecision",
        slot: Optional[int] = None,
    ) -> None:
        """Non-negative rates and the flow rules (Eqs. 16-17)."""
        if not self.enabled:
            return
        destinations = model.session_destinations()
        for (tx, rx, session), rate in routing.rates.items():
            if rate < -QUEUE_ATOL or not math.isfinite(rate):
                self._violate(
                    "Eq. 25",
                    f"routing rate {rate} pkts for session {session} "
                    "is negative or non-finite",
                    slot=slot,
                    link=(tx, rx),
                )
            if tx == destinations.get(session):
                self._violate(
                    "Eq. 17",
                    f"destination of session {session} re-emits packets",
                    slot=slot,
                    link=(tx, rx),
                )
            if rx == admission.sources.get(session):
                self._violate(
                    "Eq. 16",
                    f"source of session {session} receives packets",
                    slot=slot,
                    link=(tx, rx),
                )

    # ------------------------------------------------------------------
    # S4: energy allocation (Eqs. 3, 9-14)
    # ------------------------------------------------------------------

    def check_energy(
        self,
        inputs: Iterable["NodeEnergyInputs"],
        decision: "EnergyManagementDecision",
        slot: Optional[int] = None,
    ) -> None:
        """Per-node source balances and caps of the S4 output."""
        if not self.enabled:
            return
        bs_draw = 0.0
        for node_inputs in inputs:
            node = node_inputs.node
            alloc = decision.allocations.get(node)
            if alloc is None:
                self._violate(
                    "Eq. 2",
                    "S4 returned no allocation for the node",
                    slot=slot,
                    node=node,
                )
                continue
            for name, value in (
                ("renewable_serve_j", alloc.renewable_serve_j),
                ("renewable_charge_j", alloc.renewable_charge_j),
                ("grid_serve_j", alloc.grid_serve_j),
                ("grid_charge_j", alloc.grid_charge_j),
                ("discharge_j", alloc.discharge_j),
                ("spill_j", alloc.spill_j),
            ):
                if value < -ENERGY_ATOL:
                    self._violate(
                        "Eq. 14",
                        f"negative energy flow {name}={value} J",
                        slot=slot,
                        node=node,
                    )
            # Eq. 3 (with the documented spill extension): the harvest
            # splits exactly into serve + charge + spill.
            used = (
                alloc.renewable_serve_j
                + alloc.renewable_charge_j
                + alloc.spill_j
            )
            if not _close(used, node_inputs.renewable_j, ENERGY_ATOL):
                self._violate(
                    "Eq. 3",
                    f"renewable split {used} J != harvest "
                    f"{node_inputs.renewable_j} J",
                    slot=slot,
                    node=node,
                )
            # Eq. 14: grid draw within the (connectivity-gated) cap.
            if alloc.grid_draw_j > node_inputs.usable_grid_j + ENERGY_ATOL:
                self._violate(
                    "Eq. 14",
                    f"grid draw {alloc.grid_draw_j} J exceeds usable cap "
                    f"{node_inputs.usable_grid_j} J",
                    slot=slot,
                    node=node,
                )
            # Eqs. 11-12: charge/discharge within the effective caps.
            if alloc.charge_j > node_inputs.charge_cap_j + ENERGY_ATOL:
                self._violate(
                    "Eq. 11",
                    f"charge {alloc.charge_j} J exceeds effective cap "
                    f"{node_inputs.charge_cap_j} J",
                    slot=slot,
                    node=node,
                )
            if alloc.discharge_j > node_inputs.discharge_cap_j + ENERGY_ATOL:
                self._violate(
                    "Eq. 12",
                    f"discharge {alloc.discharge_j} J exceeds effective "
                    f"cap {node_inputs.discharge_cap_j} J",
                    slot=slot,
                    node=node,
                )
            # Eq. 9: charge-xor-discharge complementarity.
            if (
                alloc.charge_j > ENERGY_ATOL
                and alloc.discharge_j > ENERGY_ATOL
            ):
                self._violate(
                    "Eq. 9",
                    f"simultaneous charge ({alloc.charge_j} J) and "
                    f"discharge ({alloc.discharge_j} J)",
                    slot=slot,
                    node=node,
                )
            # Eq. 2: demand exactly covered by the three sources.
            if not _close(
                alloc.demand_served_j, node_inputs.demand_j, ENERGY_ATOL
            ):
                self._violate(
                    "Eq. 2",
                    f"served {alloc.demand_served_j} J != demand "
                    f"{node_inputs.demand_j} J",
                    slot=slot,
                    node=node,
                )
            if node_inputs.is_base_station:
                bs_draw += alloc.grid_draw_j
        if not _close(bs_draw, decision.bs_grid_draw_j, ENERGY_ATOL):
            self._violate(
                "Eq. 5",
                f"P(t) = {decision.bs_grid_draw_j} J != sum of "
                f"base-station draws {bs_draw} J",
                slot=slot,
            )

    # ------------------------------------------------------------------
    # Controller: demand coverage after curtailment (Eq. 2)
    # ------------------------------------------------------------------

    def check_demand_coverage(
        self,
        demands_j: Mapping[NodeId, float],
        deficit_j: Mapping[NodeId, float],
        decision: "EnergyManagementDecision",
        slot: Optional[int] = None,
    ) -> None:
        """Every node's slot demand is served, less the recorded deficit.

        The controller's curtailment pass (documented extension of
        Eq. 2) may shed base demand that no supply can cover; the shed
        amount must be accounted in ``deficit_j``, never silently lost.
        """
        if not self.enabled:
            return
        for node, demand in demands_j.items():
            alloc = decision.allocations.get(node)
            if alloc is None:
                self._violate(
                    "Eq. 2", "node missing from S4 output", slot=slot, node=node
                )
                continue
            expected = max(0.0, demand - deficit_j.get(node, 0.0))
            if not _close(alloc.demand_served_j, expected, ENERGY_ATOL):
                self._violate(
                    "Eq. 2",
                    f"served {alloc.demand_served_j} J != demand "
                    f"{demand} J minus deficit "
                    f"{deficit_j.get(node, 0.0)} J",
                    slot=slot,
                    node=node,
                )

    # ------------------------------------------------------------------
    # Engine: the full state transition
    # ------------------------------------------------------------------

    def capture(self, state: "NetworkState") -> Optional[PreApplySnapshot]:
        """Snapshot the queue/battery state before ``apply``."""
        if not self.enabled:
            return None
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            return PreApplySnapshot(
                data_backlogs=arrays.q_mapping(copy=True),
                g_backlogs=LinkArrayMapping(
                    arrays.g.copy(), arrays.links, arrays.link_pos
                ),
                battery_levels=NodeArrayMapping(arrays.battery_level.copy()),
            )
        return PreApplySnapshot(
            data_backlogs=state.data_queues.snapshot(),
            g_backlogs=state.virtual_queues.snapshot(),
            battery_levels=state.battery_levels(),
        )

    def check_transition(
        self,
        model: "NetworkModel",
        state: "NetworkState",
        decision: "SlotDecision",
        pre: Optional[PreApplySnapshot],
        slot: int,
        enforce_complementarity: bool = True,
    ) -> None:
        """Validate the post-``apply`` state against the queue laws."""
        if not self.enabled or pre is None:
            return
        self._check_data_queue_law(state, decision, pre, slot)
        self._check_virtual_queue_law(state, decision, pre, slot)
        self._check_battery_transition(
            model, state, decision, pre, slot, enforce_complementarity
        )

    def _effective_rates(
        self,
        state: "NetworkState",
        pre: PreApplySnapshot,
        rates: Mapping[Tuple[NodeId, NodeId, SessionId], float],
    ) -> Dict[Tuple[NodeId, NodeId, SessionId], float]:
        """Independent re-derivation of the configured queue semantics.

        ``PAPER`` passes scheduled rates through (the null-packet
        idealisation of Eq. 15); ``PACKET_ACCURATE`` rescales each
        transmitter's outgoing rates so they never exceed its pre-slot
        backlog.
        """
        if state.data_queues.semantics is QueueSemantics.PAPER:
            return dict(rates)
        outgoing: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, _rx, session), rate in rates.items():
            key = (tx, session)
            outgoing[key] = outgoing.get(key, 0.0) + rate
        effective: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in rates.items():
            total = outgoing[(tx, session)]
            if total <= 0:
                effective[(tx, rx, session)] = 0.0
                continue
            available = pre.data_backlogs.get((tx, session), 0.0)
            effective[(tx, rx, session)] = rate * min(1.0, available / total)
        return effective

    def _check_data_queue_law(
        self,
        state: "NetworkState",
        decision: "SlotDecision",
        pre: PreApplySnapshot,
        slot: int,
    ) -> None:
        """Eq. 15: ``Q(t+1) = max(Q(t) - service, 0) + arrivals``."""
        transfer = self._effective_rates(state, pre, decision.routing.rates)
        service: Dict[Tuple[NodeId, SessionId], float] = {}
        arrivals: Dict[Tuple[NodeId, SessionId], float] = {}
        for (tx, rx, session), rate in transfer.items():
            service[(tx, session)] = service.get((tx, session), 0.0) + rate
            arrivals[(rx, session)] = arrivals.get((rx, session), 0.0) + rate
        for session, pairs in decision.admission.as_queue_arrivals().items():
            for source, admitted in pairs:
                key = (source, session)
                arrivals[key] = arrivals.get(key, 0.0) + admitted

        post = state.data_queues.snapshot()
        for key, backlog in post.items():
            if backlog < -QUEUE_ATOL:
                self._violate(
                    "Eq. 15",
                    f"negative backlog {backlog} pkts for session {key[1]}",
                    slot=slot,
                    node=key[0],
                )
            expected = max(
                pre.data_backlogs.get(key, 0.0) - service.get(key, 0.0), 0.0
            ) + arrivals.get(key, 0.0)
            if not _close(backlog, expected, QUEUE_ATOL):
                self._violate(
                    "Eq. 15",
                    f"Q[{key[0]}][{key[1]}] = {backlog} pkts, expected "
                    f"{expected} pkts from the queueing law",
                    slot=slot,
                    node=key[0],
                )

    def _check_virtual_queue_law(
        self,
        state: "NetworkState",
        decision: "SlotDecision",
        pre: PreApplySnapshot,
        slot: int,
    ) -> None:
        """Eqs. 28/30: the ``G`` update and ``H = beta * G``."""
        arrivals = decision.routing.link_totals()
        service = decision.schedule.link_service_pkts
        beta = state.virtual_queues.beta
        post = state.virtual_queues.snapshot()
        for link, backlog in post.items():
            if backlog < -QUEUE_ATOL:
                self._violate(
                    "Eq. 28",
                    f"negative virtual backlog {backlog} pkts",
                    slot=slot,
                    link=link,
                )
            expected = max(
                pre.g_backlogs.get(link, 0.0) - service.get(link, 0.0), 0.0
            ) + arrivals.get(link, 0.0)
            if not _close(backlog, expected, QUEUE_ATOL):
                self._violate(
                    "Eq. 28",
                    f"G = {backlog} pkts, expected {expected} pkts "
                    "from the virtual-queue law",
                    slot=slot,
                    link=link,
                )
            h = state.virtual_queues.h(link)
            if not _close(h, beta * backlog, QUEUE_ATOL):
                self._violate(
                    "Eq. 30",
                    f"H = {h} != beta * G = {beta * backlog}",
                    slot=slot,
                    link=link,
                )

    def _check_battery_transition(
        self,
        model: "NetworkModel",
        state: "NetworkState",
        decision: "SlotDecision",
        pre: PreApplySnapshot,
        slot: int,
        enforce_complementarity: bool,
    ) -> None:
        """Eqs. 4, 9-12, 31: batteries and shifted energy queues."""
        for node, battery in state.batteries.items():
            level = battery.level_j
            # Eq. 10: the level stays within [0, x_max].
            if level < -ENERGY_ATOL or level > battery.capacity_j + ENERGY_ATOL:
                self._violate(
                    "Eq. 10",
                    f"battery level {level} J outside "
                    f"[0, {battery.capacity_j}] J",
                    slot=slot,
                    node=node,
                )
            alloc = decision.energy.allocations.get(node)
            if alloc is None:
                continue
            charge = alloc.charge_j
            drained = alloc.discharge_j / battery.discharge_efficiency
            if not enforce_complementarity:
                # The relaxed LP bound drops Eq. 9; the simulator nets
                # the two flows before they reach the battery.
                net = charge - drained
                charge, drained = max(net, 0.0), max(-net, 0.0)
            elif charge > ENERGY_ATOL and drained > ENERGY_ATOL:
                self._violate(
                    "Eq. 9",
                    f"simultaneous charge ({charge} J) and battery "
                    f"drain ({drained} J)",
                    slot=slot,
                    node=node,
                )
            level_before = pre.battery_levels.get(node, 0.0)
            # Eq. 11/12 against the *pre-apply* level the caps were
            # computed from.
            headroom = (
                battery.capacity_j - level_before
            ) / battery.charge_efficiency
            if charge > min(battery.charge_cap_j, headroom) + ENERGY_ATOL:
                self._violate(
                    "Eq. 11",
                    f"charge {charge} J exceeds min(c_max, headroom) = "
                    f"{min(battery.charge_cap_j, headroom)} J",
                    slot=slot,
                    node=node,
                )
            if drained > min(battery.discharge_cap_j, level_before) + ENERGY_ATOL:
                self._violate(
                    "Eq. 12",
                    f"drain {drained} J exceeds min(d_max, level) = "
                    f"{min(battery.discharge_cap_j, level_before)} J",
                    slot=slot,
                    node=node,
                )
            # Eq. 4 (with efficiencies): the level advanced by exactly
            # the applied action, up to the clamp absorbing round-off.
            expected = level_before + battery.charge_efficiency * charge - drained
            expected = min(max(expected, 0.0), battery.capacity_j)
            if not _close(level, expected, ENERGY_ATOL):
                self._violate(
                    "Eq. 4",
                    f"battery level {level} J, expected {expected} J "
                    "from the energy-queue law",
                    slot=slot,
                    node=node,
                )
            # Eq. 31: the shifted queue mirrors the battery exactly.
            queue = state.energy_queues[node]
            if not _close(queue.level_j, level, ENERGY_ATOL) or not _close(
                queue.z, level - queue.shift_j, ENERGY_ATOL
            ):
                self._violate(
                    "Eq. 31",
                    f"shifted queue z = {queue.z} J diverged from "
                    f"x - shift = {level - queue.shift_j} J",
                    slot=slot,
                    node=node,
                )

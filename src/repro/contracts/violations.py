"""The structured exception carried by every contract failure."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import ReproError
from repro.types import Link, NodeId


class ContractViolation(ReproError):
    """A paper invariant failed at runtime.

    Attributes:
        equation: the paper equation (or named contract) that failed,
            e.g. ``"Eq. 9"`` or ``"energy-balance"``.
        slot: slot index at which the violation was observed.
        node: offending node id, when the contract is node-local.
        link: offending ``(tx, rx)`` link, when link-local.
        detail: human-readable description of the failed predicate.
    """

    def __init__(
        self,
        equation: str,
        detail: str,
        slot: Optional[int] = None,
        node: Optional[NodeId] = None,
        link: Optional[Link] = None,
    ) -> None:
        self.equation = equation
        self.detail = detail
        self.slot = slot
        self.node = node
        self.link = link
        super().__init__(self._render())

    def _render(self) -> str:
        where: Tuple[str, ...] = ()
        if self.slot is not None:
            where += (f"slot {self.slot}",)
        if self.node is not None:
            where += (f"node {self.node}",)
        if self.link is not None:
            where += (f"link {self.link}",)
        location = ", ".join(where) if where else "unlocated"
        return f"[{self.equation}] {self.detail} ({location})"

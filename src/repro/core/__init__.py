"""Lyapunov core: drift constants, penalty terms, and optimality bounds."""

from repro.core.lyapunov import LyapunovConstants, compute_constants, lyapunov_value
from repro.core.drift import (
    DriftTerms,
    battery_drift_quadratic_term,
    compute_drift_terms,
)
from repro.core.bounds import BoundReport, RelaxedLpController, lower_bound_cost
from repro.core.theory import (
    PlateauCheck,
    TheoryPredictions,
    fill_time_slots,
    predict,
    verify_bs_plateau,
)

__all__ = [
    "LyapunovConstants",
    "compute_constants",
    "lyapunov_value",
    "DriftTerms",
    "battery_drift_quadratic_term",
    "compute_drift_terms",
    "BoundReport",
    "RelaxedLpController",
    "lower_bound_cost",
    "PlateauCheck",
    "TheoryPredictions",
    "fill_time_slots",
    "predict",
    "verify_bs_plateau",
]

"""Struct-of-arrays storage for the hot per-slot simulator state.

The observe -> decide -> apply loop touches every data queue ``Q_i^s``
(Eq. 15), every virtual queue ``G_ij``/``H_ij`` (Eqs. 28/30), and every
shifted battery queue ``z_i`` (Eq. 31) once per slot.  Keeping those
quantities in per-key Python objects makes the loop interpreter-bound,
so this module packs them into dense numpy arrays over *frozen* indices:

* nodes: row ``i`` is node id ``i`` (node ids are dense ``0..N-1``),
* sessions: column ``c`` is ``sessions[c].session_id`` in
  ``model.sessions`` order,
* links: position ``p`` is ``model.topology.candidate_links[p]``.

``ArrayState`` owns the arrays and the vectorized update kernels; the
queueing banks, ``NetworkState`` and the contract checker all share the
same buffers.  Numerical policy: every kernel applies the *same*
elementwise IEEE-754 operations, in the same order, as the scalar code
it replaces, and aggregates use :func:`seq_sum` (a strict left-to-right
accumulation) instead of numpy's pairwise ``sum`` — so results stay
bit-identical to the historical object path.

The read-only/mutable mapping adapters at the bottom let existing
dict-shaped consumers (relaxed-LP controller, drift diagnostics,
contract checker) read array views through the plain ``Mapping``
protocol without copying into dicts.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingBase
from collections.abc import MutableMapping as MutableMappingBase
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.axes import (
    AnyArray,
    LinkToNode,
    LinkPackets,
    LinkVec,
    NodeIds,
    NodeJoules,
    NodeSessionMat,
    NodeVec,
    QueueMask,
    QueuePackets,
)
from repro.constants import FEASIBILITY_EPS
from repro.exceptions import EnergyError
from repro.types import Link, NodeId, SessionId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see state.py)
    from repro.core.lyapunov import LyapunovConstants
    from repro.model import NetworkModel

QueueKey = Tuple[NodeId, SessionId]


def seq_sum(values: AnyArray) -> float:
    """Strict left-to-right sum of ``values`` (raveled in C order).

    ``np.sum`` uses pairwise summation, which is *not* bit-identical to
    Python's sequential ``sum``.  ``np.add.accumulate`` is sequential,
    and Python's ``sum`` starts from int ``0`` whose first addition
    ``0 + x0 == x0`` is exact — so the two match bit for bit.
    """
    flat = np.ravel(values)
    if flat.size == 0:
        return 0.0
    return float(np.add.accumulate(flat)[-1])


class NodeArrayMapping(MappingBase):
    """Read-only ``{node_id: value}`` view over an ``(N,)`` array.

    Node ids are dense ``0..N-1``, so the array index *is* the key.
    Values come back as Python ``float``/``bool`` scalars to match the
    dicts this adapter replaces.
    """

    __slots__ = ("_values", "_convert")

    def __init__(self, values: NodeVec) -> None:
        self._values = values
        self._convert = bool if values.dtype == np.bool_ else float

    @property
    def values_array(self) -> NodeVec:
        """The underlying ``(N,)`` array (node id = index).

        The controller's batched S4 assembly reads this directly
        instead of materialising ``N`` scalars through ``__getitem__``.
        """
        return self._values

    def __getitem__(self, node: NodeId) -> Any:
        try:
            index = int(node)
        except (TypeError, ValueError):
            raise KeyError(node) from None
        if not 0 <= index < self._values.shape[0]:
            raise KeyError(node)
        return self._convert(self._values[index])

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(self._values.shape[0]))

    def __len__(self) -> int:
        return self._values.shape[0]


class LinkArrayMapping(MappingBase):
    """Read-only ``{link: value}`` view over an ``(L,)`` array.

    ``links`` is the frozen link index the array is laid out over; the
    scheduler and router test ``mapping.links is candidate_links`` to
    unlock their vectorized fast paths on ``values_array`` directly.
    """

    __slots__ = ("_values", "_links", "_pos")

    def __init__(
        self,
        values: LinkVec,
        links: Tuple[Link, ...],
        positions: Dict[Link, int],
    ) -> None:
        self._values = values
        self._links = links
        self._pos = positions

    @property
    def links(self) -> Tuple[Link, ...]:
        return self._links

    @property
    def values_array(self) -> LinkVec:
        return self._values

    def __getitem__(self, link: Link) -> float:
        try:
            return float(self._values[self._pos[link]])
        except (KeyError, TypeError):
            raise KeyError(link) from None

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __len__(self) -> int:
        return len(self._links)


class QueueArrayMapping(MutableMappingBase):
    """``{(node, session): backlog}`` view over an ``(N, S)`` array.

    Iterates node-major over *valid* (non-destination) cells, matching
    the key order of the dict snapshots it replaces.  Mutable so the
    contract tests can perturb captured pre-state; the key set itself
    is frozen (no insertion/deletion).
    """

    __slots__ = ("_values", "_keys", "_pos")

    def __init__(
        self,
        values: NodeSessionMat,
        keys: Tuple[QueueKey, ...],
        positions: Dict[QueueKey, Tuple[int, int]],
    ) -> None:
        self._values = values
        self._keys = keys
        self._pos = positions

    def __getitem__(self, key: QueueKey) -> float:
        try:
            row, col = self._pos[key]
        except (KeyError, TypeError):
            raise KeyError(key) from None
        return float(self._values[row, col])

    def __setitem__(self, key: QueueKey, value: float) -> None:
        try:
            row, col = self._pos[key]
        except (KeyError, TypeError):
            raise KeyError(key) from None
        self._values[row, col] = value

    def __delitem__(self, key: QueueKey) -> None:
        raise TypeError("QueueArrayMapping has a frozen key set")

    def __iter__(self) -> Iterator[QueueKey]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


class ArrayState:
    """Dense per-slot state: ``Q``, ``G``, battery levels, caps, ``z`` shift.

    Attributes:
        sessions: session ids in column order.
        session_col: session id -> column.
        links: frozen link index (``topology.candidate_links``).
        link_pos: link -> position in ``links``.
        link_tx / link_rx: ``(L,)`` int arrays of link endpoints.
        q: ``(N, S)`` data backlogs in packets; destination cells are
            pinned at exactly ``0.0``.
        q_valid / q_invalid: boolean masks over ``q``.
        g: ``(L,)`` virtual backlogs ``G_ij`` in packets
            (``H = beta * G`` is derived, never stored).
        battery_level: ``(N,)`` battery levels ``x_i`` in joules —
            shared storage for both :class:`~repro.energy.battery.Battery`
            and :class:`~repro.queueing.energy_queue.ShiftedEnergyQueue`.
        z_shift: ``(N,)`` shifts ``V * gamma_max + d_max_i`` so that
            ``z = battery_level - z_shift`` (Eq. 31).
        capacity_j / charge_cap_j / discharge_cap_j: ``(N,)`` battery
            bounds ``x_max`` / ``c_max`` / ``d_max`` (Eqs. 10-13).
        charge_efficiency / discharge_efficiency: ``(N,)`` conversion
            losses ``eta_c`` / ``eta_d``.
        bs_rows / user_rows: row indices for base stations and users.
    """

    # Axis declarations feeding the R020-R023 analyzer: attribute
    # reads like ``arrays.q`` resolve to these named layouts in every
    # module that threads an ArrayState.
    link_tx: LinkToNode
    link_rx: LinkToNode
    q: QueuePackets
    q_valid: QueueMask
    q_invalid: QueueMask
    g: LinkPackets
    battery_level: NodeJoules
    z_shift: NodeJoules
    capacity_j: NodeJoules
    charge_cap_j: NodeJoules
    discharge_cap_j: NodeJoules
    charge_efficiency: NodeVec
    discharge_efficiency: NodeVec
    bs_rows: NodeIds
    user_rows: NodeIds

    def __init__(self, model: "NetworkModel", constants: "LyapunovConstants") -> None:
        """Freeze the node/session/link indices and allocate the arrays.

        Cold path: runs once per simulation, before the slot loop.
        """
        params = model.params
        num_nodes = model.num_nodes
        sessions = tuple(s.session_id for s in model.sessions)
        destinations = model.session_destinations()
        links = model.topology.candidate_links

        self.num_nodes = num_nodes
        self.sessions = sessions
        self.session_col: Dict[SessionId, int] = {
            sid: col for col, sid in enumerate(sessions)
        }
        self.destinations = destinations
        self.links = links
        # The frozen endpoint arrays come straight off the topology —
        # both builders precompute them, so no per-link Python loop runs
        # here; the ``link -> position`` dict is built lazily because
        # only the scalar router paths read it.
        self.link_tx, self.link_rx = model.topology.link_arrays()
        self._link_pos: Optional[Dict[Link, int]] = None

        self.q = np.zeros((num_nodes, len(sessions)))  # noqa: R041 - (N, S) data backlog is the paper's state itself, not an all-pairs matrix; S stays O(10) while N scales
        valid = np.ones((num_nodes, len(sessions)), dtype=bool)  # noqa: R041 - (N, S) mask over the data backlog, same shape argument as q above
        for sid, dest in destinations.items():
            if 0 <= dest < num_nodes:
                valid[dest, self.session_col[sid]] = False
        self.q_valid = valid
        self.q_invalid = ~valid

        self.g = np.zeros(len(links))

        self.battery_level = np.zeros(num_nodes)
        self.z_shift = np.zeros(num_nodes)
        self.capacity_j = np.zeros(num_nodes)
        self.charge_cap_j = np.zeros(num_nodes)
        self.discharge_cap_j = np.zeros(num_nodes)
        self.charge_efficiency = np.ones(num_nodes)
        self.discharge_efficiency = np.ones(num_nodes)
        for node in model.nodes:
            energy = node.energy
            row = node.node_id
            self.capacity_j[row] = energy.battery_capacity_j
            self.charge_cap_j[row] = energy.charge_cap_j
            self.discharge_cap_j[row] = energy.discharge_cap_j
            self.charge_efficiency[row] = energy.charge_efficiency
            self.discharge_efficiency[row] = energy.discharge_efficiency
            # Same expression (and evaluation order) as
            # ShiftedEnergyQueue.shift_j, so z values match bit for bit.
            self.z_shift[row] = (
                params.control_v * constants.gamma_max + energy.discharge_cap_j
            )

        self.bs_rows = np.fromiter(
            model.bs_ids, dtype=np.intp, count=len(model.bs_ids)
        )
        self.user_rows = np.fromiter(
            model.user_ids, dtype=np.intp, count=len(model.user_ids)
        )
        self._q_keys: Tuple[QueueKey, ...] = ()
        self._q_pos: Dict[QueueKey, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Index helpers

    @property
    def link_pos(self) -> Dict[Link, int]:
        """``link -> position`` over the frozen link index (lazy).

        Only the scalar router paths and a handful of boundary
        conversions read this; the array paths index by position
        directly, so large-L runs never pay for the dict.
        """
        cached = self._link_pos
        if cached is None:
            cached = {link: p for p, link in enumerate(self.links)}
            self._link_pos = cached
        return cached

    def queue_keys(self) -> Tuple[QueueKey, ...]:
        """Valid ``(node, session)`` keys, node-major (lazily built)."""
        if not self._q_keys and self.q_valid.any():
            keys = []
            pos: Dict[QueueKey, Tuple[int, int]] = {}
            for row in range(self.num_nodes):  # noqa: R040 - built once and cached (self._q_keys); only the dict-shaped selectors and snapshots read it, the array kernels index (N, S) directly
                for col, sid in enumerate(self.sessions):  # noqa: R040 - inner S-sized loop of the one-time key build above
                    if self.q_valid[row, col]:
                        keys.append((row, sid))
                        pos[(row, sid)] = (row, col)
            self._q_keys = tuple(keys)
            self._q_pos = pos
        return self._q_keys

    def queue_positions(self) -> Dict[QueueKey, Tuple[int, int]]:
        """``(node, session) -> (row, col)`` for valid cells."""
        self.queue_keys()
        return self._q_pos

    def q_mapping(self, copy: bool = True) -> QueueArrayMapping:
        """Mutable mapping view of ``q`` (a copy by default)."""
        values = self.q.copy() if copy else self.q
        return QueueArrayMapping(values, self.queue_keys(), self.queue_positions())

    # ------------------------------------------------------------------
    # Vectorized kernels

    def apply_battery_actions(
        self,
        charge_j: NodeJoules,
        discharge_j: NodeJoules,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every battery one slot (Eq. 4) with Eqs. 9-13 checks.

        ``charge_j``/``discharge_j`` are ``(N,)`` arrays of ``c_i(t)``
        and ``d_i(t)`` in joules.  Validation replicates
        :class:`~repro.energy.battery.BatteryAction` and
        ``Battery.validate`` for the first offending node; the update
        applies the same scalar operation chain
        ``x += eta_c * c - d; x = min(max(x, 0), x_max)`` elementwise.

        ``rows`` restricts validation and update to a node-row subset (a
        shard); Eq. 4 is per-battery, so the per-shard applies compose
        to the same state as the full pass.  The first-offender error
        then reports the first offender *within the slice*.
        """
        if rows is not None:
            charge_j = charge_j[rows]
            discharge_j = discharge_j[rows]
            level = self.battery_level[rows]
            capacity = self.capacity_j[rows]
            charge_cap = self.charge_cap_j[rows]
            discharge_cap = self.discharge_cap_j[rows]
            eta_c = self.charge_efficiency[rows]
        else:
            level = self.battery_level
            capacity = self.capacity_j
            charge_cap = self.charge_cap_j
            discharge_cap = self.discharge_cap_j
            eta_c = self.charge_efficiency
        eps = FEASIBILITY_EPS
        if np.any(charge_j < -eps):
            node = int(np.argmax(charge_j < -eps))
            raise EnergyError(f"negative charge {charge_j[node]}")
        if np.any(discharge_j < -eps):
            node = int(np.argmax(discharge_j < -eps))
            raise EnergyError(f"negative discharge {discharge_j[node]}")
        both = (charge_j > eps) & (discharge_j > eps)
        if np.any(both):
            node = int(np.argmax(both))
            raise EnergyError(
                "constraint (9) violated: simultaneous charge "
                f"({charge_j[node]} J) and discharge ({discharge_j[node]} J)"
            )
        headroom = (capacity - level) / eta_c
        max_charge = np.minimum(charge_cap, headroom)
        over_charge = charge_j > max_charge + eps
        if np.any(over_charge):
            node = int(np.argmax(over_charge))
            raise EnergyError(
                f"constraint (11) violated: charge {charge_j[node]} J > "
                f"min(c_max, headroom) = {max_charge[node]} J"
            )
        max_discharge = np.minimum(discharge_cap, level)
        over_discharge = discharge_j > max_discharge + eps
        if np.any(over_discharge):
            node = int(np.argmax(over_discharge))
            raise EnergyError(
                f"constraint (12) violated: discharge {discharge_j[node]} J > "
                f"min(d_max, level) = {max_discharge[node]} J"
            )
        if rows is None:
            self.battery_level += eta_c * charge_j - discharge_j
            np.maximum(self.battery_level, 0.0, out=self.battery_level)
            np.minimum(self.battery_level, self.capacity_j, out=self.battery_level)
            return
        level = level + eta_c * charge_j - discharge_j
        np.maximum(level, 0.0, out=level)
        np.minimum(level, capacity, out=level)
        self.battery_level[rows] = level

    def z_values_array(self) -> NodeJoules:
        """``(N,)`` shifted queue values ``z = x - shift`` (Eq. 31)."""
        return self.battery_level - self.z_shift

    def max_charge_j_array(self) -> NodeJoules:
        """``(N,)`` constraint-(11) input caps, one battery per row.

        Elementwise the same float64 chain as
        :meth:`~repro.energy.battery.Battery.max_charge_j`, so the
        batched S4 inputs match the scalar reads bit for bit.
        """
        headroom = (self.capacity_j - self.battery_level) / self.charge_efficiency
        return np.minimum(self.charge_cap_j, headroom)

    def max_deliverable_j_array(self) -> NodeJoules:
        """``(N,)`` deliverable discharge caps (constraint 12 + losses).

        Mirrors :meth:`~repro.energy.battery.Battery.max_deliverable_j`
        elementwise.
        """
        return self.discharge_efficiency * np.minimum(
            self.discharge_cap_j, self.battery_level
        )

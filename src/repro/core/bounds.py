"""Optimality bounds on ``psi*_P1`` (Theorems 4 and 5).

* **Upper bound** — the time-averaged energy cost ``psi_P3`` achieved
  by the decomposition controller itself (Theorem 4).
* **Lower bound** — ``psi*_P3bar - B/V`` (Theorem 5), where ``P3bar``
  relaxes P3: binary activations become ``[0, 1]``, the single-source
  constraint (19) and the charge-xor-discharge constraint (9) are
  dropped, and each slot's drift-plus-penalty is minimised *exactly*
  as one joint linear program.

The LP linearises the two non-linear pieces conservatively so the
bound stays valid:

* the convex cost ``f(P)`` enters through its epigraph supported by
  tangent lines (an under-approximation of a convex function);
* transmit powers are lower-bounded by their zero-interference minima
  ``Gamma eta W / g_ij`` (under-approximating energy demand).

Both substitutions can only *decrease* the LP optimum, preserving
``LP <= psi-hat*_P3bar`` and hence the final lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.control.decisions import (
    AdmissionDecision,
    EnergyManagementDecision,
    NodeEnergyAllocation,
    RoutingDecision,
    ScheduleDecision,
    SlotDecision,
    SlotObservation,
)
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.phy.capacity import max_link_capacity_bps
from repro.solvers.linprog import LinearProgram, LPSolution, Sense
from repro.types import NodeId, SessionId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see state.py)
    from repro.state import NetworkState


@dataclass(frozen=True)
class BoundReport:
    """Paired bounds on ``psi*_P1`` for one configuration.

    Attributes:
        control_v: the Lyapunov weight the bounds were computed for.
        upper: achieved time-averaged cost of the controller (Thm. 4).
        lower: ``psi*_P3bar - B/V`` (Thm. 5).
        relaxed_penalty: the time-averaged relaxed penalty
            ``avg[f(P) - lambda sum_s k_s]`` before subtracting B/V.
        drift_b: the Eq. (34) constant used.
    """

    control_v: float
    upper: float
    lower: float
    relaxed_penalty: float
    drift_b: float

    @property
    def gap(self) -> float:
        """Absolute bound gap (upper - lower)."""
        return self.upper - self.lower


def lower_bound_cost(
    relaxed_penalty_avg: float, drift_b: float, control_v: float
) -> float:
    """Theorem 5: ``psi*_P1 >= psi*_P3bar - B/V``."""
    if control_v <= 0:
        raise ValueError(f"V must be positive for the bound, got {control_v}")
    return relaxed_penalty_avg - drift_b / control_v


class RelaxedLpController:
    """Per-slot exact solver of the relaxed problem ``P3bar``.

    Presents the same ``decide(observation, state)`` interface as the
    integral controller so the simulation engine can run either; the
    engine must apply its decisions with
    ``enforce_complementarity=False`` (constraint (9) is relaxed).
    """

    def __init__(
        self,
        model: NetworkModel,
        constants: LyapunovConstants,
        num_cost_segments: int = 24,
    ) -> None:
        if num_cost_segments < 1:
            raise ValueError(
                f"need at least one tangent segment, got {num_cost_segments}"
            )
        self._model = model
        self._constants = constants
        self._segments = num_cost_segments
        #: f(P(t)) - lambda*sum(k) of the most recent slot, for bounds.
        self.last_penalty: float = 0.0
        #: Per-node demand slack of the most recent slot (J), mirroring
        #: the integral controller's deficit accounting.
        self.last_deficit_j: Dict[NodeId, float] = {}

    # -- LP construction helpers ---------------------------------------

    def _service_pkts(self, band: int, observation: SlotObservation) -> float:
        params = self._model.params
        bps = max_link_capacity_bps(
            observation.bands.bandwidth(band), params.sinr_threshold
        )
        return bps * params.slot_seconds / params.sessions.packet_size_bits

    def _min_power_w(self, tx: NodeId, rx: NodeId, band: int, observation: SlotObservation) -> float | None:
        """Zero-interference minimal power; None if above the cap."""
        params = self._model.params
        noise = self._model.noise_power_w(observation.bands.bandwidth(band))
        gains = (
            observation.gains
            if observation.gains is not None
            else self._model.topology.gains_lookup()
        )
        power = params.sinr_threshold * noise / gains[tx, rx]
        if power > self._model.max_power_w[tx]:
            return None
        return power

    def _build_lp(
        self, observation: SlotObservation, state: NetworkState
    ) -> Tuple[LinearProgram, Dict]:
        model = self._model
        params = model.params
        constants = self._constants
        lp = LinearProgram()
        dt = params.slot_seconds
        threshold = params.admission_lambda * params.control_v
        destinations = model.session_destinations()
        h = state.h_backlogs()

        # Activation variables with their Psi-hat_1 coefficients, plus
        # bookkeeping for the capacity and energy couplings.
        link_bands: Dict[Tuple[NodeId, NodeId], List[Tuple[int, float, float]]] = {}
        for tx, rx in model.topology.candidate_links:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            entries = []
            for band in observation.common_bands(model, tx, rx):
                power = self._min_power_w(tx, rx, band, observation)
                if power is None:
                    continue
                service = self._service_pkts(band, observation)
                key = ("a", tx, rx, band)
                lp.add_variable(
                    key,
                    objective=-constants.beta * h.get((tx, rx), 0.0) * service,
                    lower=0.0,
                    upper=1.0,
                )
                entries.append((band, service, power))
            if entries:
                link_bands[(tx, rx)] = entries

        # Radio constraint (22), relaxed; the budget is the node's
        # radio count (1 in the paper — a tighter rhs would invalidate
        # the lower bound for multi-radio scenarios).
        per_node: Dict[NodeId, Dict] = {n: {} for n in range(model.num_nodes)}  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
        for (tx, rx), entries in link_bands.items():
            for band, _, _ in entries:
                per_node[tx][("a", tx, rx, band)] = 1.0
                per_node[rx][("a", tx, rx, band)] = 1.0
        for node, coeffs in per_node.items():
            if coeffs:
                lp.add_constraint(
                    coeffs,
                    Sense.LE,
                    float(model.nodes[node].radio.num_radios),
                    name=f"radio[{node}]",
                )

        # Routing variables and the link-capacity constraint (25).
        for (tx, rx), entries in link_bands.items():
            cap_coeffs: Dict = {}
            for band, service, _ in entries:
                cap_coeffs[("a", tx, rx, band)] = -service
            any_l = False
            for session in model.sessions:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
                sid = session.session_id
                if tx == destinations[sid]:
                    continue  # (17)
                q_tx = state.backlog(tx, sid)
                q_rx = (
                    0.0
                    if rx == destinations[sid]
                    else state.backlog(rx, sid)
                )
                coeff = -q_tx + q_rx + constants.beta * h.get((tx, rx), 0.0)
                key = ("l", tx, rx, sid)
                lp.add_variable(key, objective=coeff, lower=0.0)
                cap_coeffs[key] = 1.0
                any_l = True
            if any_l:
                lp.add_constraint(cap_coeffs, Sense.LE, 0.0, name=f"cap[{tx},{rx}]")

        # Demand-satisfaction equality (18) per session.  Constraint
        # (16) — no incoming traffic at the source — is dropped: the
        # relaxed source assignment is fractional, so there is no
        # single node to apply it to.  Dropping a constraint enlarges
        # the feasible set and can only lower the LP optimum, which
        # keeps the final lower bound valid.
        for session in model.sessions:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            sid = session.session_id
            dest = session.destination
            coeffs = {
                ("l", i, dest, sid): 1.0
                for i in model.topology.in_neighbors.get(dest, ())
                if lp.has_variable(("l", i, dest, sid))
            }
            if coeffs:
                lp.add_constraint(
                    coeffs, Sense.EQ, float(session.demand(observation.slot)),
                    name=f"demand[{sid}]",
                )

        # Relaxed admission: per-BS k_{s,b} with total cap K_max; the
        # Psi-hat_2 coefficient is (Q_b^s - lambda V).
        for session in model.sessions:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            sid = session.session_id
            total = {}
            for bs in model.bs_ids:
                key = ("k", sid, bs)
                lp.add_variable(
                    key,
                    objective=state.backlog(bs, sid) - threshold,
                    lower=0.0,
                    upper=float(session.k_max),
                )
                total[key] = 1.0
            lp.add_constraint(total, Sense.LE, float(session.k_max), name=f"kmax[{sid}]")

        # Energy variables and balances.
        bs_set = set(model.bs_ids)
        z = state.z_values()
        p_coeffs: Dict = {}
        for node_obj in model.nodes:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            node = node_obj.node_id
            battery = state.batteries[node]
            connected = observation.grid_connected[node]
            grid_cap = state.grids[node].draw_cap_j if connected else 0.0
            renewable = observation.renewable_j[node]

            lp.add_variable(("r", node), lower=0.0, upper=renewable)
            eta_c = battery.charge_efficiency
            eta_d = battery.discharge_efficiency
            lp.add_variable(
                ("cr", node),
                objective=z[node] * eta_c,
                lower=0.0,
                upper=renewable,
            )
            lp.add_variable(("g", node), lower=0.0, upper=grid_cap)
            lp.add_variable(
                ("cg", node),
                objective=z[node] * eta_c,
                lower=0.0,
                upper=grid_cap,
            )
            # The variable is *delivered* discharge; the battery level
            # drops by 1/eta_d of it.
            lp.add_variable(
                ("d", node),
                objective=-z[node] / eta_d,
                lower=0.0,
                upper=battery.max_deliverable_j(),
            )
            lp.add_variable(("slack", node), lower=0.0)

            lp.add_constraint(
                {("r", node): 1.0, ("cr", node): 1.0},
                Sense.LE,
                renewable,
                name=f"renewable[{node}]",
            )
            lp.add_constraint(
                {("cr", node): 1.0, ("cg", node): 1.0},
                Sense.LE,
                battery.max_charge_j(),
                name=f"charge_cap[{node}]",
            )
            lp.add_constraint(
                {("g", node): 1.0, ("cg", node): 1.0},
                Sense.LE,
                grid_cap,
                name=f"grid_cap[{node}]",
            )

            if params.exact_battery_drift:
                # Epigraph of the exact quadratic battery-drift term
                # (net^2 / 2, net = c - d), supported by tangents — an
                # under-approximation, so the lower bound stays valid
                # while matching the integral controller's objective.
                lp.add_variable(("w", node), objective=1.0, lower=0.0)
                net_lo = -battery.max_discharge_j()
                net_hi = eta_c * battery.max_charge_j()
                span = max(net_hi - net_lo, 1.0)
                for k in range(9):
                    point = net_lo + span * k / 8
                    # w >= point * net - point^2 / 2, with the level
                    # delta net = eta_c (cr + cg) - d / eta_d.
                    lp.add_constraint(
                        {
                            ("w", node): 1.0,
                            ("cr", node): -point * eta_c,
                            ("cg", node): -point * eta_c,
                            ("d", node): point / eta_d,
                        },
                        Sense.GE,
                        -0.5 * point * point,
                        name=f"qdrift[{node},{k}]",
                    )

            # Demand balance: g + r + d + slack - (tx/rx energy) = fixed.
            balance: Dict = {
                ("g", node): 1.0,
                ("r", node): 1.0,
                ("d", node): 1.0,
                ("slack", node): 1.0,
            }
            for (tx, rx), entries in link_bands.items():
                for band, _, power in entries:
                    if tx == node:
                        key = ("a", tx, rx, band)
                        balance[key] = balance.get(key, 0.0) - power * dt
                    elif rx == node:
                        key = ("a", tx, rx, band)
                        balance[key] = (
                            balance.get(key, 0.0)
                            - node_obj.radio.recv_power_w * dt
                        )
            lp.add_constraint(
                balance,
                Sense.EQ,
                node_obj.radio.fixed_energy_j(dt),
                name=f"balance[{node}]",
            )

            if node in bs_set:
                p_coeffs[("g", node)] = 1.0
                p_coeffs[("cg", node)] = 1.0

        # Total draw P and the epigraph of V * f(P).
        p_cap = model.total_grid_cap_j()
        lp.add_variable(("P",), lower=0.0, upper=p_cap)
        row = dict(p_coeffs)
        row[("P",)] = -1.0
        lp.add_constraint(row, Sense.EQ, 0.0, name="total_draw")

        lp.add_variable(("phi",), objective=params.control_v, lower=0.0)
        for k in range(self._segments + 1):
            point = p_cap * k / self._segments
            slot_cost = model.cost_at(observation.slot)
            slope = slot_cost.derivative(point)
            intercept = slot_cost.value(point) - slope * point
            lp.add_constraint(
                {("phi",): 1.0, ("P",): -slope},
                Sense.GE,
                intercept,
                name=f"tangent[{k}]",
            )

        return lp, {"link_bands": link_bands}

    # -- decision extraction --------------------------------------------

    def _extract(
        self,
        solution: LPSolution,
        observation: SlotObservation,
        state: NetworkState,
        link_bands: Dict,
    ) -> SlotDecision:
        model = self._model
        schedule = ScheduleDecision()
        for (tx, rx), entries in link_bands.items():
            service_total = 0.0
            for band, service, _power in entries:
                alpha = solution.values[("a", tx, rx, band)]
                if alpha > 1e-9:
                    service_total += service * alpha
            if service_total > 0:
                schedule.link_service_pkts[(tx, rx)] = service_total

        rates: Dict[Tuple[NodeId, NodeId, SessionId], float] = {}
        for key, value in solution.values.items():
            if key[0] == "l" and value > 1e-9:
                _, tx, rx, sid = key
                rates[(tx, rx, sid)] = value
        routing = RoutingDecision(rates=rates)

        sources: Dict[SessionId, NodeId] = {}
        admitted: Dict[SessionId, float] = {}
        split: Dict[SessionId, Tuple[Tuple[NodeId, float], ...]] = {}
        for session in model.sessions:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            sid = session.session_id
            pairs = tuple(
                (bs, solution.values[("k", sid, bs)])
                for bs in model.bs_ids
                if solution.values[("k", sid, bs)] > 1e-9
            )
            split[sid] = pairs
            admitted[sid] = sum(k for _, k in pairs)
            sources[sid] = (
                max(pairs, key=lambda p: p[1])[0] if pairs else model.bs_ids[0]
            )
        admission = AdmissionDecision(
            sources=sources, admitted=admitted, split=split
        )

        allocations: Dict[NodeId, NodeEnergyAllocation] = {}
        for node_obj in model.nodes:  # noqa: R040 - offline Theorem-5 LP assembly; runs once per scenario, never inside the slot loop
            node = node_obj.node_id
            renewable = observation.renewable_j[node]
            r = solution.values[("r", node)]
            cr = solution.values[("cr", node)]
            allocations[node] = NodeEnergyAllocation(
                renewable_serve_j=r,
                renewable_charge_j=cr,
                grid_serve_j=solution.values[("g", node)],
                grid_charge_j=solution.values[("cg", node)],
                discharge_j=solution.values[("d", node)],
                spill_j=max(0.0, renewable - r - cr),
            )
        bs_set = set(model.bs_ids)
        total_draw = sum(
            a.grid_draw_j for n, a in allocations.items() if n in bs_set
        )
        energy = EnergyManagementDecision(
            allocations=allocations,
            bs_grid_draw_j=total_draw,
            cost=model.cost_at(observation.slot).value(total_draw),
        )
        return SlotDecision(
            schedule=schedule,
            admission=admission,
            routing=routing,
            energy=energy,
        )

    def decide(
        self, observation: SlotObservation, state: NetworkState
    ) -> SlotDecision:
        """Solve the slot's relaxed LP exactly and extract the decision."""
        lp, extras = self._build_lp(observation, state)
        solution = lp.solve()
        decision = self._extract(
            solution, observation, state, extras["link_bands"]
        )
        lam = self._model.params.admission_lambda
        self.last_penalty = (
            decision.energy.cost - lam * decision.admission.total_admitted()
        )
        self.last_deficit_j = {
            key[1]: value
            for key, value in solution.values.items()
            if key[0] == "slack" and value > 1e-9
        }
        return decision

"""Drift-plus-penalty term evaluation (Eqs. 35-38).

Given one slot's decision and queue state, compute the four
``Psi-hat`` terms the decomposition minimises.  The controller does not
need these values to act — each subproblem optimises its own term
directly — but they are the natural diagnostics for tests ("does the
exact S1 solution achieve a lower Psi-hat_1 than the heuristic?") and
for the per-slot trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.control.decisions import SlotDecision
from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.types import Link, NodeId, SessionId

#: Accessor signatures matching the controller's.
BacklogFn = Callable[[NodeId, SessionId], float]


@dataclass(frozen=True)
class DriftTerms:
    """The four ``Psi-hat`` values of one slot.

    Attributes:
        psi1: link-scheduling term (Eq. 35), ``<= 0``.
        psi2: resource-allocation term (Eq. 36).
        psi3: routing term (Eq. 37).
        psi4: energy-management term (Eq. 38).
    """

    psi1: float
    psi2: float
    psi3: float
    psi4: float

    @property
    def total(self) -> float:
        """The drift-plus-penalty upper bound being minimised."""
        return self.psi1 + self.psi2 + self.psi3 + self.psi4


def compute_drift_terms(
    model: NetworkModel,
    constants: LyapunovConstants,
    decision: SlotDecision,
    backlog: BacklogFn,
    h_backlogs: Mapping[Link, float],
    z_values: Mapping[NodeId, float],
) -> DriftTerms:
    """Evaluate Eqs. (35)-(38) for one decided slot.

    All queue readings must be the *pre-update* values the controller
    saw, matching the conditional expectations in the drift bound.
    """
    # Psi-hat_1 (Eq. 35): -(beta/delta) sum H_ij sum_m c a dt.  The
    # schedule already carries the service in packets (= c a dt/delta).
    psi1 = -constants.beta * sum(
        h_backlogs.get(link, 0.0) * service
        for link, service in decision.schedule.link_service_pkts.items()
    )

    # Psi-hat_2 (Eq. 36): sum_s (Q_source^s - lambda V) k_s.
    params = model.params
    threshold = params.admission_lambda * params.control_v
    psi2 = 0.0
    for session_id, source in decision.admission.sources.items():
        admitted = decision.admission.admitted[session_id]
        psi2 += (backlog(source, session_id) - threshold) * admitted

    # Psi-hat_3 (Eq. 37): per-rate coefficient (-Q_i + Q_j + beta H_ij).
    destinations = model.session_destinations()
    psi3 = 0.0
    for (tx, rx, session_id), rate in decision.routing.rates.items():
        q_tx = backlog(tx, session_id)
        q_rx = 0.0 if rx == destinations[session_id] else backlog(rx, session_id)
        h = h_backlogs.get((tx, rx), 0.0)
        psi3 += (-q_tx + q_rx + constants.beta * h) * rate

    # Psi-hat_4 (Eq. 38): sum z_i (c_i - d_i) + V f(P).
    psi4 = params.control_v * decision.energy.cost
    for node, allocation in decision.energy.allocations.items():
        psi4 += z_values[node] * (allocation.charge_j - allocation.discharge_j)

    return DriftTerms(psi1=psi1, psi2=psi2, psi3=psi3, psi4=psi4)


def battery_drift_quadratic_term(decision: SlotDecision) -> float:
    """The exact-drift correction ``sum_i (c_i - d_i)^2 / 2``.

    The paper's Psi-hat_4 is the *linear* part of the battery drift;
    adding this term gives the exact per-slot drift the default S4
    solver minimises (``exact_battery_drift``, DESIGN.md).
    """
    total = 0.0
    for allocation in decision.energy.allocations.values():
        net = allocation.charge_j - allocation.discharge_j
        total += 0.5 * net * net
    return total

"""Closed-form predictions of the Lyapunov analysis, checkable in sim.

The drift analysis predicts several observable equilibria exactly:

* each battery settles at ``x* = min(x_max, V * gamma_max + d_max)``
  (the level where the shifted queue ``z`` crosses zero);
* each session's source backlog hovers at the admission threshold
  ``lambda * V`` (admission stops above it, Section IV-C-2);
* the formal optimality gap is ``B / V`` with ``B`` from Eq. (34).

``predict`` packages these numbers for a scenario, and ``verify``
measures a finished run against them — the quantitative version of the
qualitative claims Figs. 2(a)-2(e) make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.lyapunov import LyapunovConstants
from repro.model import NetworkModel
from repro.sim.results import SimulationResult
from repro.types import NodeId


@dataclass(frozen=True)
class TheoryPredictions:
    """The analysis' closed-form predictions for one configuration.

    Attributes:
        control_v: the Lyapunov weight.
        battery_plateau_j: predicted settled level per node.
        bs_battery_total_j: summed plateau over base stations — the
            predicted asymptote of Fig. 2(d).
        admission_threshold_pkts: ``lambda * V``.
        formal_gap: ``B / V`` (Theorem 5's bound slack).
    """

    control_v: float
    battery_plateau_j: Mapping[NodeId, float]
    bs_battery_total_j: float
    admission_threshold_pkts: float
    formal_gap: float


@dataclass(frozen=True)
class PlateauCheck:
    """Measured-vs-predicted battery plateau for one aggregate."""

    predicted_j: float
    measured_j: float

    @property
    def relative_error(self) -> float:
        """``|measured - predicted| / predicted`` (0 when both 0)."""
        if self.predicted_j == 0:
            return 0.0 if self.measured_j == 0 else float("inf")
        return abs(self.measured_j - self.predicted_j) / self.predicted_j


def predict(model: NetworkModel, constants: LyapunovConstants) -> TheoryPredictions:
    """Compute the closed-form predictions for one scenario."""
    params = model.params
    v = params.control_v
    plateaus: Dict[NodeId, float] = {}
    for node in model.nodes:
        threshold = v * constants.gamma_max + node.energy.discharge_cap_j
        plateaus[node.node_id] = min(threshold, node.energy.battery_capacity_j)
    bs_total = sum(plateaus[b] for b in model.bs_ids)
    return TheoryPredictions(
        control_v=v,
        battery_plateau_j=plateaus,
        bs_battery_total_j=bs_total,
        admission_threshold_pkts=params.admission_lambda * v,
        formal_gap=constants.drift_b / v if v > 0 else float("inf"),
    )


def verify_bs_plateau(
    model: NetworkModel,
    constants: LyapunovConstants,
    result: SimulationResult,
    tail_fraction: float = 0.25,
) -> PlateauCheck:
    """Compare the measured BS battery plateau against the prediction.

    The measured plateau is the mean of the final ``tail_fraction`` of
    the Fig.-2(d) series.  Meaningful only when the fill transient has
    completed within the horizon — the caller should size the horizon
    at a few multiples of ``plateau / charge_cap`` slots.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    predictions = predict(model, constants)
    series = result.backlog_series("bs_energy_j")
    tail_start = int(len(series) * (1 - tail_fraction))
    measured = float(series[tail_start:].mean())
    return PlateauCheck(
        predicted_j=predictions.bs_battery_total_j, measured_j=measured
    )


def fill_time_slots(model: NetworkModel, constants: LyapunovConstants) -> float:
    """Predicted slots for the slowest base station to reach its plateau.

    Lower bound: the plateau divided by the per-slot charge cap (the
    controller charges at cap while deep below threshold).
    """
    worst = 0.0
    predictions = predict(model, constants)
    for bs in model.bs_ids:
        cap = model.nodes[bs].energy.charge_cap_j
        if cap <= 0:
            return float("inf")
        worst = max(worst, predictions.battery_plateau_j[bs] / cap)
    return worst

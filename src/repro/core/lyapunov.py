"""Lyapunov constants (Section IV): ``beta``, ``gamma_max``, ``B``.

These constants tie the whole analysis together:

* ``beta = max_ij c_max_ij * delta_t / delta`` scales the link virtual
  queues ``H_ij = beta * G_ij`` (Eq. 30);
* ``gamma_max`` is the largest marginal generation cost, which shifts
  the battery queues ``z_i = x_i - V gamma_max - d_max_i``;
* ``B`` is the drift bound constant of Eq. (34) appearing in the lower
  bound ``psi*_P3bar - B/V`` (Theorem 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.model import NetworkModel
from repro.phy.capacity import max_link_capacity_bps
from repro.types import Link, NodeId


@dataclass(frozen=True)
class LyapunovConstants:
    """Derived constants for one scenario.

    Attributes:
        beta: virtual-queue scaling (packets).
        gamma_max: max marginal cost ``f'`` over feasible ``P`` (per J).
        drift_b: the Eq. (34) constant ``B``.
        link_capacity_pkts: per-candidate-link worst-case service
            ``c_max_ij * delta_t / delta`` (packets per slot).
    """

    beta: float
    gamma_max: float
    drift_b: float
    link_capacity_pkts: Mapping[Link, float]

    def max_service_pkts(self, node: NodeId, links: Iterable[Link]) -> float:
        """Largest single-slot service of any one of ``node``'s links."""
        caps = [
            self.link_capacity_pkts[link] for link in links if link[0] == node
        ]
        return max(caps, default=0.0)


def _per_link_max_packets(model: NetworkModel) -> Dict[Link, float]:
    """``c_max_ij * delta_t / delta`` per candidate link (packets).

    One ``(L, M)`` band-membership mask replaces the per-link Python
    scan over common bands; the best common-band capacity is an exact
    max over non-negative per-band capacities (0.0 where the band is
    not shared), so the result is bit-identical to the scalar loop at
    O(N + L M) instead of O(L M) Python-interpreted work.
    """
    params = model.params
    spectrum = model.spectrum
    links = model.topology.candidate_links
    if not links:
        return {}
    delta_bits = params.sessions.packet_size_bits
    band_caps = np.fromiter(
        (
            max_link_capacity_bps(band.max_bandwidth_hz, params.sinr_threshold)
            for band in spectrum.bands
        ),
        dtype=float,
        count=spectrum.num_bands,
    )
    access = np.zeros((model.num_nodes, spectrum.num_bands), dtype=bool)
    for node, bands in spectrum.access_sets().items():
        for band in bands:
            access[node, band] = True
    link_tx, link_rx = model.topology.link_arrays()
    member = access[link_tx] & access[link_rx]
    best_bps = np.where(member, band_caps[np.newaxis, :], 0.0).max(axis=1)
    pkts = best_bps * params.slot_seconds / delta_bits
    return dict(zip(links, pkts.tolist()))


def compute_constants(model: NetworkModel) -> LyapunovConstants:
    """Compute ``beta``, ``gamma_max`` and the Eq. (34) ``B``.

    The ``B`` expression follows Eq. (34) term by term:

    * data queues: per node/session, squared worst-case service
      (largest outgoing link) plus squared worst-case arrivals
      (largest incoming link, plus ``K_max`` at base stations, which
      are the only possible session sources);
    * virtual queues: ``(beta * c_max_ij delta_t / delta)^2`` per link
      — both the arrival and service of ``H_ij`` are bounded by this;
    * energy queues: ``max(c_max_i, d_max_i)^2 / 2`` per node.
    """
    params = model.params
    link_caps = _per_link_max_packets(model)
    beta = max(link_caps.values(), default=0.0)
    if beta <= 0:
        beta = 1.0  # degenerate no-capacity network; keep H well-defined

    gamma_max = model.max_marginal_cost()

    k_max = params.sessions.k_max(params.slot_seconds)
    bs_set = set(model.bs_ids)

    # Per-node worst-case outgoing/incoming link service in one O(L)
    # pass (running max is exact, so this matches the old per-node
    # scans bit for bit at O(N + L) instead of O(N * L)).
    out_cap = [0.0] * model.num_nodes
    in_cap = [0.0] * model.num_nodes
    for (tx, rx), cap in link_caps.items():
        if cap > out_cap[tx]:
            out_cap[tx] = cap
        if cap > in_cap[rx]:
            in_cap[rx] = cap

    data_term = 0.0
    for node in range(model.num_nodes):
        # With R radios a node can serve/receive up to R links at once.
        radios = model.nodes[node].radio.num_radios
        max_out = radios * out_cap[node]
        max_in = radios * in_cap[node]
        admission = float(k_max) if node in bs_set else 0.0
        for _session in model.sessions:
            data_term += 0.5 * (max_out**2 + (max_in + admission) ** 2)

    virtual_term = sum((beta * cap) ** 2 for cap in link_caps.values())

    energy_term = 0.0
    for node in model.nodes:
        energy_term += 0.5 * max(
            node.energy.charge_cap_j, node.energy.discharge_cap_j
        ) ** 2

    return LyapunovConstants(
        beta=beta,
        gamma_max=gamma_max,
        drift_b=data_term + virtual_term + energy_term,
        link_capacity_pkts=link_caps,
    )


def lyapunov_value(
    data_backlogs: Iterable[float],
    h_backlogs: Iterable[float],
    z_values: Iterable[float],
) -> float:
    """The Lyapunov function ``L(Theta) = (1/2) (sum Q^2 + H^2 + z^2)``."""
    total = 0.0
    for q in data_backlogs:
        total += q * q
    for h in h_backlogs:
        total += h * h
    for z in z_values:
        total += z * z
    return 0.5 * total

"""The assembled network model: everything static about a scenario.

``NetworkModel`` bundles the validated parameters, node population,
topology, spectrum model, sessions, and cost function, plus the derived
Lyapunov constants (``beta``, ``gamma_max``, ``B``) that the controller
and the bound computations share.  Build one with
:func:`build_network_model`; the simulator, controller, and experiment
drivers all consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import ScenarioParameters, validate_parameters
from repro.energy.cost import QuadraticCost, TimeOfUseCost
from repro.network.node import Node, build_nodes
from repro.network.session import Session, build_sessions
from repro.network.spectrum import SpectrumModel, build_spectrum_model
from repro.network.topology import Topology, build_topology
from repro.types import NodeId


@dataclass
class NetworkModel:
    """Static model of one scenario (no per-slot state).

    Attributes:
        params: the validated scenario parameters.
        nodes: node population ordered by id.
        topology: distances, gains, candidate links.
        spectrum: bands, access sets, bandwidth process.
        sessions: downlink sessions.
        cost: the provider's generation-cost function ``f``.
        max_power_w: per-node transmit power caps (for power control).
    """

    params: ScenarioParameters
    nodes: Tuple[Node, ...]
    topology: Topology
    spectrum: SpectrumModel
    sessions: Tuple[Session, ...]
    cost: QuadraticCost
    max_power_w: Dict[NodeId, float] = field(repr=False)
    #: Optional time-of-use schedule wrapping ``cost``.
    cost_schedule: Optional[TimeOfUseCost] = None

    def cost_at(self, slot: int) -> QuadraticCost:
        """The generation cost function in force during ``slot``."""
        if self.cost_schedule is None:
            return self.cost
        return self.cost_schedule.at_slot(slot)

    def max_marginal_cost(self) -> float:
        """``gamma_max``: the worst marginal cost over slots and draws."""
        cap = self.total_grid_cap_j()
        if self.cost_schedule is None:
            return self.cost.max_derivative(cap)
        return self.cost_schedule.max_derivative(cap)

    @property
    def num_nodes(self) -> int:
        """Total node count ``N``."""
        return len(self.nodes)

    @property
    def bs_ids(self) -> Tuple[NodeId, ...]:
        """Base-station ids."""
        return tuple(self.params.base_station_ids())

    @property
    def user_ids(self) -> Tuple[NodeId, ...]:
        """Mobile-user ids."""
        return tuple(self.params.user_ids())

    def total_grid_cap_j(self) -> float:
        """Aggregate base-station grid draw cap (bounds ``P(t)``)."""
        return sum(self.nodes[b].energy.grid_cap_j for b in self.bs_ids)

    def noise_power_w(self, bandwidth_hz: float) -> float:
        """Thermal-noise power ``eta * W`` for a band realisation."""
        return self.params.noise_density_w_per_hz * bandwidth_hz

    def session_destinations(self) -> Dict[int, NodeId]:
        """Session id -> destination node id."""
        return {s.session_id: s.destination for s in self.sessions}  # noqa: R040 - S-sized dict (S stays O(10)); the engine builds it once at construction and caches it


def build_network_model(
    params: ScenarioParameters, rng: np.random.Generator
) -> NetworkModel:
    """Validate ``params`` and assemble the full static model.

    The passed ``rng`` drives node placement, spectrum access draws and
    session destinations; stream separation for the per-slot processes
    is handled by the simulator's RNG manager.
    """
    validate_parameters(params)
    nodes = build_nodes(params, rng)
    topology = build_topology(params, nodes)
    spectrum = build_spectrum_model(params, rng)
    sessions = build_sessions(params, rng, nodes=nodes)
    cost = QuadraticCost.from_unit_coefficients(
        params.cost_a, params.cost_b, params.cost_c, params.cost_energy_unit_j
    )
    schedule = None
    if params.tou_multipliers is not None:
        schedule = TimeOfUseCost(cost, params.tou_multipliers)
    max_power = {n.node_id: n.radio.max_tx_power_w for n in nodes}
    return NetworkModel(
        params=params,
        nodes=tuple(nodes),
        topology=topology,
        spectrum=spectrum,
        sessions=tuple(sessions),
        cost=cost,
        max_power_w=max_power,
        cost_schedule=schedule,
    )

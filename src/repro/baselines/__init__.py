"""Baseline architectures compared in Fig. 2(f)."""

from repro.baselines.architectures import (
    architecture_label,
    architecture_params,
    run_architecture,
)

__all__ = [
    "architecture_label",
    "architecture_params",
    "run_architecture",
]

"""The four network architectures of the Fig. 2(f) comparison.

All four run the same drift-plus-penalty controller; the architecture
only changes the substrate:

* ``MULTI_HOP_RENEWABLE`` — the proposed system, unchanged.
* ``MULTI_HOP_NO_RENEWABLE`` — renewables removed.  Users must then
  power relaying from the grid, so they are kept permanently
  grid-connected (the paper's baseline gives no detail; a relay with
  neither renewables nor grid would simply die, which would make the
  comparison about coverage rather than energy cost).
* ``ONE_HOP_RENEWABLE`` — routing restricted to direct base-station ->
  user links (users never relay), renewables kept.
* ``ONE_HOP_NO_RENEWABLE`` — both restrictions.
"""

from __future__ import annotations

import dataclasses

from repro.config.parameters import ScenarioParameters
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.types import Architecture

_LABELS = {
    Architecture.MULTI_HOP_RENEWABLE: "Our system (multi-hop + renewables)",
    Architecture.MULTI_HOP_NO_RENEWABLE: "Multi-hop w/o renewable energy",
    Architecture.ONE_HOP_RENEWABLE: "One-hop w/ renewable energy",
    Architecture.ONE_HOP_NO_RENEWABLE: "One-hop w/o renewable energy",
}


def architecture_label(architecture: Architecture) -> str:
    """Human-readable label matching the paper's legend."""
    return _LABELS[architecture]


def architecture_params(
    base: ScenarioParameters, architecture: Architecture
) -> ScenarioParameters:
    """Derive the scenario parameters for one architecture.

    The returned scenario shares the base seed, so every architecture
    sees the identical random environment (paired comparison).
    """
    multi_hop = architecture in (
        Architecture.MULTI_HOP_RENEWABLE,
        Architecture.MULTI_HOP_NO_RENEWABLE,
    )
    renewables = architecture in (
        Architecture.MULTI_HOP_RENEWABLE,
        Architecture.ONE_HOP_RENEWABLE,
    )
    params = dataclasses.replace(
        base,
        multi_hop_enabled=multi_hop,
        renewables_enabled=renewables,
    )
    if not renewables and multi_hop:
        # Grid-connect the users so relaying stays possible (module doc).
        params = dataclasses.replace(
            params,
            user_energy=dataclasses.replace(
                base.user_energy, grid_connect_prob=1.0
            ),
        )
    return params


def run_architecture(
    base: ScenarioParameters, architecture: Architecture
) -> SimulationResult:
    """Run one architecture on the shared environment and return it."""
    return run_simulation(architecture_params(base, architecture))

#!/usr/bin/env bash
# The full local quality gate, in the same order CI runs it:
#
#   1. repro.lint     — the project's own AST rules R001-R006 (always runs)
#   2. repro.analysis — interprocedural units dataflow R010-R012,
#                       axis/shape dataflow R020-R025, determinism rules
#                       R030-R032, hot-path complexity R040-R042,
#                       process-pool safety R050-R052, and the equation
#                       audit EQ001-EQ003 (always runs)
#   3. ruff           — generic style/bug lint         (if installed)
#   4. mypy           — strict on the foundation modules (if installed)
#   5. pytest         — the tier-1 test suite
#
# ruff and mypy are optional-dependency tools (pip install -e '.[lint]');
# when absent locally they are skipped with a notice — CI always installs
# and enforces them.
set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

step() {
    echo "==> $*"
}

step "repro.lint (R001-R006)"
python -m repro.lint src tests benchmarks || failures=$((failures + 1))

step "repro.analysis units dataflow (R010-R012)"
python -m repro.analysis --select R01 src || failures=$((failures + 1))

step "repro.analysis axes + determinism (R020-R025, R030-R032)"
python -m repro.analysis --select R02,R03 src || failures=$((failures + 1))

step "repro.analysis hot-path + pool safety (R040-R042, R050-R052)"
python -m repro.analysis --select R04,R05 src || failures=$((failures + 1))

step "repro.analysis equation audit (EQ001-EQ003)"
python -m repro.analysis --equations || failures=$((failures + 1))

if command -v ruff > /dev/null 2>&1; then
    step "ruff"
    ruff check src tests benchmarks || failures=$((failures + 1))
else
    step "ruff not installed — skipping (pip install -e '.[lint]')"
fi

if command -v mypy > /dev/null 2>&1; then
    step "mypy (strict foundation modules)"
    mypy src/repro || failures=$((failures + 1))
else
    step "mypy not installed — skipping (pip install -e '.[lint]')"
fi

step "pytest"
python -m pytest -q || failures=$((failures + 1))

if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) FAILED"
    exit 1
fi
echo "check.sh: all steps passed"

#!/usr/bin/env python3
"""Regenerate every paper figure at full scale and print the tables.

This is the EXPERIMENTS.md data source: the paper's Section-VI
scenario (2 BSs, 20 users, 100 one-minute slots) with the paper's V
sweeps, plus the extension experiments (cell-edge, V-convergence).
Run time is a few minutes serially; ``--workers N`` fans each figure's
(V, variant) grid over N worker processes through the sweep executor
(results are bit-identical to the serial run — tests/test_executor.py
pins that).  Pass ``--export DIR`` to additionally write each figure's
data as CSV; ``--bench PATH`` collects every grid's timing record into
a machine-readable BENCH_sweep.json.
"""

import argparse
import os
import time
from pathlib import Path

from repro.config import cell_edge_scenario, paper_scenario
from repro.experiments import (
    export_figure,
    run_cell_edge,
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig2d,
    run_fig2e,
    run_fig2f,
    run_v_convergence,
)
from repro.experiments.executor import BENCH_ENV_VAR


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--export", default=None, help="directory for per-figure CSVs"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep-executor processes per figure grid (default: serial)",
    )
    parser.add_argument(
        "--bench",
        default=None,
        help="collect per-grid timing records into this BENCH_sweep.json",
    )
    args = parser.parse_args()

    if args.bench is not None:
        # The executor consults this env var on every run_sweep call,
        # so one file accumulates every figure's grid record.
        os.environ[BENCH_ENV_VAR] = args.bench

    base = paper_scenario(num_slots=100, seed=2014)
    edge = cell_edge_scenario(num_slots=100, seed=2014)

    runs = (
        ("fig2a", run_fig2a, base, {"v_values": tuple(k * 1e5 for k in range(1, 11))}),
        ("fig2b", run_fig2b, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2c", run_fig2c, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2d", run_fig2d, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2e", run_fig2e, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2f", run_fig2f, base, {"v_values": (1e5, 3e5, 5e5)}),
        ("cell_edge", run_cell_edge, edge, {"v_values": (1e5, 3e5)}),
        ("v_convergence", run_v_convergence, base, {"v_values": (1e5, 3e5, 1e6)}),
    )
    for name, runner, scenario, kwargs in runs:
        start = time.time()
        result = runner(base=scenario, max_workers=args.workers, **kwargs)
        elapsed = time.time() - start
        print(f"===== {name} ({elapsed:.0f}s) =====")
        print(result.table)
        print()
        if args.export is not None:
            target = Path(args.export)
            target.mkdir(parents=True, exist_ok=True)
            export_figure(result, target / f"{name}.csv")
    if args.bench is not None:
        print(f"sweep timing records collected in {args.bench}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate every paper figure at full scale and print the tables.

This is the EXPERIMENTS.md data source: the paper's Section-VI
scenario (2 BSs, 20 users, 100 one-minute slots) with the paper's V
sweeps, plus the extension experiments (cell-edge, V-convergence).
Run time is a few minutes.  Pass ``--export DIR`` to additionally
write each figure's data as CSV.
"""

import argparse
import time
from pathlib import Path

from repro.config import cell_edge_scenario, paper_scenario
from repro.experiments import (
    export_figure,
    run_cell_edge,
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig2d,
    run_fig2e,
    run_fig2f,
    run_v_convergence,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--export", default=None, help="directory for per-figure CSVs"
    )
    args = parser.parse_args()

    base = paper_scenario(num_slots=100, seed=2014)
    edge = cell_edge_scenario(num_slots=100, seed=2014)

    runs = (
        ("fig2a", run_fig2a, base, {"v_values": tuple(k * 1e5 for k in range(1, 11))}),
        ("fig2b", run_fig2b, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2c", run_fig2c, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2d", run_fig2d, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2e", run_fig2e, base, {"v_values": tuple(k * 1e5 for k in range(1, 6))}),
        ("fig2f", run_fig2f, base, {"v_values": (1e5, 3e5, 5e5)}),
        ("cell_edge", run_cell_edge, edge, {"v_values": (1e5, 3e5)}),
        ("v_convergence", run_v_convergence, base, {"v_values": (1e5, 3e5, 1e6)}),
    )
    for name, runner, scenario, kwargs in runs:
        start = time.time()
        result = runner(base=scenario, **kwargs)
        elapsed = time.time() - start
        print(f"===== {name} ({elapsed:.0f}s) =====")
        print(result.table)
        print()
        if args.export is not None:
            target = Path(args.export)
            target.mkdir(parents=True, exist_ok=True)
            export_figure(result, target / f"{name}.csv")


if __name__ == "__main__":
    main()

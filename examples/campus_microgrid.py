#!/usr/bin/env python3
"""Campus microgrid: diurnal solar, Markov wind, and the V trade-off.

A campus operator runs a two-cell multi-hop network where users carry
solar-harvesting devices (diurnal output over a 6-hour simulated day)
and base stations are backed by small wind turbines (Markov-modulated
gusts).  The example sweeps the Lyapunov weight V and shows the
energy-cost / queue-backlog trade-off the paper's Figs. 2(a)-2(c)
document: a larger V buys a lower steady-state grid cost at the price
of larger data backlogs.
"""

import dataclasses

from repro import SlotSimulator, paper_scenario
from repro.analysis import format_table
from repro.config.parameters import SessionParameters
from repro.types import Point, RenewableKind


def build_campus_scenario(control_v: float):
    """The paper scenario re-dressed as a campus deployment."""
    base = paper_scenario(control_v=control_v, num_slots=120, seed=7)
    return dataclasses.replace(
        base,
        num_users=12,
        area_side_m=1200.0,
        base_station_positions=(Point(300.0, 600.0), Point(900.0, 600.0)),
        user_renewable_kind=RenewableKind.SOLAR,
        bs_renewable_kind=RenewableKind.WIND,
        sessions=SessionParameters(num_sessions=4, demand_kbps=150.0),
    )


def main() -> None:
    rows = []
    for v in (5e4, 2e5, 8e5):
        params = build_campus_scenario(v)
        result = SlotSimulator.integral(params).run()
        backlog = result.backlog_series("bs_data_packets")
        rows.append(
            (
                v,
                result.average_cost,
                result.steady_state_cost,
                float(backlog.mean()),
                float(backlog.max()),
                result.metrics.totals()["delivered_pkts"],
            )
        )

    print(
        format_table(
            [
                "V",
                "avg cost",
                "steady cost",
                "mean BS backlog",
                "max BS backlog",
                "delivered pkts",
            ],
            rows,
            title="Campus microgrid: the cost/backlog trade-off vs V",
        )
    )
    print()
    print(
        "Reading: larger V weighs energy cost more heavily, so queues are\n"
        "allowed to grow (backlog columns) while the settled grid cost\n"
        "drops or the controller banks more cheap energy early."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cognitive bands: scheduling around primary-user activity.

The paper's spectrum model (its cognitive-radio lineage) gives each
user a static set of accessible bands; this example turns on the
dynamic-availability extension, where a Markov primary user blocks
each random band at each user for stretches of slots.  The controller
needs no changes: blocked bands simply drop out of the per-slot
candidate set, and the always-on cellular band guarantees demand keeps
flowing.  The example measures how much capacity headroom the random
bands contribute as their availability degrades.
"""

import dataclasses

from repro import SlotSimulator, paper_scenario
from repro.analysis import format_table


def run_with_availability(on_prob: float):
    base = paper_scenario(control_v=2e5, num_slots=80, seed=17)
    spectrum = dataclasses.replace(
        base.spectrum,
        dynamic_availability=True,
        availability_on_prob=on_prob,
        availability_persistence=0.9,
    )
    params = dataclasses.replace(base, spectrum=spectrum)
    return SlotSimulator.integral(params).run()


def main() -> None:
    rows = []
    for on_prob in (1.0, 0.7, 0.4, 0.1):
        result = run_with_availability(on_prob)
        backlog = result.backlog_series("virtual_packets")
        rows.append(
            (
                f"{100 * on_prob:.0f}%",
                result.metrics.totals()["delivered_pkts"],
                result.metrics.series("scheduled_links").mean(),
                float(backlog.mean()),
                result.average_cost,
            )
        )
    print(
        format_table(
            [
                "band availability",
                "delivered pkts",
                "links/slot",
                "mean link-layer backlog",
                "avg cost",
            ],
            rows,
            title="Primary-user blocking vs scheduling headroom",
        )
    )
    print()
    print(
        "Reading: demand stays fully served even at 10% band availability\n"
        "(the cellular band is never blocked), but the link-layer virtual\n"
        "queues carry more backlog as the schedulable band set shrinks."
    )


if __name__ == "__main__":
    main()

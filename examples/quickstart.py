#!/usr/bin/env python3
"""Quickstart: run the paper's scenario and inspect the result.

Builds the Section-VI evaluation network (2 base stations, 20 users,
5 spectrum bands, 5 downlink sessions), runs the drift-plus-penalty
controller for 60 one-minute slots, and prints the headline numbers:
time-averaged energy cost, queue stability verdicts, and the
upper/lower bound pair for the configured V.
"""

from repro import SlotSimulator, lower_bound_cost, paper_scenario
from repro.analysis import format_table


def main() -> None:
    params = paper_scenario(control_v=2e5, num_slots=60, seed=42)

    print("== Running the proposed drift-plus-penalty controller ==")
    result = SlotSimulator.integral(params).run()

    summary = result.summary()
    rows = [(key, value) for key, value in sorted(summary.items())]
    print(format_table(["metric", "value"], rows, title="Run summary"))
    print()

    print("== Strong-stability check (Theorem 3, empirical) ==")
    rows = [
        (name, report.verdict.value, report.final_running_mean, report.growth_fraction)
        for name, report in result.stability_reports().items()
    ]
    print(
        format_table(
            ["queue aggregate", "verdict", "running mean", "growth fraction"],
            rows,
        )
    )
    print()

    print("== Bounds on the optimal cost (Theorems 4 and 5) ==")
    relaxed = SlotSimulator.relaxed(params).run()
    lower = lower_bound_cost(
        relaxed.average_penalty, result.constants.drift_b, params.control_v
    )
    rows = [
        ("upper bound (our algorithm, Thm 4)", result.average_penalty),
        ("empirical lower (relaxed LP optimum)", relaxed.average_penalty),
        ("formal lower (psi*_P3bar - B/V, Thm 5)", lower),
    ]
    print(format_table(["bound", "value"], rows))


if __name__ == "__main__":
    main()

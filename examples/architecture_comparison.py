#!/usr/bin/env python3
"""Architecture comparison: why multi-hop + renewables wins (Fig. 2(f)).

Runs the four architectures the paper compares — {multi-hop, one-hop}
x {with, without renewables} — on the identical random environment and
prints their time-averaged energy cost at three values of V, plus a
breakdown of where the savings come from (renewable energy used vs
grid energy drawn).
"""

import dataclasses

from repro import Architecture, paper_scenario
from repro.analysis import format_table
from repro.baselines import architecture_label, run_architecture
from repro.experiments.fig2f import ARCHITECTURES


def main() -> None:
    base = paper_scenario(num_slots=80, seed=5)
    v_values = (1e5, 3e5, 5e5)

    cost_rows = []
    detail_rows = []
    for architecture in ARCHITECTURES:
        costs = []
        for v in v_values:
            result = run_architecture(
                dataclasses.replace(base, control_v=v), architecture
            )
            costs.append(result.average_cost)
            if v == v_values[1]:
                detail_rows.append(
                    (
                        architecture_label(architecture),
                        result.metrics.average_grid_draw_j(),
                        result.metrics.totals()["spill_j"],
                        result.metrics.totals()["delivered_pkts"],
                    )
                )
        cost_rows.append([architecture_label(architecture)] + costs)

    print(
        format_table(
            ["architecture"] + [f"V={v:g}" for v in v_values],
            cost_rows,
            title="Time-averaged expected energy cost by architecture (Fig. 2(f))",
        )
    )
    print()
    print(
        format_table(
            [
                "architecture",
                "avg BS grid draw (J/slot)",
                "spilled renewables (J)",
                "delivered pkts",
            ],
            detail_rows,
            title=f"Where the savings come from (V={v_values[1]:g})",
        )
    )
    print()
    print(
        "Reading: renewables displace grid draw at the base stations;\n"
        "multi-hop shifts transmit energy onto renewable-powered relays,\n"
        "so the combination is cheapest — the paper's Fig. 2(f) ordering."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Time-of-use arbitrage: batteries buy cheap and serve dear.

The paper's flat tariff only lets storage smooth variability; under a
real-world time-of-use tariff (three cheap night slots followed by
three 25x-dearer peak slots, repeating), the drift-plus-penalty
controller automatically charges during cheap slots and discharges
through the peak — no forecasting code, the ``V f(P)`` term does it.
This example quantifies the arbitrage value against the storage-blind
grid-only policy and shows the per-slot behaviour.
"""

import dataclasses

from repro import SlotSimulator, paper_scenario
from repro.analysis import format_table
from repro.types import EnergySolverKind

TARIFF = (0.2, 0.2, 0.2, 5.0, 5.0, 5.0)


def main() -> None:
    base = paper_scenario(control_v=1e5, num_slots=120, seed=3)
    params = dataclasses.replace(base, tou_multipliers=TARIFF)

    results = {}
    for solver in (
        EnergySolverKind.PRICE_DECOMPOSITION,
        EnergySolverKind.GRID_ONLY,
    ):
        results[solver] = SlotSimulator.integral(params, energy_solver=solver).run()

    rows = [
        (
            solver.value,
            result.average_cost,
            result.steady_state_cost,
            result.metrics.average_grid_draw_j(),
        )
        for solver, result in results.items()
    ]
    print(
        format_table(
            ["S4 policy", "avg cost", "steady cost", "avg draw (J/slot)"],
            rows,
            title=f"Tariff {TARIFF}: storage-aware vs grid-only",
        )
    )

    # Show a settled tariff period: draws concentrate in cheap slots.
    smart = results[EnergySolverKind.PRICE_DECOMPOSITION]
    draws = smart.metrics.series("grid_draw_j")
    costs = smart.metrics.series("cost")
    period_rows = []
    for slot in range(96, 96 + 2 * len(TARIFF)):
        period_rows.append(
            (
                slot,
                TARIFF[slot % len(TARIFF)],
                float(draws[slot]),
                float(costs[slot]),
            )
        )
    print()
    print(
        format_table(
            ["slot", "tariff x", "grid draw (J)", "cost"],
            period_rows,
            title="Two settled tariff periods (storage-aware policy)",
        )
    )
    print()
    saving = 1.0 - smart.steady_state_cost / max(
        results[EnergySolverKind.GRID_ONLY].steady_state_cost, 1e-12
    )
    print(f"Steady-state arbitrage saving: {100 * saving:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mobile users: the controller adapts as the topology drifts.

Runs the paper scenario with random-waypoint pedestrian users (the
paper's system model has mobile terminals; its evaluation froze them).
The backpressure machinery needs no changes: per-slot power control
re-prices every link from the current positions, the virtual queues
steer the scheduler to whatever links are currently good, and sessions
keep their demand met while their destinations walk across the cells.
"""

import dataclasses

from repro import SlotSimulator, paper_scenario
from repro.analysis import format_table
from repro.types import MobilityKind


def run(kind: MobilityKind, speed=(1.0, 3.0)):
    params = dataclasses.replace(
        paper_scenario(control_v=2e5, num_slots=80, seed=21),
        mobility=kind,
        user_speed_range_mps=speed,
    )
    return SlotSimulator.integral(params).run()


def main() -> None:
    rows = []
    for label, kind, speed in (
        ("static (paper)", MobilityKind.STATIC, (0.0, 0.0)),
        ("pedestrians (1-3 m/s)", MobilityKind.RANDOM_WAYPOINT, (1.0, 3.0)),
        ("vehicles (10-20 m/s)", MobilityKind.RANDOM_WAYPOINT, (10.0, 20.0)),
    ):
        result = run(kind, speed)
        rows.append(
            (
                label,
                result.average_cost,
                result.metrics.totals()["delivered_pkts"],
                result.metrics.totals()["curtailed_links"],
                result.average_delay_slots,
            )
        )
    print(
        format_table(
            ["mobility", "avg cost", "delivered", "curtailed", "delay (slots)"],
            rows,
            title="Paper scenario under user mobility",
        )
    )
    print()
    print(
        "Reading: demand stays fully served under motion; faster users\n"
        "mainly shift which links carry the traffic (the virtual-queue\n"
        "backpressure re-routes), with modest cost and delay impact."
    )


if __name__ == "__main__":
    main()

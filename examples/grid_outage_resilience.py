#!/usr/bin/env python3
"""Grid-outage resilience: batteries carry the network through a blackout.

Injects a 25-slot grid outage at both base stations mid-run (slots
40-64) using ``ScriptedGridConnection``.  Because the controller's
shifted energy queues bank energy up to the ``V * gamma_max`` threshold
beforehand, the network rides through the blackout on batteries and
renewables; the example reports the demand deficit with and without
batteries to quantify the resilience benefit.
"""

import dataclasses

from repro import SlotSimulator, paper_scenario
from repro.analysis import format_table
from repro.energy import ScriptedGridConnection

OUTAGE = (40, 65)


def run_with_outage(battery_scale: float):
    """Run the paper scenario with a scripted BS blackout.

    Args:
        battery_scale: multiplier on base-station storage capacity
            (1.0 = the default 3 kWh; 0.01 approximates "no battery").
    """
    base = paper_scenario(control_v=3e5, num_slots=100, seed=11)
    bs_energy = dataclasses.replace(
        base.bs_energy,
        battery_capacity_j=base.bs_energy.battery_capacity_j * battery_scale,
        charge_cap_j=min(
            base.bs_energy.charge_cap_j,
            base.bs_energy.battery_capacity_j * battery_scale / 2,
        ),
        discharge_cap_j=min(
            base.bs_energy.discharge_cap_j,
            base.bs_energy.battery_capacity_j * battery_scale / 2,
        ),
    )
    params = dataclasses.replace(base, bs_energy=bs_energy)
    simulator = SlotSimulator.integral(params)

    # Failure injection: replace each base station's grid connection
    # with a scripted one sharing the same caps.
    for bs in simulator.model.bs_ids:
        old = simulator.state.grids[bs]
        simulator.state.grids[bs] = ScriptedGridConnection(
            draw_cap_j=old.draw_cap_j,
            connect_prob=old.connect_prob,
            rng=simulator.rng.environment,
            outages=[OUTAGE],
        )
    # Rebinding grids on a live state invalidates its derived caches
    # (the batched sampling plan, mobility gains): reset before running.
    simulator.state.reset_caches()
    return simulator.run()


def main() -> None:
    rows = []
    for label, scale in (("full battery (3 kWh)", 1.0), ("token battery (3 Wh)", 0.001)):
        result = run_with_outage(scale)
        deficits = result.metrics.series("deficit_j")
        curtailed = result.metrics.series("curtailed_links")
        outage_slice = slice(*OUTAGE)
        rows.append(
            (
                label,
                result.average_cost,
                float(deficits[outage_slice].sum()),
                float(curtailed[outage_slice].sum()),
                float(result.metrics.series("delivered_pkts")[outage_slice].sum()),
            )
        )
    print(
        format_table(
            [
                "configuration",
                "avg cost",
                "outage deficit (J)",
                "outage curtailments",
                "outage delivered pkts",
            ],
            rows,
            title=f"Blackout at base stations, slots [{OUTAGE[0]}, {OUTAGE[1]})",
        )
    )
    print()
    print(
        "Reading: with real storage the controller has banked energy by\n"
        "slot 40 and the blackout causes little to no deficit; with token\n"
        "storage the base stations must shed load (curtailments/deficit)."
    )


if __name__ == "__main__":
    main()

"""Bench: regenerate Fig. 2(f) — energy cost of the four architectures.

Asserts the paper's headline ordering: the proposed multi-hop +
renewables system has the lowest time-averaged expected energy cost at
every compared V.  The (architecture, V) grid executes through the
sweep executor; set REPRO_BENCH_WORKERS to fan it out.
"""

from common import bench_workers, run_once

from repro.experiments import run_fig2f
from repro.experiments.fig2f import ARCHITECTURES
from repro.types import Architecture


def test_fig2f_architecture_comparison(benchmark, show, bench_base, bench_v_compare):
    result = run_once(
        benchmark,
        run_fig2f,
        base=bench_base,
        v_values=bench_v_compare,
        max_workers=bench_workers(),
    )
    show(result.table)

    for v in bench_v_compare:
        assert result.ordering_holds(v), f"proposed system not cheapest at V={v:g}"
        assert result.steady_ordering_holds(v), (
            f"proposed system not cheapest in steady state at V={v:g}"
        )

    # Renewables help the multi-hop system at every V.
    for v in bench_v_compare:
        ours = result.cost(Architecture.MULTI_HOP_RENEWABLE, v)
        no_renewable = result.cost(Architecture.MULTI_HOP_NO_RENEWABLE, v)
        assert ours <= no_renewable * 1.02

    # Sanity: every cell ran the full horizon.
    for (arch, v), run in result.results.items():
        assert arch in ARCHITECTURES
        assert run.num_slots == bench_base.num_slots

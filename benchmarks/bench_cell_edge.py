"""Extension bench: multi-hop savings with cell-edge sessions.

Re-runs the Fig.-2(f) comparison with every session terminating at the
users farthest from all base stations, where relaying pays most; the
assertion is the paper's mechanism claim — multi-hop beats one-hop in
steady state once destinations sit at the cell edge.
"""

from common import bench_workers, run_once

from repro.config import cell_edge_scenario
from repro.experiments import run_cell_edge


def test_cell_edge_multi_hop_saving(benchmark, show, bench_base):
    base = cell_edge_scenario(
        num_slots=max(100, bench_base.num_slots),
        num_users=bench_base.num_users,
        seed=bench_base.seed,
    )

    result = run_once(
        benchmark,
        run_cell_edge,
        base=base,
        v_values=(1e5,),
        max_workers=bench_workers(),
    )
    show(result.table)

    assert result.multi_hop_saving(1e5) > 0.0, (
        "multi-hop should save steady-state energy for cell-edge sessions"
    )

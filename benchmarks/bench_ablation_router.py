"""Ablation bench: router capacity modes and energy-aware scheduling.

Two design decisions called out in DESIGN.md:

* `abl-queue`/router — the paper-literal Eq. (25) cap (routing limited
  to *scheduled* capacity) versus the potential-capacity default that
  lets the S1 <-> S3 feedback loop bootstrap multi-hop flows;
* `abl-sched-energy` — energy-aware S1 weights versus the paper's
  energy-blind weights.
"""

import dataclasses

from repro.analysis import format_table
from repro.control.router import RouterMode
from repro.sim import SlotSimulator


def test_router_capacity_mode_ablation(benchmark, show, bench_base):
    def run_both():
        results = {}
        for mode in RouterMode:
            results[mode] = SlotSimulator.integral(
                bench_base, router_mode=mode
            ).run()
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for mode, result in results.items():
        rows.append(
            (
                mode.value,
                result.average_cost,
                float(result.backlog_series("bs_data_packets")[-1]),
                float(result.backlog_series("virtual_packets").mean()),
                result.metrics.series("scheduled_links").mean(),
            )
        )
    show(
        format_table(
            [
                "router mode",
                "avg cost",
                "final BS backlog",
                "mean virtual backlog",
                "links/slot",
            ],
            rows,
            title="Ablation: potential-capacity vs paper-literal Eq. (25) routing",
        )
    )

    literal = results[RouterMode.SCHEDULED_CAPACITY]
    bootstrap = results[RouterMode.POTENTIAL_CAPACITY]
    # The starvation signature: the literal mode routes (and therefore
    # schedules) far less traffic beyond the forced last hops.
    assert (
        literal.metrics.series("scheduled_links").mean()
        <= bootstrap.metrics.series("scheduled_links").mean() + 1e-9
    )


def test_energy_aware_scheduling_ablation(benchmark, show, bench_base):
    def run_both():
        blind_params = dataclasses.replace(
            bench_base, energy_aware_scheduling=False
        )
        return {
            "energy-aware (default)": SlotSimulator.integral(bench_base).run(),
            "energy-blind (paper S1)": SlotSimulator.integral(blind_params).run(),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            label,
            result.average_cost,
            result.steady_state_cost,
            result.metrics.totals()["delivered_pkts"],
        )
        for label, result in results.items()
    ]
    show(
        format_table(
            ["S1 weights", "avg cost", "steady cost", "delivered"],
            rows,
            title="Ablation: energy-aware vs energy-blind scheduling weights",
        )
    )

    aware = results["energy-aware (default)"]
    blind = results["energy-blind (paper S1)"]
    # Both must deliver the same forced demand.
    assert aware.metrics.totals()["delivered_pkts"] == blind.metrics.totals()[
        "delivered_pkts"
    ]

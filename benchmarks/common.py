"""Shared benchmark helpers: scale selection, scenarios, one-shot runs.

The scenario-construction logic lives here (not copied per bench
module): ``bench_scenario`` picks the scale, the ``v_*`` grids mirror
the paper's sweeps at that scale, and ``run_once`` wraps the
``benchmark.pedantic(..., rounds=1, iterations=1)`` incantation every
figure bench uses (one full regeneration per measurement).

Environment knobs:

* ``REPRO_BENCH_SCALE=paper`` — full Section-VI scale (2 BSs, 20
  users, 100 slots, the paper's V sweeps) instead of the reduced
  default;
* ``REPRO_BENCH_WORKERS=N`` — fan figure grids over N sweep-executor
  processes (default 1 = serial);
* ``REPRO_BENCH_SWEEP=PATH`` — collect every grid's timing record
  into a BENCH_sweep.json (read by the executor itself).
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.config import paper_scenario, small_scenario
from repro.config.parameters import ScenarioParameters

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small") == "paper"


def bench_scenario() -> ScenarioParameters:
    """The base scenario benchmarks derive their runs from."""
    if FULL_SCALE:
        return paper_scenario(num_slots=100, seed=2014)
    return small_scenario(num_slots=40, num_users=10, seed=2014)


def bench_workers() -> int:
    """Sweep-executor fan-out for figure grids (REPRO_BENCH_WORKERS)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def v_sweep() -> Tuple[float, ...]:
    """The V values swept by the bound/backlog figures."""
    if FULL_SCALE:
        return tuple(k * 1e5 for k in range(1, 11))
    return (1e5, 3e5, 1e6)


def v_backlog() -> Tuple[float, ...]:
    """The V values of the backlog/buffer figures (2b-2e)."""
    if FULL_SCALE:
        return tuple(k * 1e5 for k in range(1, 6))
    return (1e5, 3e5, 5e5)


def v_compare() -> Tuple[float, ...]:
    """The V values of the architecture comparison (2f)."""
    return (1e5, 3e5, 5e5)


def run_once(benchmark, fn, **kwargs):
    """Measure one full regeneration of a figure (no warmup rounds)."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)

"""Shard benchmark: slots/sec of the sharded slot loop at U=10k.

Runs the constant-density scale scenario (see ``bench_scale.py``)
through :class:`~repro.sharding.engine.ShardedSlotSimulator` at shard
counts 1, 2, 4 and 8 and reports the steady slots/sec of each, plus the
boundary-exchange volume so a rate can be read against how much
cross-shard traffic the partition actually produced.

Before timing, two bit-identity gates run at U=200:

* ``shards_match`` — the monolithic GREEDY loop vs shards ∈ {1, 2, 4}:
  every per-slot decision (transmissions, service, admission, routing
  rates, curtailment) and the final queue/battery state must compare
  exactly — the sharded loop is the monolithic computation in slices,
  not an approximation of it;
* ``backends_match`` — one sharded sweep cell executed on the serial
  backend vs a two-worker process pool must agree byte for byte.

The ``--check-baseline`` gate compares against the committed
``benchmarks/bench_shard_baseline.json``.  Raw slots/sec shifts with
host hardware, so the gate is hardware-normalized: every baseline rate
is rescaled by (shards1-now / shards1-baseline) measured in the same
run, and the check fails only if a multi-shard rate falls below 50% of
that expectation — i.e. the *sharding overhead curve* regressed, not
the host.

Usage:
    PYTHONPATH=src python benchmarks/bench_shard.py [--smoke]
        [--output BENCH_shard.json] [--check-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_REPO = Path(__file__).resolve().parent.parent
try:  # pragma: no cover - path shim for direct invocation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO / "benchmarks"))

import numpy as np

from bench_scale import _decision_fingerprint, scale_scenario
from repro.config.parameters import ScenarioParameters
from repro.experiments.executor import SweepSpec, run_sweep
from repro.sharding import ShardedSlotSimulator
from repro.sim.engine import SlotSimulator
from repro.types import SchedulerKind

BASELINE_PATH = _REPO / "benchmarks" / "bench_shard_baseline.json"

#: (num_users, num_slots, shard counts) per mode.
CONFIGS = {
    "full": (10_000, 4, (1, 2, 4, 8)),
    "smoke": (2_000, 3, (1, 2, 4)),
}

#: Regression gate: a hardware-normalized rate below this fraction of
#: the baseline expectation fails the check.
GATE_FRACTION = 0.5


def _run_sharded_fingerprints(
    params: ScenarioParameters, num_shards: int
) -> Tuple[List, Dict]:
    sim = ShardedSlotSimulator(params, num_shards=num_shards)
    decisions = [
        _decision_fingerprint(sim.step(slot))
        for slot in range(params.num_slots)
    ]
    arrays = sim.state.arrays
    final = {
        "q": arrays.q.copy(),
        "g": arrays.g.copy(),
        "battery": arrays.battery_level.copy(),
    }
    return decisions, final


def _run_monolithic_fingerprints(params: ScenarioParameters) -> Tuple[List, Dict]:
    sim = SlotSimulator.integral(params, scheduler_kind=SchedulerKind.GREEDY)
    decisions = [
        _decision_fingerprint(sim.step(slot))
        for slot in range(params.num_slots)
    ]
    arrays = sim.state.arrays
    final = {
        "q": arrays.q.copy(),
        "g": arrays.g.copy(),
        "battery": arrays.battery_level.copy(),
    }
    return decisions, final


def check_shard_equivalence(num_users: int, num_slots: int) -> bool:
    """Monolithic vs sharded bit-identity of a full run."""
    params = scale_scenario(num_users, num_slots)
    mono_dec, mono_final = _run_monolithic_fingerprints(params)
    for num_shards in (1, 2, 4):
        shard_dec, shard_final = _run_sharded_fingerprints(params, num_shards)
        if shard_dec != mono_dec:
            return False
        if not all(
            np.array_equal(mono_final[key], shard_final[key])
            for key in mono_final
        ):
            return False
    return True


def check_backend_equivalence(num_users: int, num_slots: int) -> bool:
    """Serial vs process-pool byte-identity of one sharded sweep cell."""
    params = scale_scenario(num_users, num_slots)
    spec = SweepSpec.integral(
        params, v_values=(params.control_v,), num_shards=2
    )
    serial = run_sweep(spec, backend="serial")
    pooled = run_sweep(spec, max_workers=2, backend="process-pool")
    for key in serial.results:
        if serial.results[key].summary() != pooled.results[key].summary():
            return False
    return True


def bench_shards(
    num_users: int, num_slots: int, num_shards: int
) -> Dict:
    params = scale_scenario(num_users, num_slots)

    t0 = time.perf_counter()
    sim = ShardedSlotSimulator(params, num_shards=num_shards)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sim.step(0)
    first_slot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for slot in range(1, num_slots):
        sim.step(slot)
    steady_s = time.perf_counter() - t0

    exchange = sim.exchange
    return {
        "num_users": num_users,
        "num_shards": num_shards,
        "num_slots": num_slots,
        "boundary_links": int(sim.plan.boundary_link_pos.size),
        "cross_arrivals_pkts": round(exchange.cross_arrivals_pkts, 1),
        "build_s": round(build_s, 3),
        "first_slot_s": round(first_slot_s, 3),
        "slots_per_sec": round((num_slots - 1) / steady_s, 3),
    }


def check_baseline(report: Dict, baseline: Dict) -> List[str]:
    """Hardware-normalized regression check (module docstring)."""
    failures: List[str] = []
    anchor = report["shards"].get("S1")
    base_anchor = baseline.get("shards", {}).get("S1")
    if anchor is None or base_anchor is None:
        return ["baseline check needs the S1 (single-shard) row in both reports"]
    host_scale = anchor["slots_per_sec"] / base_anchor["slots_per_sec"]
    for name, current in report["shards"].items():
        base = baseline["shards"].get(name)
        if base is None or name == "S1":
            continue
        expected = base["slots_per_sec"] * host_scale
        floor = GATE_FRACTION * expected
        if current["slots_per_sec"] < floor:
            failures.append(
                f"{name}: {current['slots_per_sec']:.2f} slots/s is below"
                f" the regression floor {floor:.2f} (baseline"
                f" {base['slots_per_sec']:.2f} scaled by {host_scale:.2f}"
                f" for this host, gate {GATE_FRACTION:.0%})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI (U=2k, shards <= 4)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_shard.json"),
        help="where to write the report (default: ./BENCH_shard.json)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if a shard count regresses >50%% against "
        "benchmarks/bench_shard_baseline.json (hardware-normalized)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="baseline file for --check-baseline",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    num_users, num_slots, shard_counts = CONFIGS[mode]

    print("checking monolithic/sharded bit-identity at U=200 ...", flush=True)
    shards_match = check_shard_equivalence(200, num_slots=4)
    print(f"  shards_match={shards_match}", flush=True)

    print("checking serial/process-pool backend bit-identity ...", flush=True)
    backends_match = check_backend_equivalence(200, num_slots=4)
    print(f"  backends_match={backends_match}", flush=True)

    shards: Dict[str, Dict] = {}
    for num_shards in shard_counts:
        name = f"S{num_shards}"
        print(
            f"benchmarking {name} (users={num_users}, slots={num_slots}) ...",
            flush=True,
        )
        shards[name] = bench_shards(num_users, num_slots, num_shards)
        row = shards[name]
        print(
            f"  boundary_links={row['boundary_links']}"
            f" build={row['build_s']}s first_slot={row['first_slot_s']}s"
            f" steady={row['slots_per_sec']} slots/s",
            flush=True,
        )

    report = {
        "schema": "bench_shard/v1",
        "mode": mode,
        "scheduler": "GREEDY",
        "num_users": num_users,
        "shards_match": bool(shards_match),
        "backends_match": bool(backends_match),
        "shards": shards,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    rc = 0
    if not shards_match:
        print("FAIL: sharded and monolithic paths diverged", file=sys.stderr)
        rc = 1
    if not backends_match:
        print("FAIL: serial and process-pool backends diverged", file=sys.stderr)
        rc = 1
    if args.check_baseline:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            rc = 1
        else:
            baseline = json.loads(args.baseline.read_text())
            failures = check_baseline(report, baseline)
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            if failures:
                rc = 1
            else:
                print("baseline check passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())

"""Bench: regenerate Fig. 2(c) — user data-queue backlog over time per V.

Asserts bounded (non-diverging) user backlogs across the V sweep.
"""

import numpy as np

from repro.experiments import run_fig2c
from repro.queueing.stability import StabilityVerdict, assess_strong_stability


def test_fig2c_user_backlog(benchmark, show, bench_base, bench_v_backlog):
    result = benchmark.pedantic(
        run_fig2c,
        kwargs={"base": bench_base, "v_values": bench_v_backlog},
        rounds=1,
        iterations=1,
    )
    show(result.table)

    for series in result.series.values():
        assert np.all(series >= 0)
        verdict = assess_strong_stability(series).verdict
        assert verdict is not StabilityVerdict.UNSTABLE

"""Bench: regenerate Fig. 2(c) — user data-queue backlog over time per V.

Asserts bounded (non-diverging) user backlogs across the V sweep.
"""

import numpy as np
from common import bench_workers, run_once

from repro.experiments import run_fig2c
from repro.queueing.stability import StabilityVerdict, assess_strong_stability


def test_fig2c_user_backlog(benchmark, show, bench_base, bench_v_backlog):
    result = run_once(
        benchmark,
        run_fig2c,
        base=bench_base,
        v_values=bench_v_backlog,
        max_workers=bench_workers(),
    )
    show(result.table)

    for series in result.series.values():
        assert np.all(series >= 0)
        verdict = assess_strong_stability(series).verdict
        assert verdict is not StabilityVerdict.UNSTABLE
